//! Accessing-layer micro-benchmarks: the user-thread → worker handoff in
//! isolation (no engine).
//!
//! Measures the two costs the paper's §4.1 accessing layer must keep far
//! below one KV operation: **enqueue → completion round-trip latency**
//! and **fan-in throughput** (N synchronous user threads hammering one
//! worker queue), for both queue implementations:
//!
//! * `ring` — the production lock-free bounded MPSC ring
//!   ([`p2kvs::queue::RequestQueue`]);
//! * `mutex` — the previous Mutex + Condvar queue, kept as
//!   [`p2kvs::queue::MutexQueue`] precisely so this comparison cannot
//!   rot.
//!
//! The consumer side is an echo worker: it drains OBM batches with the
//! production `pop_batch_into` semantics and completes every request
//! immediately, so the numbers contain only accessing-layer work. The
//! [`run_default_sweep`] entry point emits the `BENCH_accessing.json`
//! artifact consumed by CI and `EXPERIMENTS.md`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use p2kvs::queue::{MutexQueue, RequestQueue};
use p2kvs::types::{Op, Request, Response};

/// Which queue implementation a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueImpl {
    /// The production lock-free bounded MPSC ring.
    Ring,
    /// The Mutex + Condvar baseline.
    Mutex,
}

impl QueueImpl {
    /// Artifact label.
    pub fn label(self) -> &'static str {
        match self {
            QueueImpl::Ring => "ring",
            QueueImpl::Mutex => "mutex",
        }
    }
}

enum AnyQueue {
    Ring(RequestQueue),
    Mutex(MutexQueue),
}

impl AnyQueue {
    fn new(imp: QueueImpl, capacity: usize) -> AnyQueue {
        match imp {
            QueueImpl::Ring => AnyQueue::Ring(RequestQueue::with_capacity(capacity)),
            QueueImpl::Mutex => AnyQueue::Mutex(MutexQueue::new()),
        }
    }

    fn push(&self, req: Request) -> Result<(), Request> {
        match self {
            AnyQueue::Ring(q) => q.push(req),
            AnyQueue::Mutex(q) => q.push(req),
        }
    }

    fn pop_batch_into(&self, max: usize, batch: &mut Vec<Request>) -> bool {
        match self {
            AnyQueue::Ring(q) => q.pop_batch_into(max, batch),
            AnyQueue::Mutex(q) => q.pop_batch_into(max, batch),
        }
    }

    fn close(&self) {
        match self {
            AnyQueue::Ring(q) => q.close(),
            AnyQueue::Mutex(q) => q.close(),
        }
    }
}

/// One fan-in measurement.
#[derive(Debug, Clone)]
pub struct FanInResult {
    /// Queue implementation label (`ring` / `mutex`).
    pub queue: &'static str,
    /// Client shape: `round_trip` (one outstanding sync op per thread —
    /// the latency floor) or `pipelined` (a window of outstanding async
    /// ops per thread — the throughput shape).
    pub mode: &'static str,
    /// Outstanding requests each user thread keeps in flight (1 for
    /// `round_trip`).
    pub window: usize,
    /// Synchronous user threads.
    pub threads: usize,
    /// Total completed round trips.
    pub ops: usize,
    /// Wall time for the whole run.
    pub elapsed_secs: f64,
    /// Completed round trips per second (all threads).
    pub ops_per_sec: f64,
    /// Mean OBM batch size observed by the echo worker
    /// (`WorkerStats::avg_batch_size` equivalent for this harness).
    pub avg_batch: f64,
    /// Median enqueue→completion round trip.
    pub p50_rt_ns: u64,
    /// Tail enqueue→completion round trip.
    pub p99_rt_ns: u64,
}

/// Runs `threads` synchronous producers against one echo consumer on the
/// given queue implementation. Every producer performs `ops_per_thread`
/// blocking PUT round trips (16 B keys, 100 B values — the paper's
/// default record shape) and records each round-trip latency.
pub fn fan_in(
    imp: QueueImpl,
    threads: usize,
    ops_per_thread: usize,
    batch_max: usize,
) -> FanInResult {
    let queue = Arc::new(AnyQueue::new(imp, 1024));

    let consumer = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(batch_max);
            let mut batches = 0u64;
            let mut ops = 0u64;
            while queue.pop_batch_into(batch_max, &mut batch) {
                batches += 1;
                ops += batch.len() as u64;
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Done));
                }
            }
            (ops, batches)
        })
    };

    let start = Instant::now();
    let producers: Vec<_> = (0..threads)
        .map(|t| {
            let queue = queue.clone();
            thread::spawn(move || {
                let mut lat = Vec::with_capacity(ops_per_thread);
                let value = vec![0xabu8; 100];
                for i in 0..ops_per_thread {
                    let mut key = format!("user{t:02}num{i:08}").into_bytes();
                    key.truncate(16);
                    let began = Instant::now();
                    let (req, waiter) = Request::sync(Op::Put {
                        key,
                        value: value.clone(),
                    });
                    queue.push(req).ok().expect("queue open");
                    waiter.wait().expect("echo worker fulfills");
                    lat.push(began.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(threads * ops_per_thread);
    for p in producers {
        latencies.extend(p.join().expect("producer"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    queue.close();
    let (ops, batches) = consumer.join().expect("consumer");

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    FanInResult {
        queue: imp.label(),
        mode: "round_trip",
        window: 1,
        threads,
        ops: ops as usize,
        elapsed_secs: elapsed,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        avg_batch: if batches == 0 {
            0.0
        } else {
            ops as f64 / batches as f64
        },
        p50_rt_ns: pct(0.50),
        p99_rt_ns: pct(0.99),
    }
}

/// Like [`fan_in`], but each user thread keeps a `window` of asynchronous
/// requests outstanding instead of blocking on every op. This is the
/// throughput shape: the handoff cost itself dominates (no context
/// switch per op), so it is where the lock-free ring separates from the
/// mutex baseline — and where OBM sees deep queues and forms real
/// batches. Latency percentiles are enqueue→completion (queueing delay
/// under window pressure included).
pub fn pipelined(
    imp: QueueImpl,
    threads: usize,
    ops_per_thread: usize,
    batch_max: usize,
    window: usize,
) -> FanInResult {
    let queue = Arc::new(AnyQueue::new(imp, 1024));

    let consumer = {
        let queue = queue.clone();
        thread::spawn(move || {
            let mut batch = Vec::with_capacity(batch_max);
            let mut batches = 0u64;
            let mut ops = 0u64;
            while queue.pop_batch_into(batch_max, &mut batch) {
                batches += 1;
                ops += batch.len() as u64;
                for req in batch.drain(..) {
                    req.finish(Ok(Response::Done));
                }
            }
            (ops, batches)
        })
    };

    // Latency is sampled 1-in-16: instrumenting every op would add two
    // clock reads per request and dilute the queue cost being measured.
    const LAT_SAMPLE: usize = 16;
    let start = Instant::now();
    let producers: Vec<_> = (0..threads)
        .map(|_| {
            let queue = queue.clone();
            thread::spawn(move || {
                let inflight = Arc::new(AtomicUsize::new(0));
                let lat: Arc<Vec<AtomicU64>> = Arc::new(
                    (0..ops_per_thread.div_ceil(LAT_SAMPLE))
                        .map(|_| AtomicU64::new(0))
                        .collect(),
                );
                for i in 0..ops_per_thread {
                    while inflight.load(Ordering::Acquire) >= window {
                        thread::yield_now();
                    }
                    inflight.fetch_add(1, Ordering::AcqRel);
                    let inflight = inflight.clone();
                    let op = Op::Put {
                        key: (i as u64).to_le_bytes().to_vec(),
                        value: vec![0xabu8; 100],
                    };
                    let req = if i % LAT_SAMPLE == 0 {
                        let lat = lat.clone();
                        let began = Instant::now();
                        Request::asynchronous(
                            op,
                            Box::new(move |_| {
                                lat[i / LAT_SAMPLE]
                                    .store(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
                                inflight.fetch_sub(1, Ordering::AcqRel);
                            }),
                        )
                    } else {
                        Request::asynchronous(
                            op,
                            Box::new(move |_| {
                                inflight.fetch_sub(1, Ordering::AcqRel);
                            }),
                        )
                    };
                    queue.push(req).ok().expect("queue open");
                }
                while inflight.load(Ordering::Acquire) > 0 {
                    thread::yield_now();
                }
                lat.iter()
                    .map(|l| l.load(Ordering::Relaxed))
                    .collect::<Vec<u64>>()
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(threads * ops_per_thread);
    for p in producers {
        latencies.extend(p.join().expect("producer"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    queue.close();
    let (ops, batches) = consumer.join().expect("consumer");

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    FanInResult {
        queue: imp.label(),
        mode: "pipelined",
        window,
        threads,
        ops: ops as usize,
        elapsed_secs: elapsed,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        avg_batch: if batches == 0 {
            0.0
        } else {
            ops as f64 / batches as f64
        },
        p50_rt_ns: pct(0.50),
        p99_rt_ns: pct(0.99),
    }
}

/// Outstanding ops per thread in the pipelined sweep (batched clients).
pub const PIPELINE_WINDOW: usize = 64;

/// Both-mode sweep over `thread_counts` for both queue implementations.
pub fn sweep(thread_counts: &[usize], ops_per_thread: usize, batch_max: usize) -> Vec<FanInResult> {
    let mut out = Vec::new();
    for &threads in thread_counts {
        for imp in [QueueImpl::Mutex, QueueImpl::Ring] {
            out.push(fan_in(imp, threads, ops_per_thread, batch_max));
            out.push(pipelined(
                imp,
                threads,
                ops_per_thread,
                batch_max,
                PIPELINE_WINDOW,
            ));
        }
    }
    out
}

/// Ring/mutex pipelined-throughput ratio at `threads` (0.0 when either
/// side is absent).
pub fn speedup_at(results: &[FanInResult], threads: usize) -> f64 {
    let find = |label: &str| {
        results
            .iter()
            .find(|r| r.queue == label && r.mode == "pipelined" && r.threads == threads)
            .map(|r| r.ops_per_sec)
    };
    match (find("ring"), find("mutex")) {
        (Some(ring), Some(mutex)) if mutex > 0.0 => ring / mutex,
        _ => 0.0,
    }
}

/// Renders results as the `BENCH_accessing.json` artifact.
pub fn render_json(results: &[FanInResult], ops_per_thread: usize, batch_max: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("accessing", 0)
            .num("ops_per_thread", ops_per_thread)
            .num("batch_max", batch_max)
            .render(),
    );
    s.push_str(&format!(
        "  \"speedup_ring_vs_mutex_at_8_threads\": {:.3},\n",
        speedup_at(results, 8)
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"queue\": \"{}\", \"mode\": \"{}\", \"window\": {}, \"threads\": {}, \
             \"ops\": {}, \"elapsed_secs\": {:.6}, \"ops_per_sec\": {:.1}, \"avg_batch\": {:.3}, \
             \"p50_rt_ns\": {}, \"p99_rt_ns\": {}}}{}\n",
            r.queue,
            r.mode,
            r.window,
            r.threads,
            r.ops,
            r.elapsed_secs,
            r.ops_per_sec,
            r.avg_batch,
            r.p50_rt_ns,
            r.p99_rt_ns,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set (alongside the
/// per-run metrics artifacts), the working directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_accessing.json"),
        _ => PathBuf::from("BENCH_accessing.json"),
    }
}

/// Runs the default sweep (1/2/4/8/16 user threads, both client shapes,
/// `M = 32`, op count scaled by `P2KVS_SCALE`) and writes
/// `BENCH_accessing.json` to `path`.
pub fn run_default_sweep(path: &Path) -> std::io::Result<Vec<FanInResult>> {
    let ops_per_thread = crate::scaled(20_000) as usize;
    let batch_max = 32;
    let results = sweep(&[1, 2, 4, 8, 16], ops_per_thread, batch_max);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&results, ops_per_thread, batch_max))?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_completes_and_reports() {
        let r = fan_in(QueueImpl::Ring, 2, 200, 32);
        assert_eq!(r.ops, 400);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.avg_batch >= 1.0);
        assert!(r.p50_rt_ns <= r.p99_rt_ns);
        let m = fan_in(QueueImpl::Mutex, 2, 200, 32);
        assert_eq!(m.ops, 400);
    }

    #[test]
    fn pipelined_completes_and_reports() {
        let r = pipelined(QueueImpl::Ring, 2, 300, 32, 16);
        assert_eq!(r.ops, 600);
        assert_eq!(r.mode, "pipelined");
        assert!(r.avg_batch >= 1.0);
        let m = pipelined(QueueImpl::Mutex, 2, 300, 32, 16);
        assert_eq!(m.ops, 600);
    }

    #[test]
    fn json_render_is_complete() {
        let results = sweep(&[1], 50, 32);
        let json = render_json(&results, 50, 32);
        assert!(json.contains("\"bench\": \"accessing\""));
        assert!(json.contains("\"queue\": \"ring\""));
        assert!(json.contains("\"queue\": \"mutex\""));
        assert!(json.contains("\"mode\": \"pipelined\""));
        assert!(json.contains("\"mode\": \"round_trip\""));
        assert!(json.contains("speedup_ring_vs_mutex_at_8_threads"));
    }
}
