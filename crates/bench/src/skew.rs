//! Skew-rebalancing benchmark: zipfian tenant traffic over a static
//! shard map versus the skew-aware balancer, writing `BENCH_skew.json`.
//!
//! The scenario is the one the two-level shard map exists for: a
//! multi-tenant store where each tenant lives in its own shard and
//! tenant popularity is zipfian (θ=0.99, the YCSB default). Under the
//! paper's static `shard → worker` assignment, whichever worker owns
//! the hot tenants saturates while the rest idle; the balancer migrates
//! shard *ownership* (no data movement) until per-worker load evens
//! out.
//!
//! The tenant → shard placement pins the common unlucky draw where the
//! two most popular tenants land on the same worker of the round-robin
//! map (probability ≈ `1/workers` under random placement). That is
//! deliberate: it is exactly the collision a static layout cannot
//! escape and the balancer exists to fix — when the draw is lucky,
//! static and balanced coincide and there is nothing to measure.
//!
//! Both configurations run the identical deterministic workload over
//! identically loaded stores (values derive from the key alone, so
//! thread interleaving cannot desynchronize them); [`run_default`]
//! verifies the read results are byte-identical between them and
//! reports per-worker throughput spread, busy-time spread, and GET
//! latency percentiles. No `rand` dependency: a fixed LCG keeps every
//! run reproducible.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, Partitioner};
use p2kvs_storage::{DeviceProfile, SimEnv};

/// Worker threads both configurations run.
pub const WORKERS: usize = 4;
/// Tenants (= shards): `4×` the workers, the store's own default ratio.
pub const TENANTS: usize = 16;
/// Zipfian skew parameter (YCSB default).
pub const THETA: f64 = 0.99;
/// Fraction of workload ops that are writes (YCSB-B flavor).
const PUT_PERCENT: u64 = 5;
/// Client threads issuing the workload.
const CLIENTS: usize = 4;
/// Keys sampled for the cross-configuration byte-identity check.
const READBACK_SAMPLE: u64 = 2_000;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    /// Uniform f64 in `[0, 1)` from the 48 bits [`Lcg::next`] yields.
    fn unit(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 48) as f64
    }
}

/// Zipfian sampler over `n` ranks via an explicit CDF table — `n` is
/// small (one rank per tenant), so table lookup beats the usual
/// rejection method and is exact.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution: rank `r` has mass `∝ 1/(r+1)^theta`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Maps a uniform draw to a rank.
    pub fn rank(&self, u: f64) -> usize {
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }

    /// Smallest count of leading (hottest) ranks whose combined mass
    /// reaches `mass` — the cache bench's hot-set size.
    pub fn head_count(&self, mass: f64) -> usize {
        (self.cdf.partition_point(|c| *c < mass) + 1).min(self.cdf.len())
    }
}

/// Routes `t{tt:02}…` keys to one shard per tenant. Tenant ids are
/// popularity ranks (tenant 00 is the hottest); [`tenant_shard`] is the
/// placement table described in the module docs.
pub struct TenantPartitioner {
    tenants: usize,
}

impl TenantPartitioner {
    /// One shard per tenant.
    pub fn new(tenants: usize) -> TenantPartitioner {
        TenantPartitioner { tenants: tenants.max(1) }
    }
}

impl Partitioner for TenantPartitioner {
    fn shard_of(&self, key: &[u8]) -> usize {
        let t = if key.len() >= 3 {
            ((key[1].wrapping_sub(b'0')) as usize) * 10 + (key[2].wrapping_sub(b'0')) as usize
        } else {
            0
        };
        tenant_shard(t % self.tenants, self.tenants)
    }

    fn partitions(&self) -> usize {
        self.tenants
    }
}

/// Tenant → shard placement: identity, except the second-hottest tenant
/// trades shards with the tenant [`WORKERS`] slots down — putting it on
/// the same round-robin worker as tenant 0 (see the module docs for why
/// the benchmark pins this draw).
pub fn tenant_shard(t: usize, tenants: usize) -> usize {
    if tenants > WORKERS {
        if t == 1 {
            return WORKERS;
        }
        if t == WORKERS {
            return 1;
        }
    }
    t
}

fn key_of(tenant: usize, i: u64) -> Vec<u8> {
    format!("t{tenant:02}-{i:06}").into_bytes()
}

/// Values derive from the key alone, so re-puts are idempotent and the
/// final state is identical no matter how client threads interleave.
fn value_of(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64;
    for b in key {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut v = Vec::with_capacity(100);
    while v.len() < 100 {
        v.extend_from_slice(&h.to_le_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    v.truncate(100);
    v
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn spread(deltas: &[u64]) -> f64 {
    let max = deltas.iter().copied().max().unwrap_or(0).max(1) as f64;
    let min = deltas.iter().copied().min().unwrap_or(0).max(1) as f64;
    max / min
}

/// One configuration's measurements.
#[derive(Debug, Clone)]
pub struct SkewResult {
    /// `static` (no rebalancing) or `balanced`.
    pub config: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// Virtual shards (= tenants).
    pub shards: usize,
    /// Ownership migrations the balancer performed before measuring.
    pub migrations: u64,
    /// Ops completed in the measurement window.
    pub ops: u64,
    /// Wall-clock seconds of the measurement window.
    pub wall_secs: f64,
    /// Aggregate throughput over the window.
    pub throughput_ops_sec: f64,
    /// GET latency p50 over the window, nanoseconds.
    pub p50_get_ns: u64,
    /// GET latency p99 over the window, nanoseconds.
    pub p99_get_ns: u64,
    /// Per-worker ops completed during the window.
    pub worker_ops: Vec<u64>,
    /// Busiest/idlest worker by window ops — the throughput spread.
    pub ops_spread: f64,
    /// Busiest/idlest worker by window service time.
    pub busy_spread: f64,
}

fn open_store(name: &str, cache_capacity: usize) -> P2Kvs<lsmkv::Db> {
    // The paper's simulated NVMe device: per-op cost is real enough
    // that worker busy-time reflects work done, not allocator noise.
    let env: p2kvs_storage::EnvRef = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 256 << 10;
    lsm.target_file_size = 1 << 20;
    lsm.block_cache_size = 256 << 10;
    let mut opts = P2KvsOptions::with_workers(WORKERS);
    opts.pin_workers = false;
    // 0 for the paper configurations: hits served client-side would
    // bypass the very worker imbalance this bench measures. The cache
    // bench layers it back on via [`measure_cached`].
    opts.cache_capacity = cache_capacity;
    opts.partitioner = Some(Arc::new(TenantPartitioner::new(TENANTS)));
    P2Kvs::open(LsmFactory::new(lsm), name, opts).unwrap()
}

/// Total cache hits so far (0 with the cache off). Window deltas count
/// toward `ops`: hits are completed GETs the workers never see.
fn cache_hits(store: &P2Kvs<lsmkv::Db>) -> u64 {
    store
        .metrics_snapshot()
        .counter("p2kvs_cache_hits")
        .unwrap_or(0)
}

fn load(store: &P2Kvs<lsmkv::Db>, keys_per_tenant: u64) {
    for t in 0..TENANTS {
        for i in 0..keys_per_tenant {
            let k = key_of(t, i);
            let v = value_of(&k);
            store.put(&k, &v).unwrap();
        }
    }
}

/// Runs `ops` zipfian-tenant ops split over [`CLIENTS`] threads,
/// returning sorted GET latencies. Deterministic: each thread's op
/// stream depends only on `(seed, thread index)`.
fn drive(store: &P2Kvs<lsmkv::Db>, keys_per_tenant: u64, ops: u64, seed: u64) -> Vec<u64> {
    let zipf = Zipf::new(TENANTS, THETA);
    let per_client = ops / CLIENTS as u64;
    let mut lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let zipf = &zipf;
                s.spawn(move || {
                    let mut rng = Lcg(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)));
                    let mut lat = Vec::with_capacity(per_client as usize);
                    for _ in 0..per_client {
                        let tenant = zipf.rank(rng.unit());
                        let key = key_of(tenant, rng.next() % keys_per_tenant);
                        if rng.next() % 100 < PUT_PERCENT {
                            store.put(&key, &value_of(&key)).unwrap();
                        } else {
                            let began = Instant::now();
                            let got = store.get(&key).unwrap();
                            lat.push(began.elapsed().as_nanos() as u64);
                            assert!(got.is_some(), "preloaded key missing");
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    lat.sort_unstable();
    lat
}

/// Deterministic sample readback used for the cross-configuration
/// byte-identity check.
fn readback(store: &P2Kvs<lsmkv::Db>, keys_per_tenant: u64) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let zipf = Zipf::new(TENANTS, THETA);
    let mut rng = Lcg(0x0ddba11);
    (0..READBACK_SAMPLE)
        .map(|_| {
            let key = key_of(zipf.rank(rng.unit()), rng.next() % keys_per_tenant);
            let got = store.get(&key).unwrap();
            (key, got)
        })
        .collect()
}

/// Measures one configuration: load, zipfian warmup (which feeds the
/// per-shard gauges), optional rebalancing to convergence, then a
/// measured window. Returns the result and the readback sample.
pub fn measure(
    config: &'static str,
    balance: bool,
    keys_per_tenant: u64,
    warmup_ops: u64,
    measure_ops: u64,
    seed: u64,
) -> (SkewResult, Vec<(Vec<u8>, Option<Vec<u8>>)>) {
    measure_cached(config, balance, 0, keys_per_tenant, warmup_ops, measure_ops, seed)
}

/// [`measure`] with a client-side read cache of `cache_capacity` bytes
/// (0 = off, the paper configuration). The cache bench uses this to
/// show the hot-set cache recovering throughput the balancer alone
/// leaves on the table — workload, placement, and seeds are identical,
/// so results stay byte-comparable across all configurations.
pub fn measure_cached(
    config: &'static str,
    balance: bool,
    cache_capacity: usize,
    keys_per_tenant: u64,
    warmup_ops: u64,
    measure_ops: u64,
    seed: u64,
) -> (SkewResult, Vec<(Vec<u8>, Option<Vec<u8>>)>) {
    let store = open_store(config, cache_capacity);
    load(&store, keys_per_tenant);

    // Warmup: builds the per-shard service-time signal the balancer
    // differentiates. The static configuration runs it too so both
    // stores enter the window with identical cache/compaction state.
    // The balanced configuration ticks between rounds — the
    // deterministic equivalent of `balance_interval`: each tick plans
    // from the load window the previous round built (a tick sees only
    // the delta since the last one, so back-to-back ticks with no
    // traffic in between would plan nothing).
    const WARMUP_ROUNDS: u64 = 4;
    for round in 0..WARMUP_ROUNDS {
        drive(
            &store,
            keys_per_tenant,
            warmup_ops / WARMUP_ROUNDS,
            seed ^ 0xAA55_77EE ^ round,
        );
        if balance {
            store.rebalance_once().unwrap();
        }
    }

    let before = store.snapshot();
    let hits_before = cache_hits(&store);
    let began = Instant::now();
    let lat = drive(&store, keys_per_tenant, measure_ops, seed);
    let wall_secs = began.elapsed().as_secs_f64();
    let after = store.snapshot();
    let hits_after = cache_hits(&store);

    let worker_ops: Vec<u64> = after
        .workers
        .iter()
        .zip(&before.workers)
        .map(|(a, b)| a.ops.saturating_sub(b.ops))
        .collect();
    let worker_busy: Vec<u64> = after
        .workers
        .iter()
        .zip(&before.workers)
        .map(|(a, b)| a.busy.saturating_sub(b.busy).as_nanos() as u64)
        .collect();
    // Cache hits complete on the client thread and never reach a
    // worker; counting only worker deltas would report the cached
    // configuration's misses as its whole throughput.
    let ops: u64 = worker_ops.iter().sum::<u64>() + hits_after.saturating_sub(hits_before);
    let result = SkewResult {
        config,
        workers: store.workers(),
        shards: store.shards(),
        migrations: store.migrations(),
        ops,
        wall_secs,
        throughput_ops_sec: ops as f64 / wall_secs.max(1e-9),
        p50_get_ns: percentile(&lat, 0.50),
        p99_get_ns: percentile(&lat, 0.99),
        ops_spread: spread(&worker_ops),
        busy_spread: spread(&worker_busy),
        worker_ops,
    };
    let sample = readback(&store, keys_per_tenant);
    store.close();
    (result, sample)
}

/// `static`'s per-worker throughput spread over `balanced`'s (>1 means
/// rebalancing evened the load).
pub fn spread_improvement(results: &[SkewResult]) -> f64 {
    let find = |c: &str| results.iter().find(|r| r.config == c).map(|r| r.ops_spread);
    match (find("static"), find("balanced")) {
        (Some(s), Some(b)) if b > 0.0 => s / b,
        _ => 0.0,
    }
}

/// `balanced` aggregate throughput over `static`'s.
pub fn throughput_improvement(results: &[SkewResult]) -> f64 {
    let find = |c: &str| {
        results
            .iter()
            .find(|r| r.config == c)
            .map(|r| r.throughput_ops_sec)
    };
    match (find("static"), find("balanced")) {
        (Some(s), Some(b)) if s > 0.0 => b / s,
        _ => 0.0,
    }
}

/// Renders the `BENCH_skew.json` artifact.
pub fn render_json(
    results: &[SkewResult],
    keys_per_tenant: u64,
    identical: bool,
    seed: u64,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("skew_rebalance", seed)
            .num("tenants", TENANTS)
            .num("theta", THETA)
            .num("keys_per_tenant", keys_per_tenant)
            .render(),
    );
    s.push_str(&format!("  \"reads_identical\": {identical},\n"));
    s.push_str(&format!(
        "  \"spread_improvement\": {:.3},\n",
        spread_improvement(results)
    ));
    s.push_str(&format!(
        "  \"throughput_improvement\": {:.3},\n",
        throughput_improvement(results)
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let worker_ops: Vec<String> = r.worker_ops.iter().map(|o| o.to_string()).collect();
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"workers\": {}, \"shards\": {}, \
             \"migrations\": {}, \"ops\": {}, \"wall_secs\": {:.3}, \
             \"throughput_ops_sec\": {:.1}, \"p50_get_ns\": {}, \
             \"p99_get_ns\": {}, \"worker_ops\": [{}], \
             \"ops_spread\": {:.3}, \"busy_spread\": {:.3}}}{}\n",
            r.config,
            r.workers,
            r.shards,
            r.migrations,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.p50_get_ns,
            r.p99_get_ns,
            worker_ops.join(", "),
            r.ops_spread,
            r.busy_spread,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_skew.json"),
        _ => PathBuf::from("BENCH_skew.json"),
    }
}

/// Runs both configurations (2 000 keys × 16 tenants, 60k warmup and
/// 120k measured ops, scaled by `P2KVS_SCALE`; seed from
/// `P2KVS_SKEW_SEED`, default fixed) and writes `BENCH_skew.json` to
/// `path`. Panics if the configurations disagree on any read — the
/// rebalancer must be invisible to results.
pub fn run_default(path: &Path) -> std::io::Result<Vec<SkewResult>> {
    let keys_per_tenant = crate::scaled(2_000);
    let warmup_ops = crate::scaled(60_000);
    let measure_ops = crate::scaled(120_000);
    let seed = std::env::var("P2KVS_SKEW_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C_0B5E);

    let (stat, stat_sample) =
        measure("static", false, keys_per_tenant, warmup_ops, measure_ops, seed);
    let (bal, bal_sample) =
        measure("balanced", true, keys_per_tenant, warmup_ops, measure_ops, seed);
    let identical = stat_sample == bal_sample;
    assert!(
        identical,
        "static and balanced configurations must return byte-identical reads"
    );

    let results = vec![stat, bal];
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&results, keys_per_tenant, identical, seed))?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_a_distribution() {
        let z = Zipf::new(16, THETA);
        assert!((z.cdf.last().copied().unwrap() - 1.0).abs() < 1e-12);
        assert!(z.cdf.windows(2).all(|w| w[0] < w[1]));
        // The hottest rank carries by far the most mass.
        assert!(z.cdf[0] > 0.25);
        assert_eq!(z.rank(0.0), 0);
        assert_eq!(z.rank(0.999_999), 15);
    }

    #[test]
    fn hot_tenants_collide_on_one_worker() {
        // Ranks 0 and 1 must land on shards the round-robin map assigns
        // to the same worker — the draw the benchmark pins.
        let s0 = tenant_shard(0, TENANTS);
        let s1 = tenant_shard(1, TENANTS);
        assert_ne!(s0, s1, "distinct shards");
        assert_eq!(s0 % WORKERS, s1 % WORKERS, "same round-robin worker");
        // ...and the table stays a permutation.
        let mut seen: Vec<usize> = (0..TENANTS).map(|t| tenant_shard(t, TENANTS)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..TENANTS).collect::<Vec<_>>());
    }

    #[test]
    fn partitioner_routes_by_tenant_prefix() {
        let p = TenantPartitioner::new(TENANTS);
        assert_eq!(p.partitions(), TENANTS);
        for t in 0..TENANTS {
            assert_eq!(p.shard_of(&key_of(t, 42)), tenant_shard(t, TENANTS));
        }
    }

    #[test]
    fn tiny_run_balances_and_reads_identically() {
        let (stat, a) = measure("static", false, 50, 3_000, 3_000, 7);
        let (bal, b) = measure("balanced", true, 50, 3_000, 3_000, 7);
        assert_eq!(a, b, "reads must not depend on the shard map");
        assert_eq!(stat.migrations, 0);
        assert!(bal.migrations >= 1, "skewed warmup must trigger moves");
        assert!(stat.ops > 0 && bal.ops > 0);
        assert!(stat.p50_get_ns <= stat.p99_get_ns);
        let json = render_json(&[stat, bal], 50, true, 7);
        assert!(json.contains("\"bench\": \"skew_rebalance\""));
        assert!(json.contains("\"config\": \"balanced\""));
        assert!(json.contains("spread_improvement"));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
