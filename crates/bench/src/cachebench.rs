//! Hot-set read-cache benchmark: zipfian GET traffic against the
//! lock-free client-side cache, writing `BENCH_cache.json`.
//!
//! Three questions, one artifact:
//!
//! 1. **Hit-rate sweep** — how much of the zipfian (θ=0.99) hot set
//!    must the cache hold before most GETs never touch a worker? The
//!    sweep sizes the cache at 0 / 25 / 50 / 100 % of the *hot-set
//!    bytes* (the smallest rank prefix carrying [`HOT_MASS`] of the
//!    request mass, charged at value + key + per-record overhead) and
//!    reports hit rate and GET latency percentiles for each point. At
//!    the full-hot-set point the cache must serve ≥ 90 % of GETs with a
//!    p50 under 5 µs — the queue round-trip is gone from the median.
//! 2. **Miss-path overhead** — reading keys that are *never* repeated,
//!    so every lookup misses and fills, how much slower is cache-on
//!    than cache-off? This is the regression CI gates at 3 %
//!    (`cache_hitrate` exits non-zero past it).
//! 3. **Skew recovery** — the skew bench's pinned unlucky draw, run a
//!    third way: balancer *and* cache. Migration flushes cost the
//!    cached configuration its hot entries on every handoff, so this
//!    doubles as a coherence-pressure benchmark; the cached balanced
//!    store must still beat the unbalanced static baseline (≥ 1.0×).
//!
//! Reads are verified byte-identical across every configuration — a
//! cache serving stale or corrupt bytes fails the run, not just the
//! numbers. Deterministic: a fixed LCG, no `rand` dependency.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, SimEnv};

use crate::skew::Zipf;

/// Worker threads every configuration runs.
pub const WORKERS: usize = 4;
/// Zipfian skew parameter (YCSB default), over individual keys here.
pub const THETA: f64 = 0.99;
/// Request mass the "hot set" covers.
pub const HOT_MASS: f64 = 0.95;
/// Value bytes per key (the paper's YCSB value size band).
const VALUE_LEN: usize = 100;
/// Client threads issuing the zipfian workload.
const CLIENTS: usize = 4;
/// Keys sampled for the cross-configuration byte-identity check.
const READBACK_SAMPLE: u64 = 2_000;
/// Cache-size sweep points, in percent of the hot-set bytes.
pub const SWEEP_PCT: [u64; 4] = [0, 25, 50, 100];

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn unit(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 48) as f64
    }
}

fn key_of(rank: u64) -> Vec<u8> {
    format!("c{rank:07}").into_bytes()
}

/// Values derive from the key alone (same discipline as the skew
/// bench): identical across every configuration by construction, so a
/// mismatch can only come from the cache.
fn value_of(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64;
    for b in key {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut v = Vec::with_capacity(VALUE_LEN);
    while v.len() < VALUE_LEN {
        v.extend_from_slice(&h.to_le_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    v.truncate(VALUE_LEN);
    v
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn open_store(name: &str, cache_capacity: usize) -> P2Kvs<lsmkv::Db> {
    let env: p2kvs_storage::EnvRef = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 256 << 10;
    lsm.target_file_size = 1 << 20;
    lsm.block_cache_size = 256 << 10;
    let mut opts = P2KvsOptions::with_workers(WORKERS);
    opts.pin_workers = false;
    opts.cache_capacity = cache_capacity;
    P2Kvs::open(LsmFactory::new(lsm), name, opts).unwrap()
}

fn load(store: &P2Kvs<lsmkv::Db>, keys: u64) {
    for i in 0..keys {
        let k = key_of(i);
        store.put(&k, &value_of(&k)).unwrap();
    }
}

/// Runs `ops` zipfian GETs over `keys` ranks split across [`CLIENTS`]
/// threads, returning sorted latencies. Rank order == popularity order,
/// so [`Zipf::head_count`] describes exactly the keys that get hot.
fn drive(store: &P2Kvs<lsmkv::Db>, keys: u64, ops: u64, seed: u64) -> Vec<u64> {
    let zipf = Zipf::new(keys as usize, THETA);
    let per_client = ops / CLIENTS as u64;
    let mut lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let zipf = &zipf;
                s.spawn(move || {
                    let mut rng = Lcg(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)));
                    let mut lat = Vec::with_capacity(per_client as usize);
                    for _ in 0..per_client {
                        let key = key_of(zipf.rank(rng.unit()) as u64);
                        let began = Instant::now();
                        let got = store.get(&key).unwrap();
                        lat.push(began.elapsed().as_nanos() as u64);
                        assert!(got.is_some(), "preloaded key missing");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    lat.sort_unstable();
    lat
}

fn readback(store: &P2Kvs<lsmkv::Db>, keys: u64) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let zipf = Zipf::new(keys as usize, THETA);
    let mut rng = Lcg(0x0ddba11);
    (0..READBACK_SAMPLE)
        .map(|_| {
            let key = key_of(zipf.rank(rng.unit()) as u64);
            let got = store.get(&key).unwrap();
            (key, got)
        })
        .collect()
}

fn cache_counter(snap: &p2kvs::MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

/// The hot set for a `keys`-rank zipfian: how many leading ranks carry
/// [`HOT_MASS`] of the traffic, and what they cost to cache (key +
/// value + per-record overhead).
pub fn hot_set(keys: u64) -> (u64, u64) {
    let zipf = Zipf::new(keys as usize, THETA);
    let hot = zipf.head_count(HOT_MASS) as u64;
    let bytes: u64 = (0..hot)
        .map(|r| (key_of(r).len() + VALUE_LEN) as u64 + p2kvs::cache::RECORD_OVERHEAD)
        .sum();
    (hot, bytes)
}

/// One sweep point's measurements.
#[derive(Debug, Clone)]
pub struct HitRateResult {
    /// Cache size as a percentage of the hot-set bytes (0 = off).
    pub pct_of_hot: u64,
    /// Configured cache capacity in bytes.
    pub capacity_bytes: u64,
    /// GETs completed in the measurement window.
    pub ops: u64,
    /// Wall-clock seconds of the window.
    pub wall_secs: f64,
    /// Aggregate GET throughput over the window.
    pub throughput_ops_sec: f64,
    /// Window hits / (hits + misses); 0 when the cache is off.
    pub hit_rate: f64,
    /// GET latency p50 over the window, nanoseconds.
    pub p50_get_ns: u64,
    /// GET latency p99 over the window, nanoseconds.
    pub p99_get_ns: u64,
    /// Raw window counters for auditability.
    pub hits: u64,
    /// Cache misses in the window.
    pub misses: u64,
    /// CLOCK evictions in the window.
    pub evictions: u64,
}

/// Measures one sweep point: load, zipfian warmup (fills the cache),
/// then a measured GET-only window. Returns the result plus the
/// deterministic readback sample for the identity check.
pub fn measure_hitrate(
    pct_of_hot: u64,
    capacity_bytes: u64,
    keys: u64,
    warmup_ops: u64,
    measure_ops: u64,
    seed: u64,
) -> (HitRateResult, Vec<(Vec<u8>, Option<Vec<u8>>)>) {
    let store = open_store(&format!("cache-sweep-{pct_of_hot}"), capacity_bytes as usize);
    load(&store, keys);
    drive(&store, keys, warmup_ops, seed ^ 0xAA55_77EE);

    let before = store.metrics_snapshot();
    let began = Instant::now();
    let lat = drive(&store, keys, measure_ops, seed);
    let wall_secs = began.elapsed().as_secs_f64();
    let after = store.metrics_snapshot();

    let hits = cache_counter(&after, "p2kvs_cache_hits") - cache_counter(&before, "p2kvs_cache_hits");
    let misses =
        cache_counter(&after, "p2kvs_cache_misses") - cache_counter(&before, "p2kvs_cache_misses");
    let evictions = cache_counter(&after, "p2kvs_cache_evictions")
        - cache_counter(&before, "p2kvs_cache_evictions");
    let ops = lat.len() as u64;
    let result = HitRateResult {
        pct_of_hot,
        capacity_bytes,
        ops,
        wall_secs,
        throughput_ops_sec: ops as f64 / wall_secs.max(1e-9),
        hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
        p50_get_ns: percentile(&lat, 0.50),
        p99_get_ns: percentile(&lat, 0.99),
        hits,
        misses,
        evictions,
    };
    let sample = readback(&store, keys);
    store.close();
    (result, sample)
}

/// The miss-path overhead measurement: cache-on vs cache-off over reads
/// that never repeat a key.
#[derive(Debug, Clone)]
pub struct MissPathResult {
    /// Keys read (each exactly once) per round.
    pub keys_per_round: u64,
    /// Rounds driven; the fastest round per configuration is compared.
    pub rounds: u64,
    /// Fastest all-miss round, cache off, seconds.
    pub off_secs: f64,
    /// Fastest all-miss round, cache on, seconds.
    pub on_secs: f64,
    /// `(on/off - 1) × 100`: positive = the cache slowed misses down.
    pub overhead_pct: f64,
}

/// Drives `rounds` disjoint single-pass key slices through a cache-off
/// and a cache-on store. No key is ever read twice, so every cache-on
/// lookup is a miss followed by a worker-side fill — the pure overhead
/// path. Comparing the fastest round per configuration damps scheduler
/// noise on loaded CI runners.
pub fn measure_miss_overhead(keys_total: u64, rounds: u64, _seed: u64) -> MissPathResult {
    let keys_per_round = (keys_total / rounds).max(1);
    let keys = keys_per_round * rounds;
    let off = open_store("cache-miss-off", 0);
    let on = open_store("cache-miss-on", 64 << 20);
    load(&off, keys);
    load(&on, keys);

    let pass = |store: &P2Kvs<lsmkv::Db>, round: u64| -> f64 {
        let began = Instant::now();
        for i in round * keys_per_round..(round + 1) * keys_per_round {
            assert!(store.get(&key_of(i)).unwrap().is_some());
        }
        began.elapsed().as_secs_f64()
    };
    let (mut off_secs, mut on_secs) = (f64::MAX, f64::MAX);
    for round in 0..rounds {
        off_secs = off_secs.min(pass(&off, round));
        on_secs = on_secs.min(pass(&on, round));
    }
    // The measurement is only valid if it really was all-miss.
    let snap = on.metrics_snapshot();
    assert_eq!(
        cache_counter(&snap, "p2kvs_cache_hits"),
        0,
        "single-pass reads must never hit"
    );
    off.close();
    on.close();
    MissPathResult {
        keys_per_round,
        rounds,
        off_secs,
        on_secs,
        overhead_pct: (on_secs / off_secs.max(1e-12) - 1.0) * 100.0,
    }
}

/// The skew-recovery comparison: static, balanced, and balanced+cache.
#[derive(Debug, Clone)]
pub struct SkewRecovery {
    /// Aggregate throughput of the unlucky static layout.
    pub static_ops_sec: f64,
    /// Aggregate throughput with the balancer, cache off.
    pub balanced_ops_sec: f64,
    /// Aggregate throughput with the balancer *and* the read cache.
    pub balanced_cached_ops_sec: f64,
    /// `balanced_cached / static` — the headline recovery ratio.
    pub cached_over_static: f64,
    /// Readback byte-identity across all three configurations.
    pub reads_identical: bool,
}

/// Runs the skew bench's pinned unlucky draw three ways (identical
/// workload and seed): static map, balanced map, balanced map plus the
/// read cache. Panics if any configuration's reads diverge.
pub fn measure_skew_recovery(
    cache_capacity: usize,
    keys_per_tenant: u64,
    warmup_ops: u64,
    measure_ops: u64,
    seed: u64,
) -> SkewRecovery {
    use crate::skew;
    let (stat, a) =
        skew::measure_cached("static", false, 0, keys_per_tenant, warmup_ops, measure_ops, seed);
    let (bal, b) =
        skew::measure_cached("balanced", true, 0, keys_per_tenant, warmup_ops, measure_ops, seed);
    let (cached, c) = skew::measure_cached(
        "balanced_cached",
        true,
        cache_capacity,
        keys_per_tenant,
        warmup_ops,
        measure_ops,
        seed,
    );
    let reads_identical = a == b && b == c;
    assert!(
        reads_identical,
        "cached and uncached configurations must return byte-identical reads"
    );
    SkewRecovery {
        static_ops_sec: stat.throughput_ops_sec,
        balanced_ops_sec: bal.throughput_ops_sec,
        balanced_cached_ops_sec: cached.throughput_ops_sec,
        cached_over_static: cached.throughput_ops_sec / stat.throughput_ops_sec.max(1e-9),
        reads_identical,
    }
}

/// Everything one full bench run produced.
pub struct CacheBenchSummary {
    /// The hit-rate sweep, in [`SWEEP_PCT`] order.
    pub results: Vec<HitRateResult>,
    /// Hot-set rank count at [`HOT_MASS`].
    pub hot_keys: u64,
    /// Hot-set cache cost in bytes.
    pub hot_bytes: u64,
    /// Byte-identity across every sweep configuration.
    pub reads_identical: bool,
    /// The miss-path overhead measurement.
    pub miss: MissPathResult,
    /// The three-way skew-recovery comparison.
    pub skew: SkewRecovery,
}

/// Renders the `BENCH_cache.json` artifact.
pub fn render_json(summary: &CacheBenchSummary, keys: u64, seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("cache_hitrate", seed)
            .num("workers", WORKERS)
            .num("keys", keys)
            .num("theta", THETA)
            .num("value_len", VALUE_LEN)
            .num("hot_mass", HOT_MASS)
            .num("hot_set_keys", summary.hot_keys)
            .num("hot_set_bytes", summary.hot_bytes)
            .render(),
    );
    s.push_str(&format!("  \"reads_identical\": {},\n", summary.reads_identical));
    let full = summary.results.last();
    s.push_str(&format!(
        "  \"hit_rate_full\": {:.4},\n",
        full.map_or(0.0, |r| r.hit_rate)
    ));
    s.push_str(&format!(
        "  \"p50_get_ns_full\": {},\n",
        full.map_or(0, |r| r.p50_get_ns)
    ));
    s.push_str(&format!(
        "  \"miss_overhead_pct\": {:.3},\n",
        summary.miss.overhead_pct
    ));
    s.push_str(&format!(
        "  \"skew_recovery\": {{\"static_ops_sec\": {:.1}, \"balanced_ops_sec\": {:.1}, \
         \"balanced_cached_ops_sec\": {:.1}, \"cached_over_static\": {:.3}, \
         \"reads_identical\": {}}},\n",
        summary.skew.static_ops_sec,
        summary.skew.balanced_ops_sec,
        summary.skew.balanced_cached_ops_sec,
        summary.skew.cached_over_static,
        summary.skew.reads_identical,
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in summary.results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pct_of_hot\": {}, \"capacity_bytes\": {}, \"ops\": {}, \
             \"wall_secs\": {:.3}, \"throughput_ops_sec\": {:.1}, \"hit_rate\": {:.4}, \
             \"p50_get_ns\": {}, \"p99_get_ns\": {}, \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}}}{}\n",
            r.pct_of_hot,
            r.capacity_bytes,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.hit_rate,
            r.p50_get_ns,
            r.p99_get_ns,
            r.hits,
            r.misses,
            r.evictions,
            if i + 1 == summary.results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_cache.json"),
        _ => PathBuf::from("BENCH_cache.json"),
    }
}

/// Runs the full bench (20k zipfian keys, 200k warmup and 120k measured
/// GETs per sweep point, scaled by `P2KVS_SCALE`; seed from
/// `P2KVS_CACHE_SEED`, default fixed) and writes `BENCH_cache.json` to
/// `path`. Panics if any configuration's reads diverge.
pub fn run_default(path: &Path) -> std::io::Result<CacheBenchSummary> {
    let keys = crate::scaled(20_000);
    // Two-touch admission needs a longer warmup than a fill-on-first-miss
    // cache would: tail keys of the hot set must recur twice to be cached.
    let warmup_ops = crate::scaled(200_000);
    let measure_ops = crate::scaled(120_000);
    let seed = std::env::var("P2KVS_CACHE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xCAC4_E5EED);

    let (hot_keys, hot_bytes) = hot_set(keys);
    let mut results = Vec::new();
    let mut samples = Vec::new();
    for pct in SWEEP_PCT {
        let capacity = hot_bytes * pct / 100;
        let (r, sample) = measure_hitrate(pct, capacity, keys, warmup_ops, measure_ops, seed);
        results.push(r);
        samples.push(sample);
    }
    let reads_identical = samples.windows(2).all(|w| w[0] == w[1]);
    assert!(
        reads_identical,
        "sweep configurations must return byte-identical reads"
    );

    let miss = measure_miss_overhead(crate::scaled(60_000), 3, seed);
    let skew = measure_skew_recovery(
        16 << 20,
        crate::scaled(2_000),
        crate::scaled(60_000),
        crate::scaled(120_000),
        seed,
    );

    let summary = CacheBenchSummary { results, hot_keys, hot_bytes, reads_identical, miss, skew };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&summary, keys, seed))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_set_is_a_strict_subset_carrying_most_mass() {
        let (hot, bytes) = hot_set(2_000);
        assert!(hot >= 1 && hot < 2_000, "hot set {hot} of 2000");
        // θ=0.99 is weakly skewed at this scale: the hot set is large in
        // keys but still a strict subset, and its byte cost is exact.
        assert_eq!(
            bytes,
            (0..hot)
                .map(|r| (key_of(r).len() + VALUE_LEN) as u64 + p2kvs::cache::RECORD_OVERHEAD)
                .sum::<u64>()
        );
    }

    #[test]
    fn tiny_sweep_point_hits_and_validates() {
        let keys = 400;
        let (_, hot_bytes) = hot_set(keys);
        let (off, a) = measure_hitrate(0, 0, keys, 2_000, 2_000, 7);
        let (full, b) = measure_hitrate(100, hot_bytes, keys, 2_000, 2_000, 7);
        assert_eq!(a, b, "reads must not depend on the cache");
        assert_eq!(off.hit_rate, 0.0);
        assert!(full.hit_rate > 0.5, "hit rate {} with the full hot set", full.hit_rate);
        assert!(full.p50_get_ns <= full.p99_get_ns);
        assert!(full.hits > 0 && off.hits == 0);

        let miss = measure_miss_overhead(2_000, 2, 7);
        assert!(miss.overhead_pct.is_finite());

        let summary = CacheBenchSummary {
            results: vec![off, full],
            hot_keys: hot_set(keys).0,
            hot_bytes,
            reads_identical: true,
            miss,
            skew: SkewRecovery {
                static_ops_sec: 1000.0,
                balanced_ops_sec: 1100.0,
                balanced_cached_ops_sec: 1500.0,
                cached_over_static: 1.5,
                reads_identical: true,
            },
        };
        let json = render_json(&summary, keys, 7);
        assert!(json.contains("\"bench\": \"cache_hitrate\""));
        assert!(json.contains("\"miss_overhead_pct\""));
        assert!(json.contains("\"cached_over_static\""));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
