//! Per-run metrics JSON artifacts.
//!
//! When `P2KVS_METRICS_DIR` is set, every p2KVS store the harness closes
//! writes its final [`MetricsSnapshot`] there as
//! `<experiment>-<seq>.metrics.json` (the `repro` binary defaults the
//! directory to `repro_metrics/`). The artifact is the JSON render of the
//! snapshot: framework counters, queue-wait/service histograms, queue
//! depths, and per-instance `engine_*` metrics — enough to audit any
//! throughput or latency number the run printed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use p2kvs_obs::MetricsSnapshot;

/// Environment variable naming the artifact directory; unset (or empty)
/// disables artifact writing.
pub const METRICS_DIR_ENV: &str = "P2KVS_METRICS_DIR";

static EXPERIMENT: Mutex<Option<String>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Labels subsequent artifacts with `id` (the experiment currently
/// running, e.g. `fig13`).
pub fn set_experiment(id: &str) {
    *EXPERIMENT.lock().expect("experiment label poisoned") = Some(id.to_string());
}

/// Writes `snapshot` as a JSON artifact if `P2KVS_METRICS_DIR` is set;
/// returns the path written, `None` when disabled or on IO failure
/// (artifacts are best-effort — a full disk must not fail a benchmark).
pub fn maybe_write(snapshot: &MetricsSnapshot) -> Option<PathBuf> {
    let dir = std::env::var(METRICS_DIR_ENV)
        .ok()
        .filter(|d| !d.is_empty())?;
    let label = EXPERIMENT
        .lock()
        .expect("experiment label poisoned")
        .clone()
        .unwrap_or_else(|| "run".to_string());
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{label}-{seq:03}.metrics.json"));
    std::fs::write(&path, snapshot.render_json()).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_labeled_artifact_when_enabled() {
        let dir = std::env::temp_dir().join("p2kvs-artifact-test");
        std::env::set_var(METRICS_DIR_ENV, &dir);
        set_experiment("figX");
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("ops_total".into(), 7));
        let path = maybe_write(&snap).expect("artifact written");
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("figX-"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"ops_total\": 7"));
        std::env::remove_var(METRICS_DIR_ENV);
        assert!(maybe_write(&snap).is_none(), "unset env disables artifacts");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
