//! Per-run metrics JSON artifacts and the shared run metadata every
//! `BENCH_*.json` artifact embeds.
//!
//! When `P2KVS_METRICS_DIR` is set, every p2KVS store the harness closes
//! writes its final [`MetricsSnapshot`] there as
//! `<experiment>-<seq>.metrics.json` (the `repro` binary defaults the
//! directory to `repro_metrics/`). The artifact is the JSON render of the
//! snapshot: framework counters, queue-wait/service histograms, queue
//! depths, and per-instance `engine_*` metrics — enough to audit any
//! throughput or latency number the run printed.
//!
//! The benchmark artifacts (`BENCH_accessing.json`, `BENCH_scan.json`,
//! `BENCH_skew.json`, `BENCH_trace.json`, `BENCH_cache.json`,
//! `BENCH_backup.json`) additionally open with a
//! [`RunMeta`] header — schema version, bench id, timestamp, seed, git
//! revision when discoverable, and the run's configuration knobs — so
//! every artifact is self-describing: a number in CI can always be traced
//! back to the exact code revision and parameters that produced it.
//! [`validate_schema`] checks that contract and is unit-tested against
//! all the artifact renderers.

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use p2kvs_obs::MetricsSnapshot;

/// Version of the shared artifact envelope. Bump when the meta header or
/// a required top-level key changes shape.
pub const SCHEMA_VERSION: u64 = 2;

/// Environment variable naming the artifact directory; unset (or empty)
/// disables artifact writing.
pub const METRICS_DIR_ENV: &str = "P2KVS_METRICS_DIR";

static EXPERIMENT: Mutex<Option<String>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Labels subsequent artifacts with `id` (the experiment currently
/// running, e.g. `fig13`).
pub fn set_experiment(id: &str) {
    *EXPERIMENT.lock().expect("experiment label poisoned") = Some(id.to_string());
}

/// Writes `snapshot` as a JSON artifact if `P2KVS_METRICS_DIR` is set;
/// returns the path written, `None` when disabled or on IO failure
/// (artifacts are best-effort — a full disk must not fail a benchmark).
pub fn maybe_write(snapshot: &MetricsSnapshot) -> Option<PathBuf> {
    let dir = std::env::var(METRICS_DIR_ENV)
        .ok()
        .filter(|d| !d.is_empty())?;
    let label = EXPERIMENT
        .lock()
        .expect("experiment label poisoned")
        .clone()
        .unwrap_or_else(|| "run".to_string());
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{label}-{seq:03}.metrics.json"));
    std::fs::write(&path, snapshot.render_json()).ok()?;
    Some(path)
}

/// The self-describing header every `BENCH_*.json` artifact opens with.
///
/// Built by the bench that owns the artifact, rendered by
/// [`RunMeta::render`] as the first keys of the top-level JSON object:
/// `bench`, `schema_version`, `generated_unix`, `seed`, `git_rev`
/// (`null` when the build is not inside a git checkout), and a `config`
/// object holding the run's knobs (op counts, thread counts, sample
/// rates, ...).
pub struct RunMeta {
    bench: String,
    seed: u64,
    /// Keys paired with pre-rendered JSON value tokens.
    config: Vec<(String, String)>,
}

impl RunMeta {
    /// Starts a header for the bench `bench` run with `seed` (0 for
    /// seedless deterministic workloads).
    pub fn new(bench: &str, seed: u64) -> RunMeta {
        RunMeta { bench: bench.to_string(), seed, config: Vec::new() }
    }

    /// Adds a numeric (or boolean — any bare-token) config knob.
    pub fn num(mut self, key: &str, value: impl Display) -> RunMeta {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a string config knob (quoted in the JSON).
    pub fn text(mut self, key: &str, value: &str) -> RunMeta {
        self.config
            .push((key.to_string(), format!("\"{}\"", value.replace('"', "'"))));
        self
    }

    /// Renders the header as the leading lines of a two-space-indented
    /// JSON object body (trailing comma included — summary keys follow).
    pub fn render(&self) -> String {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let rev = git_rev().map_or("null".to_string(), |r| format!("\"{r}\""));
        let config: Vec<String> = self
            .config
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!(
            "  \"bench\": \"{}\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \
             \"generated_unix\": {unix},\n  \"seed\": {},\n  \"git_rev\": {rev},\n  \
             \"config\": {{{}}},\n",
            self.bench,
            self.seed,
            config.join(", "),
        )
    }
}

/// Best-effort current git revision: walks up from the working directory
/// to the nearest `.git`, follows `HEAD` one level of indirection, and
/// returns the 40-hex commit id. `None` outside a checkout (artifacts
/// then record `git_rev: null`) — a bench must never fail over this.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let id = match head.strip_prefix("ref: ") {
                None => head.to_string(),
                Some(refname) => match std::fs::read_to_string(git.join(refname)) {
                    Ok(id) => id.trim().to_string(),
                    // Ref may live only in packed-refs.
                    Err(_) => {
                        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                        packed
                            .lines()
                            .find(|l| l.ends_with(refname))
                            .and_then(|l| l.split_ascii_whitespace().next())?
                            .to_string()
                    }
                },
            };
            return (id.len() == 40 && id.bytes().all(|b| b.is_ascii_hexdigit()))
                .then_some(id);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Validates the shared `BENCH_*.json` envelope: structurally balanced
/// JSON (string-aware brace/bracket scan) carrying every required
/// [`RunMeta`] key with the right value shape, plus a `results` array.
/// Returns the violations found; empty = conforming.
pub fn validate_schema(json: &str) -> Vec<String> {
    let mut v = Vec::new();

    // Structural scan: braces/brackets balanced outside string literals.
    let (mut depth, mut brackets) = (0i64, 0i64);
    let (mut in_str, mut escaped) = (false, false);
    for c in json.chars() {
        match (in_str, escaped, c) {
            (true, true, _) => escaped = false,
            (true, false, '\\') => escaped = true,
            (true, false, '"') => in_str = false,
            (true, ..) => {}
            (false, _, '"') => in_str = true,
            (false, _, '{') => depth += 1,
            (false, _, '}') => depth -= 1,
            (false, _, '[') => brackets += 1,
            (false, _, ']') => brackets -= 1,
            _ => {}
        }
        if depth < 0 || brackets < 0 {
            v.push("unbalanced closers".into());
            return v;
        }
    }
    if depth != 0 || brackets != 0 || in_str {
        v.push(format!(
            "unbalanced document (brace depth {depth}, bracket depth {brackets}, in_str {in_str})"
        ));
    }

    // Required keys, each with a shape sniff on the first value char.
    let shape_of = |key: &str| -> Option<char> {
        let at = json.find(&format!("\"{key}\":"))?;
        json[at + key.len() + 3..].trim_start().chars().next()
    };
    let mut expect = |key: &str, ok: &dyn Fn(char) -> bool, want: &str| match shape_of(key) {
        None => v.push(format!("missing required key \"{key}\"")),
        Some(c) if !ok(c) => {
            v.push(format!("key \"{key}\" should be {want}, starts with {c:?}"))
        }
        Some(_) => {}
    };
    expect("bench", &|c| c == '"', "a string");
    expect("generated_unix", &|c| c.is_ascii_digit(), "a number");
    expect("seed", &|c| c.is_ascii_digit(), "a number");
    expect("git_rev", &|c| c == '"' || c == 'n', "a string or null");
    expect("config", &|c| c == '{', "an object");
    expect("results", &|c| c == '[', "an array");
    if !json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")) {
        v.push(format!("missing or stale schema_version (want {SCHEMA_VERSION})"));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_meta_renders_required_keys_and_validates() {
        let meta = RunMeta::new("unit", 42)
            .num("threads", 8)
            .num("identical", true)
            .text("profile", "optane");
        let doc = format!("{{\n{}  \"results\": []\n}}\n", meta.render());
        assert!(doc.contains("\"bench\": \"unit\""), "{doc}");
        assert!(doc.contains("\"seed\": 42"));
        assert!(doc.contains("\"threads\": 8"));
        assert!(doc.contains("\"identical\": true"));
        assert!(doc.contains("\"profile\": \"optane\""));
        let violations = validate_schema(&doc);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn validate_schema_catches_missing_keys_and_imbalance() {
        let v = validate_schema("{\"bench\": \"x\"}");
        assert!(v.iter().any(|m| m.contains("\"seed\"")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("schema_version")), "{v:?}");
        let v = validate_schema("{\"a\": [1, 2}");
        assert!(v.iter().any(|m| m.contains("unbalanced")), "{v:?}");
        // Braces inside string literals must not confuse the scan.
        let meta = RunMeta::new("b{r[ace", 1).text("k", "}}]]");
        let doc = format!("{{\n{}  \"results\": []\n}}\n", meta.render());
        assert!(validate_schema(&doc).is_empty());
    }

    #[test]
    fn git_rev_is_stable_within_a_checkout() {
        // In a checkout both calls agree on a 40-hex id; outside one,
        // both are None — either way the function must be deterministic.
        assert_eq!(git_rev(), git_rev());
        if let Some(rev) = git_rev() {
            assert_eq!(rev.len(), 40);
        }
    }

    /// The schema contract, checked against the `BENCH_*.json`
    /// renderers with synthetic results (no benchmark execution).
    #[test]
    fn all_bench_artifacts_conform_to_schema() {
        let accessing = crate::accessing::render_json(
            &[crate::accessing::FanInResult {
                queue: "ring",
                mode: "pipelined",
                window: 16,
                threads: 8,
                ops: 1000,
                elapsed_secs: 0.5,
                ops_per_sec: 2000.0,
                avg_batch: 3.5,
                p50_rt_ns: 900,
                p99_rt_ns: 4000,
            }],
            1000,
            32,
        );
        let scan = crate::scaninterf::render_json(
            &[crate::scaninterf::InterfResult {
                config: "chunked",
                chunk_entries: 256,
                p50_get_idle_ns: 800,
                p99_get_idle_ns: 2000,
                p50_get_scan_ns: 900,
                p99_get_scan_ns: 3000,
                gets_during_scan: 500,
                scans_completed: 2,
                scan_entries_per_sec: 1e5,
                scan_chunks: 40,
                scan_resumes: 38,
            }],
            100_000,
            100,
            true,
        );
        let skew = crate::skew::render_json(
            &[crate::skew::SkewResult {
                config: "balanced",
                workers: 4,
                shards: 16,
                migrations: 3,
                ops: 1000,
                wall_secs: 0.5,
                throughput_ops_sec: 2000.0,
                p50_get_ns: 900,
                p99_get_ns: 4000,
                worker_ops: vec![250, 250, 250, 250],
                ops_spread: 1.0,
                busy_spread: 1.1,
            }],
            2000,
            true,
            7,
        );
        let trace = crate::traceov::render_json(
            &crate::traceov::TraceOvSummary {
                results: vec![crate::traceov::TraceOvResult {
                    config: "sampled",
                    trace_sample: 64,
                    round: 0,
                    ops: 1000,
                    wall_secs: 0.5,
                    throughput_ops_sec: 2000.0,
                    read_checksum: 42,
                    spans_recorded: 9,
                }],
                best_disabled: 2040.0,
                best_sampled: 2000.0,
                overhead_pct: 1.96,
                within_budget: true,
            },
            4,
            1000,
            100,
            7,
            true,
        );
        let cache = crate::cachebench::render_json(
            &crate::cachebench::CacheBenchSummary {
                results: vec![crate::cachebench::HitRateResult {
                    pct_of_hot: 100,
                    capacity_bytes: 1 << 20,
                    ops: 1000,
                    wall_secs: 0.5,
                    throughput_ops_sec: 2000.0,
                    hit_rate: 0.93,
                    p50_get_ns: 400,
                    p99_get_ns: 9000,
                    hits: 930,
                    misses: 70,
                    evictions: 12,
                }],
                hot_keys: 1200,
                hot_bytes: 1 << 20,
                reads_identical: true,
                miss: crate::cachebench::MissPathResult {
                    keys_per_round: 1000,
                    rounds: 3,
                    off_secs: 0.5,
                    on_secs: 0.505,
                    overhead_pct: 1.0,
                },
                skew: crate::cachebench::SkewRecovery {
                    static_ops_sec: 1000.0,
                    balanced_ops_sec: 1100.0,
                    balanced_cached_ops_sec: 1500.0,
                    cached_over_static: 1.5,
                    reads_identical: true,
                },
            },
            20_000,
            7,
        );
        let backup = crate::backupload::render_json(
            &crate::backupload::BackupLoadSummary {
                results: vec![crate::backupload::BackupLoadResult {
                    phase: "streaming",
                    round: 0,
                    ops: 1000,
                    wall_secs: 0.5,
                    throughput_ops_sec: 2000.0,
                    p50_get_ns: 900,
                    p99_get_ns: 4000,
                    p50_put_ns: 1100,
                    p99_put_ns: 6000,
                    cut_at_op: 125,
                    backup_entries: 400,
                    backup_wall_secs: 0.1,
                }],
                best_idle_get_p99_ns: 3000,
                best_streaming_get_p99_ns: 4000,
                best_idle_put_p99_ns: 5000,
                best_streaming_put_p99_ns: 6000,
                degradation_x_get: 1.33,
                degradation_x_put: 1.2,
                within_budget: true,
            },
            400,
            1000,
            7,
        );
        let elastic = crate::elastic::render_json(
            &crate::elastic::ElasticSummary {
                results: vec![crate::elastic::PhaseResult {
                    config: "elastic",
                    phase: 0,
                    load_x: 1,
                    workers_avg: 1.5,
                    workers_end: 2,
                    ops: 1000,
                    wall_secs: 0.5,
                    throughput_ops_sec: 2000.0,
                    p50_get_ns: 900,
                    p99_get_ns: 4000,
                }],
                elastic_avg_workers: 2.5,
                static_avg_workers: 8.0,
                elastic_peak_workers: 6,
                provisioning_improvement: 3.2,
                elastic_p99_ns: 4000,
                static_p99_ns: 3500,
                p99_ratio: 1.14,
                latency_within_budget: true,
                provisioning_within_budget: true,
                reads_identical: true,
            },
            10_000,
            4_000,
            7,
        );
        for (name, doc) in [
            ("accessing", &accessing),
            ("scan", &scan),
            ("skew", &skew),
            ("trace", &trace),
            ("cache", &cache),
            ("backup", &backup),
            ("elastic", &elastic),
        ] {
            let v = validate_schema(doc);
            assert!(v.is_empty(), "BENCH_{name}.json schema: {v:?}\n{doc}");
        }
    }

    #[test]
    fn writes_labeled_artifact_when_enabled() {
        let dir = std::env::temp_dir().join("p2kvs-artifact-test");
        std::env::set_var(METRICS_DIR_ENV, &dir);
        set_experiment("figX");
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("ops_total".into(), 7));
        let path = maybe_write(&snap).expect("artifact written");
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("figX-"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"ops_total\": 7"));
        std::env::remove_var(METRICS_DIR_ENV);
        assert!(maybe_write(&snap).is_none(), "unset env disables artifacts");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
