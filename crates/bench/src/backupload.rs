//! Backup-under-load scenario benchmark: foreground GET/PUT latency
//! while a GSN-consistent online backup streams, versus idle, writing
//! `BENCH_backup.json`.
//!
//! The scenario is the one `P2Kvs::backup` exists for: a store serving
//! live traffic that must be snapshotted without going read-only. Each
//! round runs the identical deterministic client workload twice — once
//! undisturbed (`idle`), once with a backup cut partway into the
//! measured window (`streaming`), so the freeze stall, the per-shard
//! snapshot markers, and the background streamer all land inside the
//! measured interval. The gate: foreground GET and PUT p99 while
//! streaming may be at most [`DEGRADATION_BUDGET_X`]× their idle
//! best — an online backup that doubles tail latency is not online.
//!
//! Every streaming round also proves it measured a *real* backup: the
//! cut must capture at least the preloaded key count, and the directory
//! must restore to a store serving the expected values (values derive
//! from the key alone, so any GSN-consistent cut reads back
//! identically). No `rand` dependency: a fixed LCG keeps every run
//! reproducible.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, SimEnv};

/// Gate: streaming-phase p99 (GET and PUT, each) must stay within this
/// multiple of the idle-phase best.
pub const DEGRADATION_BUDGET_X: f64 = 2.0;
/// Worker threads the store runs.
pub const WORKERS: usize = 3;
/// Virtual shards (3× workers keeps freeze markers per-worker plural).
const SHARDS: usize = 9;
/// Client threads issuing the foreground workload.
const CLIENTS: usize = 3;
/// Fraction of workload ops that are writes (YCSB-A-leaning: writes
/// are what the freeze window visibly stalls).
const PUT_PERCENT: u64 = 20;
/// Measured rounds per phase; the summary compares best-of (lowest
/// p99), which tames scheduler noise the same way `traceov` does.
const ROUNDS: usize = 2;
/// The cut lands after `ops / CUT_AT_DIVISOR` foreground ops — deep
/// enough into the window that both phases start identically warm.
const CUT_AT_DIVISOR: u64 = 8;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("blr-{i:07}").into_bytes()
}

/// Values derive from the key alone, so re-puts are idempotent: any
/// GSN-consistent cut holds `value_of(k)` for every key it holds, no
/// matter how clients interleaved with the freeze.
fn value_of(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64;
    for b in key {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut v = Vec::with_capacity(120);
    while v.len() < 120 {
        v.extend_from_slice(&h.to_le_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    v.truncate(120);
    v
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One phase × round measurement.
#[derive(Debug, Clone)]
pub struct BackupLoadResult {
    /// `idle` (no backup) or `streaming` (backup cut mid-window).
    pub phase: &'static str,
    /// Round index within the phase.
    pub round: usize,
    /// Foreground ops completed in the window.
    pub ops: u64,
    /// Wall-clock seconds of the window.
    pub wall_secs: f64,
    /// Aggregate foreground throughput over the window.
    pub throughput_ops_sec: f64,
    /// Foreground GET latency percentiles over the window, nanoseconds.
    pub p50_get_ns: u64,
    /// GET p99 — the gated number.
    pub p99_get_ns: u64,
    /// Foreground PUT latency percentiles over the window, nanoseconds.
    pub p50_put_ns: u64,
    /// PUT p99 — the gated number.
    pub p99_put_ns: u64,
    /// Foreground ops already completed when the backup cut (0 idle).
    pub cut_at_op: u64,
    /// Entries the backup captured (0 idle).
    pub backup_entries: u64,
    /// Cut + stream wall-clock seconds (0 idle).
    pub backup_wall_secs: f64,
}

/// The artifact's summary block: best-of-round p99s per phase and the
/// degradation ratios the CI job gates on.
#[derive(Debug, Clone)]
pub struct BackupLoadSummary {
    /// All measured rounds, both phases.
    pub results: Vec<BackupLoadResult>,
    /// Lowest GET p99 across idle rounds, nanoseconds.
    pub best_idle_get_p99_ns: u64,
    /// Lowest GET p99 across streaming rounds, nanoseconds.
    pub best_streaming_get_p99_ns: u64,
    /// Lowest PUT p99 across idle rounds, nanoseconds.
    pub best_idle_put_p99_ns: u64,
    /// Lowest PUT p99 across streaming rounds, nanoseconds.
    pub best_streaming_put_p99_ns: u64,
    /// `best_streaming_get_p99_ns / best_idle_get_p99_ns`.
    pub degradation_x_get: f64,
    /// `best_streaming_put_p99_ns / best_idle_put_p99_ns`.
    pub degradation_x_put: f64,
    /// Both ratios within [`DEGRADATION_BUDGET_X`].
    pub within_budget: bool,
}

/// Measures one phase round: preload, run the client window, and when
/// `stream` cut an online backup once the window is warm, wait for the
/// streamer *concurrently with the window*, then restore-verify the
/// directory. Deterministic per `(seed, client index)`.
pub fn measure(
    phase: &'static str,
    stream: bool,
    round: usize,
    keys: u64,
    ops: u64,
    seed: u64,
) -> BackupLoadResult {
    // The paper's simulated NVMe device: the streamer's reads and the
    // backup files' writes cost real simulated time, so the overlap the
    // bench measures is storage contention, not just CPU.
    let env: p2kvs_storage::EnvRef = std::sync::Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 256 << 10;
    lsm.target_file_size = 1 << 20;
    lsm.block_cache_size = 256 << 10;
    let mut opts = P2KvsOptions::with_workers(WORKERS);
    opts.pin_workers = false;
    opts.shards = SHARDS;
    // Cache off: hits served client-side would hide the worker-path
    // stall the freeze window causes — the very thing being measured.
    opts.cache_capacity = 0;
    let name = format!("blr-{phase}-{round}");
    let store = P2Kvs::open(LsmFactory::new(lsm.clone()), &name, opts.clone()).unwrap();
    for i in 0..keys {
        let k = key_of(i);
        store.put(&k, &value_of(&k)).unwrap();
    }

    let per_client = (ops / CLIENTS as u64).max(1);
    let cut_target = (ops / CUT_AT_DIVISOR).clamp(1, per_client * CLIENTS as u64 - 1);
    let done = AtomicU64::new(0);
    let began = Instant::now();
    let (mut gets, mut puts, backup) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let store = &store;
                let done = &done;
                s.spawn(move || {
                    let mut rng = Lcg(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)));
                    let mut gets = Vec::with_capacity(per_client as usize);
                    let mut puts = Vec::new();
                    for _ in 0..per_client {
                        let key = key_of(rng.next() % keys);
                        if rng.next() % 100 < PUT_PERCENT {
                            let t = Instant::now();
                            store.put(&key, &value_of(&key)).unwrap();
                            puts.push(t.elapsed().as_nanos() as u64);
                        } else {
                            let t = Instant::now();
                            let got = store.get(&key).unwrap();
                            gets.push(t.elapsed().as_nanos() as u64);
                            assert!(got.is_some(), "preloaded key missing");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    (gets, puts)
                })
            })
            .collect();
        // The cut lands mid-window: the freeze stall, the marker acks,
        // and (held by `wait` here, concurrent with the clients) the
        // whole streamer run all overlap the measured interval.
        let backup = if stream {
            while done.load(Ordering::Relaxed) < cut_target {
                std::thread::yield_now();
            }
            let cut_at = done.load(Ordering::Relaxed);
            let cut_began = Instant::now();
            let report = store
                .backup(format!("{name}-backup"))
                .expect("cut under load")
                .wait()
                .expect("stream under load");
            Some((cut_at, report.entries, cut_began.elapsed().as_secs_f64()))
        } else {
            None
        };
        let mut gets = Vec::new();
        let mut puts = Vec::new();
        for h in handles {
            let (g, p) = h.join().unwrap();
            gets.extend(g);
            puts.extend(p);
        }
        (gets, puts, backup)
    });
    let wall_secs = began.elapsed().as_secs_f64();
    let ops_done = (gets.len() + puts.len()) as u64;

    let (cut_at_op, backup_entries, backup_wall_secs) = backup.unwrap_or((0, 0, 0.0));
    if stream {
        assert!(
            backup_entries >= keys,
            "{phase} round {round}: cut lost keys ({backup_entries} < {keys})"
        );
        // The measured backup is a real one: it restores, and every
        // sampled key reads back its key-derived value.
        let restored = P2Kvs::restore(
            LsmFactory::new(lsm),
            format!("{name}-backup"),
            format!("{name}-restored"),
            opts,
        )
        .expect("restore the measured backup");
        for i in (0..keys).step_by(199) {
            let k = key_of(i);
            assert_eq!(
                restored.get(&k).unwrap().as_deref(),
                Some(value_of(&k).as_slice()),
                "restored copy lost key {i}"
            );
        }
        restored.close();
    }
    store.close();

    gets.sort_unstable();
    puts.sort_unstable();
    BackupLoadResult {
        phase,
        round,
        ops: ops_done,
        wall_secs,
        throughput_ops_sec: ops_done as f64 / wall_secs.max(1e-9),
        p50_get_ns: percentile(&gets, 0.50),
        p99_get_ns: percentile(&gets, 0.99),
        p50_put_ns: percentile(&puts, 0.50),
        p99_put_ns: percentile(&puts, 0.99),
        cut_at_op,
        backup_entries,
        backup_wall_secs,
    }
}

/// Folds rounds into the gated summary: best (lowest) p99 per phase per
/// op kind, degradation ratios, and the budget verdict.
pub fn summarize(results: Vec<BackupLoadResult>) -> BackupLoadSummary {
    let best = |phase: &str, f: fn(&BackupLoadResult) -> u64| -> u64 {
        results
            .iter()
            .filter(|r| r.phase == phase)
            .map(f)
            .min()
            .unwrap_or(0)
            .max(1)
    };
    let best_idle_get_p99_ns = best("idle", |r| r.p99_get_ns);
    let best_streaming_get_p99_ns = best("streaming", |r| r.p99_get_ns);
    let best_idle_put_p99_ns = best("idle", |r| r.p99_put_ns);
    let best_streaming_put_p99_ns = best("streaming", |r| r.p99_put_ns);
    let degradation_x_get = best_streaming_get_p99_ns as f64 / best_idle_get_p99_ns as f64;
    let degradation_x_put = best_streaming_put_p99_ns as f64 / best_idle_put_p99_ns as f64;
    BackupLoadSummary {
        results,
        best_idle_get_p99_ns,
        best_streaming_get_p99_ns,
        best_idle_put_p99_ns,
        best_streaming_put_p99_ns,
        degradation_x_get,
        degradation_x_put,
        within_budget: degradation_x_get <= DEGRADATION_BUDGET_X
            && degradation_x_put <= DEGRADATION_BUDGET_X,
    }
}

/// Renders the `BENCH_backup.json` artifact.
pub fn render_json(summary: &BackupLoadSummary, keys: u64, ops: u64, seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("backup_under_load", seed)
            .num("workers", WORKERS)
            .num("shards", SHARDS)
            .num("clients", CLIENTS)
            .num("keys", keys)
            .num("ops_per_round", ops)
            .num("rounds", ROUNDS)
            .num("put_percent", PUT_PERCENT)
            .num("budget_x", DEGRADATION_BUDGET_X)
            .render(),
    );
    s.push_str(&format!(
        "  \"best_idle_get_p99_ns\": {}, \"best_streaming_get_p99_ns\": {},\n",
        summary.best_idle_get_p99_ns, summary.best_streaming_get_p99_ns
    ));
    s.push_str(&format!(
        "  \"best_idle_put_p99_ns\": {}, \"best_streaming_put_p99_ns\": {},\n",
        summary.best_idle_put_p99_ns, summary.best_streaming_put_p99_ns
    ));
    s.push_str(&format!(
        "  \"degradation_x_get\": {:.3}, \"degradation_x_put\": {:.3},\n",
        summary.degradation_x_get, summary.degradation_x_put
    ));
    s.push_str(&format!("  \"within_budget\": {},\n", summary.within_budget));
    s.push_str("  \"results\": [\n");
    for (i, r) in summary.results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"phase\": \"{}\", \"round\": {}, \"ops\": {}, \
             \"wall_secs\": {:.3}, \"throughput_ops_sec\": {:.1}, \
             \"p50_get_ns\": {}, \"p99_get_ns\": {}, \
             \"p50_put_ns\": {}, \"p99_put_ns\": {}, \
             \"cut_at_op\": {}, \"backup_entries\": {}, \
             \"backup_wall_secs\": {:.3}}}{}\n",
            r.phase,
            r.round,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.p50_get_ns,
            r.p99_get_ns,
            r.p50_put_ns,
            r.p99_put_ns,
            r.cut_at_op,
            r.backup_entries,
            r.backup_wall_secs,
            if i + 1 == summary.results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_backup.json"),
        _ => PathBuf::from("BENCH_backup.json"),
    }
}

/// Runs both phases for [`ROUNDS`] rounds (8 000 keys, 60k ops per
/// round, scaled by `P2KVS_SCALE`; seed from `P2KVS_BACKUP_SEED`,
/// default fixed — the same variable the backup crash matrix honors)
/// and writes `BENCH_backup.json` to `path`.
pub fn run_default(path: &Path) -> std::io::Result<BackupLoadSummary> {
    let keys = crate::scaled(8_000);
    let ops = crate::scaled(60_000);
    let seed = std::env::var("P2KVS_BACKUP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBAC_CAB5);

    let mut results = Vec::new();
    for round in 0..ROUNDS {
        results.push(measure("idle", false, round, keys, ops, seed ^ round as u64));
        results.push(measure("streaming", true, round, keys, ops, seed ^ round as u64));
    }
    let summary = summarize(results);

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&summary, keys, ops, seed))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(phase: &'static str, get_p99: u64, put_p99: u64) -> BackupLoadResult {
        BackupLoadResult {
            phase,
            round: 0,
            ops: 1000,
            wall_secs: 0.5,
            throughput_ops_sec: 2000.0,
            p50_get_ns: get_p99 / 4,
            p99_get_ns: get_p99,
            p50_put_ns: put_p99 / 4,
            p99_put_ns: put_p99,
            cut_at_op: if phase == "streaming" { 125 } else { 0 },
            backup_entries: if phase == "streaming" { 400 } else { 0 },
            backup_wall_secs: if phase == "streaming" { 0.1 } else { 0.0 },
        }
    }

    #[test]
    fn summary_gates_on_the_worse_of_get_and_put() {
        // GETs fine, PUTs 3× over: the gate must trip.
        let s = summarize(vec![
            synthetic("idle", 1_000, 2_000),
            synthetic("streaming", 1_500, 6_000),
        ]);
        assert!((s.degradation_x_get - 1.5).abs() < 1e-9);
        assert!((s.degradation_x_put - 3.0).abs() < 1e-9);
        assert!(!s.within_budget);
        // Both within 2×: passes.
        let s = summarize(vec![
            synthetic("idle", 1_000, 2_000),
            synthetic("streaming", 1_900, 3_900),
        ]);
        assert!(s.within_budget);
    }

    #[test]
    fn tiny_run_streams_a_real_backup_and_renders_schema() {
        let idle = measure("idle", false, 0, 400, 2_000, 7);
        let streaming = measure("streaming", true, 0, 400, 2_000, 7);
        assert!(idle.ops > 0 && streaming.ops > 0);
        assert_eq!(idle.backup_entries, 0);
        assert!(streaming.backup_entries >= 400, "cut captured the preload");
        assert!(streaming.cut_at_op >= 1, "cut landed inside the window");
        assert!(idle.p50_get_ns <= idle.p99_get_ns);
        assert!(streaming.p50_put_ns <= streaming.p99_put_ns);
        let summary = summarize(vec![idle, streaming]);
        let json = render_json(&summary, 400, 2_000, 7);
        assert!(json.contains("\"bench\": \"backup_under_load\""));
        assert!(json.contains("\"phase\": \"streaming\""));
        assert!(json.contains("degradation_x_get"));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
