//! [`KvClient`] adapters: the same YCSB bytes drive every system.

use std::sync::Arc;

use lsmkv::{Db, WriteOptions};
use p2kvs::{KvsEngine, P2Kvs};
use p2kvs_util::hash::fnv1a64;
use ycsb::KvClient;

/// A single shared engine instance accessed directly by user threads —
/// the paper's "RocksDB" / "LevelDB" / "PebblesDB" baselines.
pub struct LsmClient {
    /// The instance.
    pub db: Arc<Db>,
}

impl KvClient for LsmClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.db
            .put(&WriteOptions::default(), key, value)
            .map_err(|e| e.to_string())
    }

    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.db.get(key).map_err(|e| e.to_string())
    }

    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.db
            .scan(key, len)
            .map(|v| v.len())
            .map_err(|e| e.to_string())
    }
}

/// The §3 "multi-instance" configuration: several independent engine
/// instances, user threads hash keys and call the owning instance
/// *directly* (no accessing layer, no worker threads, no OBM). This is the
/// common industry sharding practice the paper distinguishes p2KVS from.
pub struct MultiLsmClient {
    /// The instances.
    pub dbs: Vec<Arc<Db>>,
}

impl MultiLsmClient {
    fn of(&self, key: &[u8]) -> &Db {
        &self.dbs[(fnv1a64(key) % self.dbs.len() as u64) as usize]
    }
}

impl KvClient for MultiLsmClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.of(key)
            .put(&WriteOptions::default(), key, value)
            .map_err(|e| e.to_string())
    }

    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.of(key).get(key).map_err(|e| e.to_string())
    }

    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        // Parallel same-size scan + filter across instances.
        let mut all = Vec::new();
        for db in &self.dbs {
            all.extend(db.scan(key, len).map_err(|e| e.to_string())?);
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(len);
        Ok(all.len())
    }
}

/// The p2KVS store over any engine.
pub struct P2Client<E: KvsEngine> {
    /// The store.
    pub store: P2Kvs<E>,
}

impl<E: KvsEngine> Drop for P2Client<E> {
    fn drop(&mut self) {
        // Best-effort per-run observability artifact (no-op unless
        // P2KVS_METRICS_DIR is set; see `crate::artifact`).
        crate::artifact::maybe_write(&self.store.metrics_snapshot());
    }
}

impl<E: KvsEngine> KvClient for P2Client<E> {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.store.put(key, value).map_err(|e| e.to_string())
    }

    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.store.get(key).map_err(|e| e.to_string())
    }

    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.store
            .scan(key, len)
            .map(|v| v.len())
            .map_err(|e| e.to_string())
    }
}

/// KVell (its own worker architecture; used standalone).
pub struct KvellClient {
    /// The store.
    pub db: kvell::KvellDb,
}

impl KvClient for KvellClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.db.put(key, value).map_err(|e| e.to_string())
    }

    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.db.get(key).map_err(|e| e.to_string())
    }

    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.db
            .scan(key, len)
            .map(|v| v.len())
            .map_err(|e| e.to_string())
    }
}

/// A single shared WiredTiger instance.
pub struct WtClient {
    /// The store.
    pub db: Arc<wtiger::WtDb>,
}

impl KvClient for WtClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.db.put(key, value).map_err(|e| e.to_string())
    }

    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.db.get(key).map_err(|e| e.to_string())
    }

    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.db
            .scan(key, len)
            .map(|v| v.len())
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setups;
    use p2kvs_storage::DeviceProfile;

    #[test]
    fn clients_roundtrip() {
        let env = setups::instant_env();
        let single = setups::rocksdb_single(env.clone(), "c1");
        single.insert(b"k", b"v").unwrap();
        assert_eq!(single.read(b"k").unwrap().unwrap(), b"v");
        assert_eq!(single.scan(b"a", 10).unwrap(), 1);

        let multi = setups::rocksdb_multi(env.clone(), "c2", 3);
        for i in 0..50 {
            multi.insert(format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        assert_eq!(multi.read(b"k07").unwrap().unwrap(), b"v");
        assert_eq!(multi.scan(b"k10", 5).unwrap(), 5);

        let p2 = setups::p2kvs(env.clone(), "c3", 2, true);
        p2.insert(b"x", b"y").unwrap();
        assert_eq!(p2.read(b"x").unwrap().unwrap(), b"y");

        let kv = setups::kvell(env.clone(), "c4", 2);
        kv.insert(b"q", b"r").unwrap();
        assert_eq!(kv.read(b"q").unwrap().unwrap(), b"r");

        let wt = setups::wiredtiger_single(env, "c5");
        wt.insert(b"m", b"n").unwrap();
        assert_eq!(wt.read(b"m").unwrap().unwrap(), b"n");
    }

    #[test]
    fn sim_env_profiles_open() {
        let env = setups::device_env(DeviceProfile::instant());
        let p2 = setups::p2kvs_over_wt(env, "c6", 2);
        p2.insert(b"a", b"b").unwrap();
        assert_eq!(p2.read(b"a").unwrap().unwrap(), b"b");
    }
}
