//! §5.5 comparison with KVell (Figs 20, 21).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2kvs_storage::Env as _;
use ycsb::micro::MicroKind;
use ycsb::runner::{load_table, run_workload, RunConfig};
use ycsb::workload::{Workload, WorkloadKind};

use crate::figures::drive_micro;
use crate::setups;
use crate::{kqps, print_table, scaled};

fn spec(kind: WorkloadKind) -> Workload {
    let records = scaled(40_000);
    let ops = match kind {
        WorkloadKind::Load => records,
        WorkloadKind::E => scaled(3_000),
        _ => scaled(25_000),
    };
    Workload::table1(kind, records, ops)
}

/// Fig 20: YCSB — KVell vs p2KVS at 4 and 8 workers.
///
/// Expected shape: p2KVS wins write-heavy (LOAD, A, F) and SCAN (E);
/// KVell's all-in-memory index wins pure reads (C); B and D are close.
pub fn fig20() {
    println!("fig20: KVell vs p2KVS on YCSB (128B, 32 user threads)");
    let threads = 32;
    let mut rows = Vec::new();
    for kind in WorkloadKind::all() {
        let mut cells = vec![kind.name().to_string()];
        for workers in [4usize, 8] {
            let s = spec(kind);
            let kv = setups::kvell(
                setups::nvme_env(),
                &format!("f20-k{workers}-{}", kind.name()),
                workers,
            );
            if kind != WorkloadKind::Load {
                load_table(&kv, &s, 8).expect("kvell load");
            }
            let kv_qps = run_workload(
                &kv,
                &s,
                &RunConfig {
                    threads,
                    rate_limit: 0,
                },
            )
            .qps();
            let p2 = setups::p2kvs(
                setups::nvme_env(),
                &format!("f20-p{workers}-{}", kind.name()),
                workers,
                true,
            );
            if kind != WorkloadKind::Load {
                load_table(&p2, &s, 8).expect("p2 load");
            }
            let p2_qps = run_workload(
                &p2,
                &s,
                &RunConfig {
                    threads,
                    rate_limit: 0,
                },
            )
            .qps();
            cells.push(kqps(kv_qps));
            cells.push(format!("{} ({:.1}x)", kqps(p2_qps), p2_qps / kv_qps));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 20: KQPS",
        &["workload", "KVell-4", "p2KVS-4", "KVell-8", "p2KVS-8"],
        &rows,
    );
}

/// Fig 21: hardware utilization during continuous random writes.
///
/// Expected shape: p2KVS uses more total IO bandwidth (LSM batches small
/// writes; KVell issues slot-sized random IOs), far less memory (no
/// all-in-memory index), and spreads moderate CPU across more cores while
/// KVell pegs fewer cores harder.
pub fn fig21() {
    println!("fig21: hardware utilization under continuous fillrandom (128B)");
    let ops = scaled(100_000);
    let threads = 16;
    let mut rows = Vec::new();
    // KVell-8.
    {
        let env = setups::nvme_env();
        let client = setups::kvell(env.clone(), "f21-kvell", 8);
        let stop = Arc::new(AtomicBool::new(false));
        let mem_max = {
            let stop = stop.clone();
            let db_mem = || client.db.mem_usage().unwrap_or(0);
            // Sample memory in the driver thread after the run (KvellDb is
            // not Send-shareable into the sampler easily); record final.
            let _ = &stop;
            db_mem
        };
        let t0 = Instant::now();
        let r = drive_micro(
            &client,
            MicroKind::FillRandom,
            ops,
            ops,
            128,
            threads,
            false,
            0,
        );
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let io = env.io_stats();
        let stats = client.db.stats();
        let busy: Duration = stats.worker_busy.iter().sum();
        let per_core = stats
            .worker_busy
            .iter()
            .map(|b| b.as_secs_f64() / elapsed.as_secs_f64())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            "KVell-8".into(),
            kqps(r.qps()),
            format!(
                "{:.1}",
                io.total_bytes() as f64 / elapsed.as_secs_f64() / (1 << 20) as f64
            ),
            format!("{:.1} MiB", mem_max() as f64 / (1 << 20) as f64),
            format!("{:.0}%", busy.as_secs_f64() / elapsed.as_secs_f64() * 100.0),
            format!("{:.0}%", per_core * 100.0),
        ]);
    }
    // p2KVS-8.
    {
        let env = setups::nvme_env();
        let client = setups::p2kvs(env.clone(), "f21-p2", 8, true);
        let t0 = Instant::now();
        let r = drive_micro(
            &client,
            MicroKind::FillRandom,
            ops,
            ops,
            128,
            threads,
            false,
            0,
        );
        let elapsed = t0.elapsed();
        let io = env.io_stats();
        let snap = client.store.snapshot();
        let bg: u64 = client
            .store
            .engines()
            .iter()
            .map(|e| e.stats().bg_busy.sum_ns())
            .sum();
        let worker_busy: Duration = snap.workers.iter().map(|w| w.busy).sum();
        let total = worker_busy.as_secs_f64() + bg as f64 / 1e9;
        let per_core = snap.worker_utilization().into_iter().fold(0.0f64, f64::max);
        rows.push(vec![
            "p2KVS-8".into(),
            kqps(r.qps()),
            format!(
                "{:.1}",
                io.total_bytes() as f64 / elapsed.as_secs_f64() / (1 << 20) as f64
            ),
            format!("{:.1} MiB", snap.mem_usage as f64 / (1 << 20) as f64),
            format!("{:.0}%", total / elapsed.as_secs_f64() * 100.0),
            format!("{:.0}%", per_core * 100.0),
        ]);
    }
    print_table(
        "Fig 21: utilization (CPU normalized to one core; per-core = busiest worker)",
        &[
            "system",
            "KQPS",
            "IO MB/s",
            "memory",
            "total cpu",
            "per-core cpu",
        ],
        &rows,
    );
}
