//! §5.3–5.4 macro benchmarks and sensitivity studies (Table 1, Figs
//! 16–19).

use ycsb::runner::{load_table, run_workload, RunConfig};
use ycsb::workload::{Workload, WorkloadKind};
use ycsb::KvClient;

use crate::setups;
use crate::{kqps, print_table, scaled};

/// Default scaled YCSB sizes (paper: 670M/120M; see DESIGN.md).
fn spec(kind: WorkloadKind, value_size: usize) -> Workload {
    let records = scaled(40_000);
    let ops = match kind {
        WorkloadKind::Load => records,
        WorkloadKind::E => scaled(3_000),
        _ => scaled(25_000),
    };
    Workload {
        value_size,
        ..Workload::table1(kind, records, ops)
    }
}

/// Runs one workload against a fresh system built by `make`.
fn run_one(
    kind: WorkloadKind,
    value_size: usize,
    threads: usize,
    make: &dyn Fn(&str) -> Box<dyn KvClient>,
    tag: &str,
) -> f64 {
    let client = make(tag);
    let spec = spec(kind, value_size);
    if kind != WorkloadKind::Load {
        load_table(&*client, &spec, 8).expect("load phase");
    }
    let r = run_workload(
        &*client,
        &spec,
        &RunConfig {
            threads,
            rate_limit: 0,
        },
    );
    r.qps()
}

/// Table 1: the workload definitions (sanity display; unit tests verify
/// the mixes).
pub fn tab1() {
    let rows: Vec<Vec<String>> = WorkloadKind::all()
        .iter()
        .map(|k| {
            let mix = match k {
                WorkloadKind::Load => "100% PUT",
                WorkloadKind::A => "50% UPDATE / 50% GET",
                WorkloadKind::B => "5% UPDATE / 95% GET",
                WorkloadKind::C => "100% GET",
                WorkloadKind::D => "5% PUT / 95% GET",
                WorkloadKind::E => "5% PUT / 95% SCAN",
                WorkloadKind::F => "50% RMW / 50% GET",
            };
            vec![
                k.name().to_string(),
                mix.to_string(),
                format!("{:?}", k.distribution()),
            ]
        })
        .collect();
    print_table(
        "Table 1: YCSB workloads",
        &["workload", "mix", "distribution"],
        &rows,
    );
}

/// Fig 16: YCSB throughput, RocksDB vs p2KVS-4 vs p2KVS-8 at 8 and 32
/// user threads.
///
/// Expected shape: LOAD gains grow with concurrency (paper: 2.4×→5.2× for
/// p2KVS-8); read-heavy B/C/D gain 1–2×; E is a wash (read amplification
/// offsets parallelism); A/F gain 1.5–3.5×.
pub fn fig16() {
    println!("fig16: YCSB (128B) — RocksDB vs p2KVS");
    for threads in [8usize, 32] {
        let mut rows = Vec::new();
        for kind in WorkloadKind::all() {
            let rocks = run_one(
                kind,
                128,
                threads,
                &|tag| Box::new(setups::rocksdb_single(setups::nvme_env(), tag)),
                &format!("f16-r-{}-{threads}", kind.name()),
            );
            let p4 = run_one(
                kind,
                128,
                threads,
                &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, 4, true)),
                &format!("f16-p4-{}-{threads}", kind.name()),
            );
            let p8 = run_one(
                kind,
                128,
                threads,
                &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, 8, true)),
                &format!("f16-p8-{}-{threads}", kind.name()),
            );
            rows.push(vec![
                kind.name().to_string(),
                kqps(rocks),
                format!("{} ({:.1}x)", kqps(p4), p4 / rocks),
                format!("{} ({:.1}x)", kqps(p8), p8 / rocks),
            ]);
        }
        print_table(
            &format!("Fig 16: KQPS with {threads} user threads"),
            &["workload", "RocksDB", "p2KVS-4", "p2KVS-8"],
            &rows,
        );
    }
}

/// Fig 17: sensitivity to worker count and OBM (LOAD, A, B, C), normalized
/// to the single-worker no-OBM configuration.
///
/// Expected shape: instances alone give ~3×/5× at 4/8 workers; OBM
/// multiplies writes up to ~2× and reads up to ~5× at low worker counts.
pub fn fig17() {
    println!("fig17: workers × OBM sensitivity (32 user threads)");
    let threads = 32;
    for kind in [
        WorkloadKind::Load,
        WorkloadKind::A,
        WorkloadKind::B,
        WorkloadKind::C,
    ] {
        let mut base = 0.0f64;
        let mut rows = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let mut cells = vec![workers.to_string()];
            for obm in [false, true] {
                let qps = run_one(
                    kind,
                    128,
                    threads,
                    &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, workers, obm)),
                    &format!("f17-{}-{workers}-{obm}", kind.name()),
                );
                if workers == 1 && !obm {
                    base = qps;
                }
                cells.push(format!("{} ({:.1}x)", kqps(qps), qps / base));
            }
            rows.push(cells);
        }
        print_table(
            &format!(
                "Fig 17 workload {}: KQPS (vs 1 worker, no OBM)",
                kind.name()
            ),
            &["workers", "OBM off", "OBM on"],
            &rows,
        );
    }
}

/// Fig 18: sensitivity to KV size (LOAD, A, C) — p2KVS-8 speedup over
/// RocksDB, OBM on vs off.
///
/// Expected shape: small KVs benefit most from OBM; at 16 KiB the
/// OBM-write advantage fades (log-merge savings are small) while reads
/// keep gaining.
pub fn fig18() {
    println!("fig18: KV-size sensitivity (32 user threads)");
    for kind in [WorkloadKind::Load, WorkloadKind::A, WorkloadKind::C] {
        let mut rows = Vec::new();
        for value_size in [128usize, 1024, 4096, 16384] {
            let rocks = run_one(
                kind,
                value_size,
                32,
                &|tag| Box::new(setups::rocksdb_single(setups::nvme_env(), tag)),
                &format!("f18-r-{}-{value_size}", kind.name()),
            );
            let p8_no = run_one(
                kind,
                value_size,
                32,
                &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, 8, false)),
                &format!("f18-n-{}-{value_size}", kind.name()),
            );
            let p8 = run_one(
                kind,
                value_size,
                32,
                &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, 8, true)),
                &format!("f18-o-{}-{value_size}", kind.name()),
            );
            rows.push(vec![
                format!("{value_size}B"),
                kqps(rocks),
                format!("{:.1}x", p8_no / rocks),
                format!("{:.1}x", p8 / rocks),
            ]);
        }
        print_table(
            &format!(
                "Fig 18 workload {}: p2KVS-8 speedup vs RocksDB",
                kind.name()
            ),
            &["KV size", "RocksDB KQPS", "no OBM", "with OBM"],
            &rows,
        );
    }
}

/// Fig 19: the full YCSB suite at 1 KiB values.
///
/// Expected shape: same ordering as Fig 16 but smaller speedups (large
/// values shrink the per-op software overhead OBM amortizes).
pub fn fig19() {
    println!("fig19: YCSB at 1KB values (32 user threads)");
    let mut rows = Vec::new();
    for kind in WorkloadKind::all() {
        let rocks = run_one(
            kind,
            1024,
            32,
            &|tag| Box::new(setups::rocksdb_single(setups::nvme_env(), tag)),
            &format!("f19-r-{}", kind.name()),
        );
        let p8 = run_one(
            kind,
            1024,
            32,
            &|tag| Box::new(setups::p2kvs(setups::nvme_env(), tag, 8, true)),
            &format!("f19-p8-{}", kind.name()),
        );
        rows.push(vec![
            kind.name().to_string(),
            kqps(rocks),
            format!("{} ({:.1}x)", kqps(p8), p8 / rocks),
        ]);
    }
    print_table(
        "Fig 19: KQPS at 1KB KV",
        &["workload", "RocksDB", "p2KVS-8"],
        &rows,
    );
}
