//! §5.2 micro-benchmarks and resource tables (Figs 12–15, Table 2).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2kvs_storage::Env as _;
use ycsb::generator::KeySpace;
use ycsb::micro::MicroKind;
use ycsb::KvClient;

use crate::figures::{drive_micro, preload, DriveResult};
use crate::setups;
use crate::{kqps, print_table, scaled};

/// One fig12/tab2 system run with resource sampling.
struct SystemRun {
    name: &'static str,
    result: DriveResult,
    io_written: u64,
    user_bytes: u64,
    bw_util: f64,
    mem_avg: usize,
    mem_max: usize,
    cpu_avg_pct: f64,
    cpu_us_per_op: f64,
}

fn run_system(
    name: &'static str,
    threads: usize,
    ops: u64,
    make: impl FnOnce(Arc<p2kvs_storage::SimEnv>) -> Box<dyn SampledClient>,
) -> SystemRun {
    let env = setups::nvme_env();
    let client = make(env.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = stop.clone();
        let client = client.sample_handle();
        std::thread::spawn(move || {
            let mut mems = Vec::new();
            let mut busys = Vec::new();
            let t0 = Instant::now();
            let mut last_busy = client.busy();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(200));
                mems.push(client.mem_usage());
                let b = client.busy();
                busys.push((b - last_busy, t0.elapsed()));
                last_busy = b;
            }
            (mems, last_busy)
        })
    };
    let cpu0 = p2kvs_util::timing::process_cpu_time();
    let result = drive_micro(
        client.as_kv(),
        MicroKind::FillRandom,
        ops,
        ops,
        128,
        threads,
        false,
        0,
    );
    let cpu_used = p2kvs_util::timing::process_cpu_time() - cpu0;
    stop.store(true, Ordering::Relaxed);
    let (mems, _) = sampler.join().unwrap();
    let io = env.io_stats();
    let user_bytes = result.ops * 148;
    let secs = result.elapsed.as_secs_f64();
    // Total CPU: engine-side busy plus (baseline systems) the user threads.
    let engine_busy = client.busy().as_secs_f64();
    let fg_busy = result.fg_busy.as_secs_f64();
    let total_busy = if client.engine_side_only() {
        // p2KVS/KVell: user threads sleep; count engine workers + bg.
        engine_busy
    } else {
        fg_busy + engine_busy
    };
    SystemRun {
        name,
        io_written: io.bytes_written,
        user_bytes,
        bw_util: io.bytes_written as f64 / (env.profile().write_bw as f64 * secs),
        mem_avg: if mems.is_empty() {
            0
        } else {
            mems.iter().sum::<usize>() / mems.len()
        },
        mem_max: mems.iter().copied().max().unwrap_or(0),
        cpu_avg_pct: total_busy / secs * 100.0,
        cpu_us_per_op: cpu_used.as_micros() as f64 / result.ops.max(1) as f64,
        result,
    }
}

/// A client that can also report memory and engine-side CPU.
trait SampledClient {
    fn as_kv(&self) -> &dyn KvClient;
    fn sample_handle(&self) -> Box<dyn MemCpuProbe>;
    fn busy(&self) -> Duration {
        self.sample_handle().busy()
    }
    fn engine_side_only(&self) -> bool;
}

trait MemCpuProbe: Send {
    fn mem_usage(&self) -> usize;
    fn busy(&self) -> Duration;
}

struct LsmProbe {
    db: Arc<lsmkv::Db>,
}

impl MemCpuProbe for LsmProbe {
    fn mem_usage(&self) -> usize {
        self.db.approximate_memory_usage()
    }
    fn busy(&self) -> Duration {
        Duration::from_nanos(self.db.stats().bg_busy.sum_ns())
    }
}

impl SampledClient for crate::clients::LsmClient {
    fn as_kv(&self) -> &dyn KvClient {
        self
    }
    fn sample_handle(&self) -> Box<dyn MemCpuProbe> {
        Box::new(LsmProbe {
            db: self.db.clone(),
        })
    }
    fn engine_side_only(&self) -> bool {
        false
    }
}

struct P2Probe {
    engines: Vec<Arc<lsmkv::Db>>,
    workers_busy: Vec<Arc<p2kvs::worker::WorkerStats>>,
}

impl MemCpuProbe for P2Probe {
    fn mem_usage(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.approximate_memory_usage())
            .sum()
    }
    fn busy(&self) -> Duration {
        let w: Duration = self.workers_busy.iter().map(|s| s.busy.busy()).sum();
        let bg: u64 = self
            .engines
            .iter()
            .map(|e| e.stats().bg_busy.sum_ns())
            .sum();
        w + Duration::from_nanos(bg)
    }
}

impl SampledClient for crate::clients::P2Client<lsmkv::Db> {
    fn as_kv(&self) -> &dyn KvClient {
        self
    }
    fn sample_handle(&self) -> Box<dyn MemCpuProbe> {
        Box::new(P2Probe {
            engines: self.store.engines().to_vec(),
            workers_busy: self.store.worker_stats(),
        })
    }
    fn engine_side_only(&self) -> bool {
        true
    }
}

/// Fig 12 + Table 2: concurrent-write micro comparison.
///
/// Expected shape: p2KVS-8 > p2KVS-4 > RocksDB ≈ PebblesDB in QPS (paper:
/// 4.6×/2.7×); p2KVS-8 has the lowest IO amplification and near-full
/// bandwidth utilization; p2KVS burns more total CPU (its workers) but
/// modest memory.
pub fn fig12_tab2() {
    println!("fig12+tab2: 16-thread fillrandom (128B) on NVMe");
    let threads = 16;
    let ops = scaled(80_000);
    let runs = vec![
        run_system("RocksDB", threads, ops, |env| {
            Box::new(setups::rocksdb_single(env, "f12-rocks"))
        }),
        run_system("PebblesDB", threads, ops, |env| {
            Box::new(setups::pebblesdb_single(env, "f12-pebbles"))
        }),
        run_system("p2KVS-4", threads, ops, |env| {
            Box::new(setups::p2kvs(env, "f12-p2x4", 4, true))
        }),
        run_system("p2KVS-8", threads, ops, |env| {
            Box::new(setups::p2kvs(env, "f12-p2x8", 8, true))
        }),
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                kqps(r.result.qps()),
                format!("{:.2}", r.io_written as f64 / r.user_bytes as f64),
                format!("{:.1}%", r.bw_util * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 12: throughput, IO amplification, bandwidth utilization",
        &["system", "KQPS", "IO amp", "bw util"],
        &rows,
    );
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.1} MiB", r.mem_avg as f64 / (1 << 20) as f64),
                format!("{:.1} MiB", r.mem_max as f64 / (1 << 20) as f64),
                format!("{:.0}%", r.cpu_avg_pct),
                format!("{:.1}", r.cpu_us_per_op),
            ]
        })
        .collect();
    print_table(
        "Table 2: memory and CPU ('threads busy' counts scheduler wait on small hosts; 'cpu/op' is real process CPU)",
        &["system", "avg mem", "max mem", "threads busy", "cpu us/op"],
        &rows,
    );
}

/// Fig 13: latency vs offered load.
///
/// Expected shape: all systems match at light load; RocksDB's p99 blows up
/// past its capacity while p2KVS sustains several times higher intensity
/// at sub-ms p99.
pub fn fig13() {
    println!("fig13: fillrandom latency vs offered intensity (16 threads)");
    let ops = scaled(20_000);
    let mut rows = Vec::new();
    for rate in [50_000u64, 100_000, 200_000, 400_000, 800_000] {
        let mut cells = vec![format!("{}", rate / 1000)];
        let clients: Vec<Box<dyn KvClient>> = vec![
            Box::new(setups::rocksdb_single(
                setups::nvme_env(),
                &format!("f13-r-{rate}"),
            )),
            Box::new(setups::p2kvs(
                setups::nvme_env(),
                &format!("f13-o-{rate}"),
                1,
                true,
            )),
            Box::new(setups::p2kvs(
                setups::nvme_env(),
                &format!("f13-p-{rate}"),
                8,
                true,
            )),
        ];
        for client in &clients {
            let r = drive_micro(
                &**client,
                MicroKind::FillRandom,
                ops,
                ops,
                128,
                16,
                false,
                rate,
            );
            cells.push(format!(
                "{:.0}/{:.0}",
                r.avg_latency.as_micros(),
                r.p99_latency.as_micros()
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 13: avg/p99 latency (µs) at offered KQPS",
        &["offered KQPS", "RocksDB", "RocksDB+OBM", "p2KVS-8"],
        &rows,
    );
}

/// Fig 14: point-query throughput, workers × OBM.
///
/// Expected shape: without OBM p2KVS ≈ RocksDB; with OBM it scales nearly
/// linearly with workers (multiget + partitioned indexes).
pub fn fig14() {
    println!("fig14: readrandom (128B) with 32 user threads, cache-missing dataset");
    let load = scaled(120_000);
    let reads = scaled(30_000);
    // Small per-instance block caches so point reads hit the device, as in
    // the paper (dataset >> cache).
    let small_cache = |env: std::sync::Arc<p2kvs_storage::SimEnv>| {
        let mut o = setups::bench_options(env);
        o.block_cache_size = 512 << 10;
        o
    };
    let mut rows = Vec::new();
    // Baseline RocksDB.
    let base = {
        let env = setups::nvme_env();
        let client = crate::clients::LsmClient {
            db: Arc::new(lsmkv::Db::open(small_cache(env), "f14-base").unwrap()),
        };
        preload(&client, load, 128);
        client.db.flush().unwrap();
        client.db.wait_idle().unwrap();
        drive_micro(
            &client,
            MicroKind::ReadRandom,
            load,
            reads,
            128,
            32,
            false,
            0,
        )
        .qps()
    };
    rows.push(vec!["RocksDB".into(), kqps(base), "1.00x".into()]);
    for workers in [1usize, 2, 4, 8] {
        for obm in [false, true] {
            let env = setups::nvme_env();
            let client = setups::p2kvs_with(
                small_cache(env),
                &format!("f14-{workers}-{obm}"),
                workers,
                obm,
            );
            preload(&client, load, 128);
            for e in client.store.engines() {
                e.flush().unwrap();
                e.wait_idle().unwrap();
            }
            let r = drive_micro(
                &client,
                MicroKind::ReadRandom,
                load,
                reads,
                128,
                32,
                false,
                0,
            );
            rows.push(vec![
                format!("p2KVS-{workers}{}", if obm { "+OBM" } else { "" }),
                kqps(r.qps()),
                format!("{:.2}x", r.qps() / base),
            ]);
        }
    }
    print_table(
        "Fig 14: point-query KQPS",
        &["system", "KQPS", "vs RocksDB"],
        &rows,
    );

    // Mechanism check: the same experiment in an IO-bound regime (device
    // 20x slower). When waits dominate software cost — as they do relative
    // to a 44-core host's per-op CPU share — worker/multiget IO overlap is
    // what matters, and the paper's ordering emerges even on one core.
    std::env::set_var("P2KVS_SIM_TIME_SCALE", "20");
    let mut rows = Vec::new();
    let load_slow = load / 4;
    let reads_slow = reads / 8;
    let base = {
        let env = setups::nvme_env();
        let client = crate::clients::LsmClient {
            db: Arc::new(lsmkv::Db::open(small_cache(env), "f14s-base").unwrap()),
        };
        preload(&client, load_slow, 128);
        client.db.flush().unwrap();
        client.db.wait_idle().unwrap();
        drive_micro(
            &client,
            MicroKind::ReadRandom,
            load_slow,
            reads_slow,
            128,
            32,
            false,
            0,
        )
        .qps()
    };
    rows.push(vec!["RocksDB".into(), kqps(base), "1.00x".into()]);
    for (workers, obm) in [(1usize, true), (4, true), (8, false), (8, true)] {
        let env = setups::nvme_env();
        let client = setups::p2kvs_with(
            small_cache(env),
            &format!("f14s-{workers}-{obm}"),
            workers,
            obm,
        );
        preload(&client, load_slow, 128);
        for e in client.store.engines() {
            e.flush().unwrap();
            e.wait_idle().unwrap();
        }
        let r = drive_micro(
            &client,
            MicroKind::ReadRandom,
            load_slow,
            reads_slow,
            128,
            32,
            false,
            0,
        );
        rows.push(vec![
            format!("p2KVS-{workers}{}", if obm { "+OBM" } else { "" }),
            kqps(r.qps()),
            format!("{:.2}x", r.qps() / base),
        ]);
    }
    std::env::remove_var("P2KVS_SIM_TIME_SCALE");
    print_table(
        "Fig 14 (IO-bound regime, device 20x slower): point-query KQPS",
        &["system", "KQPS", "vs RocksDB"],
        &rows,
    );
}

/// Fig 15: RANGE and SCAN throughput vs scan size.
///
/// Expected shape: p2KVS wins RANGE across sizes (parallel sub-ranges) and
/// small SCANs; large SCANs converge as read amplification saturates the
/// device.
pub fn fig15() {
    println!("fig15: RANGE/SCAN vs size (single user thread)");
    let load = scaled(80_000);
    let keys = KeySpace::ordered();
    // Ordered load so ranges map to index windows.
    let env_r = setups::nvme_env();
    let rocks = setups::rocksdb_single(env_r, "f15-rocks");
    let env_p = setups::nvme_env();
    let p2 = setups::p2kvs(env_p, "f15-p2", 8, true);
    for i in 0..load {
        let k = keys.key(i);
        let v = keys.value(i, 128);
        rocks.insert(&k, &v).unwrap();
        p2.insert(&k, &v).unwrap();
    }
    rocks.db.flush().unwrap();
    rocks.db.wait_idle().unwrap();
    for e in p2.store.engines() {
        e.flush().unwrap();
        e.wait_idle().unwrap();
    }
    let mut rows = Vec::new();
    for size in [10u64, 100, 1000, 10_000] {
        let ops = (scaled(2_000) / size.max(10) * 10).max(5);
        let mut rng_state = size;
        let mut starts = |n: u64| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    rng_state = p2kvs_util::hash::mix64(rng_state + 1);
                    rng_state % load.saturating_sub(size + 1).max(1)
                })
                .collect()
        };
        let rocks_range = {
            let list = starts(ops);
            let t0 = Instant::now();
            for s in list {
                let _ = rocks.db.range(&keys.key(s), &keys.key(s + size)).unwrap();
            }
            ops as f64 / t0.elapsed().as_secs_f64()
        };
        let p2_range = {
            let list = starts(ops);
            let t0 = Instant::now();
            for s in list {
                let _ = p2.store.range(&keys.key(s), &keys.key(s + size)).unwrap();
            }
            ops as f64 / t0.elapsed().as_secs_f64()
        };
        let rocks_scan = {
            let list = starts(ops);
            let t0 = Instant::now();
            for s in list {
                let _ = rocks.db.scan(&keys.key(s), size as usize).unwrap();
            }
            ops as f64 / t0.elapsed().as_secs_f64()
        };
        let p2_scan = {
            let list = starts(ops);
            let t0 = Instant::now();
            for s in list {
                let _ = p2.store.scan(&keys.key(s), size as usize).unwrap();
            }
            ops as f64 / t0.elapsed().as_secs_f64()
        };
        rows.push(vec![
            size.to_string(),
            format!("{rocks_range:.0}"),
            format!("{p2_range:.0}"),
            format!("{:.2}x", p2_range / rocks_range),
            format!("{rocks_scan:.0}"),
            format!("{p2_scan:.0}"),
            format!("{:.2}x", p2_scan / rocks_scan),
        ]);
    }
    print_table(
        "Fig 15: ops/s by scan size",
        &[
            "size",
            "RANGE rocks",
            "RANGE p2",
            "speedup",
            "SCAN rocks",
            "SCAN p2",
            "speedup",
        ],
        &rows,
    );
}
