//! §3 root-cause analysis experiments (Figs 1, 4, 5, 6, 7, 8).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsmkv::{Db, WriteBatch, WriteOptions};
use p2kvs_storage::{DeviceProfile, Env as _};
use ycsb::micro::MicroKind;
use ycsb::KvClient;

use crate::figures::{drive_micro, preload};
use crate::setups::{self, bench_options};
use crate::{kqps, print_table, scaled};

/// Fig 1: RocksDB throughput on HDD vs SATA SSD vs NVMe SSD, 1 and 8 user
/// threads, five db_bench operations, 128-byte KVs.
///
/// Expected shape: reads gain orders of magnitude from better devices;
/// writes barely move (CPU-bound foreground path).
pub fn fig1() {
    println!("fig1: RocksDB single-instance across device classes (128B KV)");
    for threads in [1usize, 8] {
        let mut rows = Vec::new();
        for profile in [
            DeviceProfile::hdd(),
            DeviceProfile::sata_ssd(),
            DeviceProfile::nvme_optane(),
        ] {
            // Device-scaled op counts (HDD random reads are milliseconds).
            let (w_ops, r_load, r_ops) = match profile.name {
                "hdd" => (scaled(10_000), scaled(40_000), scaled(1_500)),
                "sata-ssd" => (scaled(25_000), scaled(50_000), scaled(12_000)),
                _ => (scaled(50_000), scaled(50_000), scaled(25_000)),
            };
            let mut qps = Vec::new();
            // Write workloads on fresh DBs.
            for kind in [
                MicroKind::FillSeq,
                MicroKind::FillRandom,
                MicroKind::Overwrite,
            ] {
                let env = setups::device_env(profile);
                let client = setups::rocksdb_single(env, &format!("f1-{}-w", profile.name));
                if kind.needs_load() {
                    preload(&client, w_ops, 128);
                }
                let r = drive_micro(&client, kind, w_ops, w_ops, 128, threads, false, 0);
                qps.push(r.qps());
            }
            // Read workloads share one loaded DB; a small block cache keeps
            // the dataset mostly uncached (paper: 10M records >> cache).
            {
                let env = setups::device_env(profile);
                let mut opts = bench_options(env.clone());
                opts.block_cache_size = 1 << 20;
                let client = crate::clients::LsmClient {
                    db: Arc::new(Db::open(opts, format!("f1-{}-r", profile.name)).unwrap()),
                };
                preload(&client, r_load, 128);
                client.db.flush().unwrap();
                client.db.wait_idle().unwrap();
                // readseq: cursor scans in key order (block locality).
                let t0 = Instant::now();
                let mut cursor: Vec<u8> = Vec::new();
                let mut seq_entries = 0u64;
                while seq_entries < r_ops {
                    let chunk = client.db.scan(&cursor, 100).unwrap();
                    if chunk.is_empty() {
                        cursor.clear();
                        continue;
                    }
                    seq_entries += chunk.len() as u64;
                    cursor = chunk.last().unwrap().0.clone();
                    cursor.push(0);
                }
                let readseq_qps = seq_entries as f64 / t0.elapsed().as_secs_f64();
                let r = drive_micro(
                    &client,
                    MicroKind::ReadRandom,
                    r_load,
                    r_ops,
                    128,
                    threads,
                    false,
                    0,
                );
                qps.push(readseq_qps);
                qps.push(r.qps());
            }
            rows.push(vec![
                profile.name.to_string(),
                kqps(qps[0]),
                kqps(qps[1]),
                kqps(qps[2]),
                kqps(qps[3]),
                kqps(qps[4]),
            ]);
        }
        print_table(
            &format!(
                "Fig 1{}: KQPS with {threads} user thread(s)",
                if threads == 1 { "a" } else { "b" }
            ),
            &[
                "device",
                "fillseq",
                "fillrandom",
                "overwrite",
                "readseq",
                "readrandom",
            ],
            &rows,
        );
    }
}

/// Fig 4: IO bandwidth and CPU over time, one writer on NVMe.
///
/// Expected shape: small KVs — writer core pegged, SSD mostly idle
/// (≤ ~1/6 bandwidth); 1 KiB KVs — compaction consumes bandwidth and
/// background CPU while the writer is no longer 100% busy.
pub fn fig4() {
    println!("fig4: single-writer bandwidth/CPU timelines on NVMe");
    for (size, label) in [(128usize, "128B"), (1024, "1KB")] {
        for (kind, kname) in [
            (MicroKind::FillRandom, "random"),
            (MicroKind::FillSeq, "sequential"),
        ] {
            let env = setups::nvme_env();
            let client = setups::rocksdb_single(env.clone(), &format!("f4-{label}-{kname}"));
            let ops = scaled(if size == 128 { 120_000 } else { 40_000 });
            let stop = Arc::new(AtomicBool::new(false));
            let sampler = {
                let stop = stop.clone();
                let env = env.clone();
                let db = client.db.clone();
                std::thread::spawn(move || {
                    let mut rows = Vec::new();
                    let mut last_io = env.io_stats();
                    let mut last_bg = db.stats().bg_busy.sum_ns();
                    let window = Duration::from_millis(250);
                    let start = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(window);
                        let io = env.io_stats();
                        let bg = db.stats().bg_busy.sum_ns();
                        let d = io.delta(&last_io);
                        let mbps = |b: u64| b as f64 / window.as_secs_f64() / (1 << 20) as f64;
                        rows.push(vec![
                            format!("{:.2}", start.elapsed().as_secs_f64()),
                            format!("{:.1}", mbps(d.wal_bytes)),
                            format!("{:.1}", mbps(d.flush_bytes)),
                            format!("{:.1}", mbps(d.compaction_bytes)),
                            format!(
                                "{:.0}%",
                                (bg - last_bg) as f64 / window.as_nanos() as f64 * 100.0
                            ),
                        ]);
                        last_io = io;
                        last_bg = bg;
                    }
                    rows
                })
            };
            let r = drive_micro(&client, kind, ops, ops, size, 1, false, 0);
            stop.store(true, Ordering::Relaxed);
            let mut rows = sampler.join().unwrap();
            let max_rows = 8;
            if rows.len() > max_rows {
                let step = rows.len() / max_rows;
                rows = rows.into_iter().step_by(step.max(1)).collect();
            }
            print_table(
                &format!("Fig 4 {kname} {label}: timeline (writer CPU ~100%)"),
                &["t(s)", "wal MB/s", "flush MB/s", "compact MB/s", "bg cpu"],
                &rows,
            );
            let io = env.io_stats();
            let bw_frac =
                io.bytes_written as f64 / (env.profile().write_bw as f64 * r.elapsed.as_secs_f64());
            println!(
                "   {} ops at {} KQPS; device write-bandwidth utilization {:.1}%; fg util {:.0}%",
                r.ops,
                kqps(r.qps()),
                bw_frac * 100.0,
                r.fg_busy.as_secs_f64() / r.elapsed.as_secs_f64() * 100.0
            );
        }
    }
}

/// Fig 5: concurrent random writes — single vs multi instance vs pinning.
///
/// Expected shape: single instance scales poorly (~3× at 32 threads) and
/// plateaus; multi-instance reaches higher peaks; pinning adds ~10%; IO
/// bandwidth stays a small fraction of the device.
pub fn fig5() {
    println!("fig5: concurrent fillrandom (128B) on NVMe");
    let threads_list = [1usize, 2, 4, 8, 16, 32];
    let ops = scaled(40_000);
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for &threads in &threads_list {
        // Single instance, unpinned and pinned user threads.
        let run_single = |pin: bool| {
            let env = setups::nvme_env();
            let client = setups::rocksdb_single(env.clone(), &format!("f5-s{threads}-{pin}"));
            let r = drive_micro(
                &client,
                MicroKind::FillRandom,
                ops,
                ops,
                128,
                threads,
                pin,
                0,
            );
            (r, env, client)
        };
        let (r_unpin, _, _) = run_single(false);
        let (r_pin, env_s, client_s) = run_single(true);
        // Multi-instance: one instance per thread.
        let env_m = setups::nvme_env();
        let multi = setups::rocksdb_multi(env_m, &format!("f5-m{threads}"), threads);
        let r_multi = drive_micro(
            &multi,
            MicroKind::FillRandom,
            ops,
            ops,
            128,
            threads,
            true,
            0,
        );
        rows_a.push(vec![
            threads.to_string(),
            kqps(r_unpin.qps()),
            kqps(r_pin.qps()),
            kqps(r_multi.qps()),
        ]);
        // IO bandwidth split for the pinned single-instance run.
        let io = env_s.io_stats();
        let secs = r_pin.elapsed.as_secs_f64();
        let mbps = |b: u64| format!("{:.1}", b as f64 / secs / (1 << 20) as f64);
        rows_b.push(vec![
            threads.to_string(),
            mbps(io.wal_bytes),
            mbps(io.flush_bytes),
            mbps(io.compaction_bytes),
            format!(
                "{:.1}%",
                io.bytes_written as f64 / (2200.0 * (1 << 20) as f64 * secs) * 100.0
            ),
        ]);
        // CPU utilizations.
        let fg_util = r_pin.fg_busy.as_secs_f64() / secs / threads as f64;
        let bg_util = client_s.db.stats().bg_busy.sum_ns() as f64 / 1e9 / secs;
        rows_c.push(vec![
            threads.to_string(),
            format!("{:.0}%", fg_util * 100.0),
            format!("{:.0}%", bg_util * 100.0),
        ]);
    }
    print_table(
        "Fig 5a: write KQPS",
        &["threads", "single", "single+pin", "multi-inst+pin"],
        &rows_a,
    );
    print_table(
        "Fig 5b: single-instance IO bandwidth",
        &[
            "threads",
            "wal MB/s",
            "flush MB/s",
            "compact MB/s",
            "of device",
        ],
        &rows_b,
    );
    print_table(
        "Fig 5c: single-instance CPU",
        &["threads", "per-user-thread", "background (cores)"],
        &rows_c,
    );
}

/// Fig 6: write-latency breakdown of the single instance.
///
/// Expected shape: at 1 thread WAL+MemTable dominate (~90%); as threads
/// grow the WAL-lock + MemTable-lock share explodes (> 80% at 32).
pub fn fig6() {
    println!("fig6: single-instance write latency breakdown (128B fillrandom)");
    let ops = scaled(30_000);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let env = setups::nvme_env();
        let client = setups::rocksdb_single(env, &format!("f6-{threads}"));
        let _ = drive_micro(
            &client,
            MicroKind::FillRandom,
            ops,
            ops,
            128,
            threads,
            true,
            0,
        );
        let snap = client.db.stats().breakdown.snapshot();
        let p = snap.percentages();
        rows.push(vec![
            threads.to_string(),
            format!("{:.1}", snap.total_us()),
            format!("{:.1} ({:.0}%)", snap.wal_us, p[0]),
            format!("{:.1} ({:.0}%)", snap.memtable_us, p[1]),
            format!("{:.1} ({:.0}%)", snap.wal_lock_us, p[2]),
            format!("{:.1} ({:.0}%)", snap.memtable_lock_us, p[3]),
            format!("{:.1} ({:.0}%)", snap.other_us, p[4]),
        ]);
    }
    print_table(
        "Fig 6: average per-write µs (share of total)",
        &[
            "threads",
            "total",
            "WAL",
            "MemTable",
            "WAL lock",
            "MemTable lock",
            "Others",
        ],
        &rows,
    );
}

/// Fig 7: effect of WriteBatch size on the WAL stage.
///
/// Expected shape: larger batches raise bandwidth and cut CPU seconds per
/// million KVs (fewer IO-stack traversals).
pub fn fig7() {
    println!("fig7: WriteBatch size vs WAL bandwidth and CPU (memtable disabled)");
    let mut rows = Vec::new();
    for batch_bytes in [256usize, 1024, 4096, 16384] {
        let env = setups::nvme_env();
        let mut opts = bench_options(env.clone());
        opts.bench_skip_memtable = true;
        let db = Db::open(opts, format!("f7-{batch_bytes}")).unwrap();
        let per_batch = (batch_bytes / 148).max(1); // 128B value + ~20B key
        let total_kvs = scaled(200_000);
        let batches = total_kvs / per_batch as u64;
        let keys = ycsb::generator::KeySpace::hashed();
        let t0 = Instant::now();
        let mut busy = Duration::ZERO;
        let mut i = 0u64;
        for _ in 0..batches {
            let mut wb = WriteBatch::new();
            for _ in 0..per_batch {
                wb.put(&keys.key(i), &keys.value(i, 128));
                i += 1;
            }
            let t = Instant::now();
            db.write(&WriteOptions::default(), wb).unwrap();
            busy += t.elapsed();
        }
        let elapsed = t0.elapsed();
        let io = env.io_stats();
        rows.push(vec![
            format!("{batch_bytes}"),
            format!("{per_batch}"),
            format!(
                "{:.1}",
                io.wal_bytes as f64 / elapsed.as_secs_f64() / (1 << 20) as f64
            ),
            kqps(i as f64 / elapsed.as_secs_f64()),
            format!("{:.2}", busy.as_secs_f64() / (i as f64 / 1e6)),
        ]);
    }
    print_table(
        "Fig 7: batched WAL appends",
        &[
            "batch bytes",
            "KVs/batch",
            "wal MB/s",
            "KQPS",
            "cpu s per 1M KVs",
        ],
        &rows,
    );
}

/// A client that writes with custom [`WriteOptions`] (Fig 8 modes).
struct ModeClient {
    db: Arc<Db>,
    wo: WriteOptions,
}

impl KvClient for ModeClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        self.db.put(&self.wo, key, value).map_err(|e| e.to_string())
    }
    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        self.db.get(key).map_err(|e| e.to_string())
    }
    fn scan(&self, key: &[u8], len: usize) -> Result<usize, String> {
        self.db
            .scan(key, len)
            .map(|v| v.len())
            .map_err(|e| e.to_string())
    }
}

/// Multi-instance variant of [`ModeClient`].
struct MultiModeClient {
    dbs: Vec<Arc<Db>>,
    wo: WriteOptions,
}

impl KvClient for MultiModeClient {
    fn insert(&self, key: &[u8], value: &[u8]) -> Result<(), String> {
        let i = (p2kvs_util::hash::fnv1a64(key) % self.dbs.len() as u64) as usize;
        self.dbs[i]
            .put(&self.wo, key, value)
            .map_err(|e| e.to_string())
    }
    fn read(&self, key: &[u8]) -> Result<Option<Vec<u8>>, String> {
        let i = (p2kvs_util::hash::fnv1a64(key) % self.dbs.len() as u64) as usize;
        self.dbs[i].get(key).map_err(|e| e.to_string())
    }
    fn scan(&self, _k: &[u8], len: usize) -> Result<usize, String> {
        Ok(len)
    }
}

/// Fig 8: WAL-only and MemTable-only thread scaling, single vs multi
/// instance.
///
/// Expected shape: (a) logging — single instance gains ~2× from batching;
/// multi-instance peaks higher at a few instances (device parallelism
/// bound). (b) indexing — multi-instance scales far better (~10×) than the
/// shared concurrent skiplist (~3–4×).
pub fn fig8() {
    println!("fig8: WAL-only and MemTable-only scaling (128B)");
    let ops = scaled(40_000);
    let threads_list = [1usize, 2, 4, 8, 16, 32];
    for (stage, skip_memtable, disable_wal) in [
        ("logging (WAL only)", true, false),
        ("MemTable only", false, true),
    ] {
        let mut rows = Vec::new();
        for &threads in &threads_list {
            let mk_opts = |env| {
                let mut o = bench_options(env);
                o.bench_skip_memtable = skip_memtable;
                // Huge memtable: no flush interference in the index test.
                o.memtable_size = 1 << 30;
                o
            };
            let wo = WriteOptions {
                disable_wal,
                ..WriteOptions::default()
            };
            let env_s = setups::nvme_env();
            let single = ModeClient {
                db: Arc::new(Db::open(mk_opts(env_s), format!("f8-s-{stage}-{threads}")).unwrap()),
                wo,
            };
            let r_single = drive_micro(
                &single,
                MicroKind::FillRandom,
                ops,
                ops,
                128,
                threads,
                true,
                0,
            );
            let env_m = setups::nvme_env();
            let multi = MultiModeClient {
                dbs: (0..threads)
                    .map(|i| {
                        Arc::new(
                            Db::open(
                                mk_opts(env_m.clone()),
                                format!("f8-m-{stage}-{threads}-{i}"),
                            )
                            .unwrap(),
                        )
                    })
                    .collect(),
                wo,
            };
            let r_multi = drive_micro(
                &multi,
                MicroKind::FillRandom,
                ops,
                ops,
                128,
                threads,
                true,
                0,
            );
            rows.push(vec![
                threads.to_string(),
                kqps(r_single.qps()),
                kqps(r_multi.qps()),
            ]);
        }
        print_table(
            &format!("Fig 8: {stage} KQPS"),
            &["threads", "single-instance", "multi-instance"],
            &rows,
        );
    }
}
