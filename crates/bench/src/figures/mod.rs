//! One module per paper figure/table; each exposes `pub fn run()`.
//!
//! Conventions: every experiment prints its parameters, the paper's
//! qualitative expectation, and a table of measured rows. Absolute numbers
//! differ from the paper (simulated device, different CPU), but the shape
//! — orderings, scaling trends, crossover points — is the claim being
//! reproduced (see EXPERIMENTS.md).

pub mod analysis;
pub mod baselines;
pub mod evaluation;
pub mod macrobench;
pub mod portability;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ycsb::micro::{MicroGenerator, MicroKind};
use ycsb::workload::OpKind;
use ycsb::KvClient;

/// Result of a driven run with foreground-CPU accounting.
pub struct DriveResult {
    pub ops: u64,
    pub elapsed: Duration,
    /// Sum of time user threads spent inside engine calls.
    pub fg_busy: Duration,
    /// Average operation latency.
    pub avg_latency: Duration,
    /// 99th percentile latency.
    pub p99_latency: Duration,
}

impl DriveResult {
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Drives `ops` micro operations with `threads` user threads, optionally
/// pinning them to cores `base_core + t`, at an optional offered rate.
pub fn drive_micro<C: KvClient + ?Sized>(
    client: &C,
    kind: MicroKind,
    existing: u64,
    ops: u64,
    value_size: usize,
    threads: usize,
    pin: bool,
    rate: u64,
) -> DriveResult {
    let remaining = AtomicU64::new(ops);
    let limiter = p2kvs_util::rate::RateLimiter::new(rate);
    let start = Instant::now();
    let results: Vec<(p2kvs_util::histogram::Histogram, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads.max(1) {
            let remaining = &remaining;
            let limiter = &limiter;
            let mut gen = MicroGenerator::new(kind, existing, value_size, t as u64);
            handles.push(scope.spawn(move || {
                if pin {
                    // Leave the first cores for workers/background threads.
                    p2kvs_util::affinity::pin_to_core(16 + t);
                }
                let mut hist = p2kvs_util::histogram::Histogram::new();
                let mut done = 0u64;
                loop {
                    if remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    let op = gen.next_op();
                    limiter.acquire();
                    let t0 = Instant::now();
                    let _ = match op {
                        OpKind::Insert { key, value } => client.insert(&key, &value).is_ok(),
                        OpKind::Update { key, value } => client.update(&key, &value).is_ok(),
                        OpKind::Read { key } => client.read(&key).is_ok(),
                        _ => unreachable!("micro ops only"),
                    };
                    hist.record(t0.elapsed().as_nanos() as u64);
                    done += 1;
                }
                (hist, done)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut hist = p2kvs_util::histogram::Histogram::new();
    let mut total = 0;
    for (h, d) in results {
        hist.merge(&h);
        total += d;
    }
    DriveResult {
        ops: total,
        elapsed,
        fg_busy: Duration::from_nanos((hist.mean() * hist.count() as f64) as u64),
        avg_latency: Duration::from_nanos(hist.mean() as u64),
        p99_latency: Duration::from_nanos(hist.percentile(99.0)),
    }
}

/// Loads `n` hashed 128-byte records with 8 loader threads.
pub fn preload<C: KvClient + ?Sized>(client: &C, n: u64, value_size: usize) {
    ycsb::micro::load_hashed(client, n, value_size, 8);
}
