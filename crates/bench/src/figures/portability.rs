//! §5.6 portability experiments (Figs 22, 23) and the ablation suite.

use std::time::Instant;

use ycsb::micro::MicroKind;

use crate::figures::{drive_micro, preload};
use crate::setups;
use crate::{kqps, print_table, scaled};

/// Fig 22: p2KVS over LevelDB-mode engines vs plain LevelDB.
///
/// Expected shape: plain LevelDB barely scales with threads (shared
/// instance); p2KVS with `threads = instances` scales writes ~3× and
/// reads ~5× without multiget.
pub fn fig22() {
    println!("fig22: p2KVS over LevelDB (threads = instances)");
    let ops = scaled(30_000);
    let load = scaled(40_000);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        // Plain LevelDB: one shared instance.
        let ldb = setups::leveldb_single(setups::nvme_env(), &format!("f22-l-{threads}"));
        let w_l = drive_micro(&ldb, MicroKind::FillRandom, ops, ops, 128, threads, true, 0).qps();
        preload(&ldb, load, 128);
        ldb.db.flush().unwrap();
        ldb.db.wait_idle().unwrap();
        let r_l = drive_micro(
            &ldb,
            MicroKind::ReadRandom,
            load,
            ops,
            128,
            threads,
            true,
            0,
        )
        .qps();
        // p2KVS over LevelDB-mode instances.
        let p2 =
            setups::p2kvs_over_leveldb(setups::nvme_env(), &format!("f22-p-{threads}"), threads);
        let w_p = drive_micro(&p2, MicroKind::FillRandom, ops, ops, 128, threads, true, 0).qps();
        preload(&p2, load, 128);
        for e in p2.store.engines() {
            e.flush().unwrap();
            e.wait_idle().unwrap();
        }
        let r_p = drive_micro(&p2, MicroKind::ReadRandom, load, ops, 128, threads, true, 0).qps();
        rows.push(vec![
            threads.to_string(),
            kqps(w_l),
            format!("{} ({:.1}x)", kqps(w_p), w_p / w_l),
            kqps(r_l),
            format!("{} ({:.1}x)", kqps(r_p), r_p / r_l),
        ]);
    }
    print_table(
        "Fig 22: LevelDB random write / read KQPS",
        &[
            "threads",
            "LevelDB write",
            "p2KVS write",
            "LevelDB read",
            "p2KVS read",
        ],
        &rows,
    );
}

/// Fig 23: p2KVS over WiredTiger vs plain WiredTiger.
///
/// Expected shape: WiredTiger's global-latch write path is flat with
/// threads; p2KVS scales both reads and writes with instances even though
/// OBM-write is disabled (no batch API).
pub fn fig23() {
    println!("fig23: p2KVS over WiredTiger (threads = instances)");
    let ops = scaled(25_000);
    let load = scaled(30_000);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        let wt = setups::wiredtiger_single(setups::nvme_env(), &format!("f23-w-{threads}"));
        let w_s = drive_micro(&wt, MicroKind::FillRandom, ops, ops, 128, threads, true, 0).qps();
        preload(&wt, load, 128);
        let r_s = drive_micro(&wt, MicroKind::ReadRandom, load, ops, 128, threads, true, 0).qps();
        let p2 = setups::p2kvs_over_wt(setups::nvme_env(), &format!("f23-p-{threads}"), threads);
        let w_p = drive_micro(&p2, MicroKind::FillRandom, ops, ops, 128, threads, true, 0).qps();
        preload(&p2, load, 128);
        let r_p = drive_micro(&p2, MicroKind::ReadRandom, load, ops, 128, threads, true, 0).qps();
        rows.push(vec![
            threads.to_string(),
            kqps(w_s),
            format!("{} ({:.1}x)", kqps(w_p), w_p / w_s),
            kqps(r_s),
            format!("{} ({:.1}x)", kqps(r_p), r_p / r_s),
        ]);
    }
    print_table(
        "Fig 23: WiredTiger random write / read KQPS",
        &[
            "threads",
            "WT write",
            "p2KVS write",
            "WT read",
            "p2KVS read",
        ],
        &rows,
    );
}

/// Ablation suite for the design choices DESIGN.md §5 calls out: OBM batch
/// bound `M`, scan strategy, and partitioning scheme.
pub fn ablate() {
    println!("ablate: design-choice ablations");
    // (1) OBM batch bound M.
    {
        let ops = scaled(40_000);
        let mut rows = Vec::new();
        for m in [1usize, 4, 8, 32, 128] {
            let env = setups::nvme_env();
            let factory = p2kvs::engine::LsmFactory::new(setups::bench_options(env));
            let mut opts = p2kvs::P2KvsOptions::with_workers(4);
            // Cache off: the ablation isolates OBM batching.
            opts.cache_capacity = 0;
            opts.batch_max = m;
            let store = p2kvs::P2Kvs::open(factory, format!("ab-m{m}"), opts).unwrap();
            let client = crate::clients::P2Client { store };
            let r = drive_micro(&client, MicroKind::FillRandom, ops, ops, 128, 32, false, 0);
            let snap = client.store.snapshot();
            rows.push(vec![
                m.to_string(),
                kqps(r.qps()),
                format!("{:.1}", snap.avg_batch_size()),
                format!("{:.0}", r.p99_latency.as_micros()),
            ]);
        }
        print_table(
            "Ablation: OBM batch bound M (fillrandom, 32 threads, 4 workers)",
            &["M", "KQPS", "avg batch", "p99 µs"],
            &rows,
        );
    }
    // (2) Scan strategy: read amplification vs exactness.
    {
        let load = scaled(40_000);
        let keys = ycsb::generator::KeySpace::ordered();
        let mut rows = Vec::new();
        for (name, strategy) in [
            ("parallel-full", p2kvs::ScanStrategy::ParallelFull),
            ("adaptive", p2kvs::ScanStrategy::Adaptive),
        ] {
            let env = setups::nvme_env();
            let factory = p2kvs::engine::LsmFactory::new(setups::bench_options(env));
            let mut opts = p2kvs::P2KvsOptions::with_workers(8);
            // Cache off: the ablation isolates scan strategies.
            opts.cache_capacity = 0;
            opts.scan_strategy = strategy;
            let store = p2kvs::P2Kvs::open(factory, format!("ab-scan-{name}"), opts).unwrap();
            for i in 0..load {
                store.put(&keys.key(i), &keys.value(i, 128)).unwrap();
            }
            let ops = scaled(300);
            let t0 = Instant::now();
            let mut rng = 7u64;
            for _ in 0..ops {
                rng = p2kvs_util::hash::mix64(rng);
                let s = rng % load.saturating_sub(200).max(1);
                let got = store.scan(&keys.key(s), 100).unwrap();
                assert_eq!(got.len(), 100, "scan must stay exact");
            }
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", ops as f64 / t0.elapsed().as_secs_f64()),
            ]);
        }
        print_table(
            "Ablation: SCAN strategy (size 100)",
            &["strategy", "scans/s"],
            &rows,
        );
    }
    // (3) Partitioning: hash vs skew (zipfian hot keys across workers).
    {
        use p2kvs::Partitioner;
        let p = p2kvs::HashPartitioner::new(8);
        let zipf = ycsb::generator::ScrambledZipfian::new(1_000_000);
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let mut counts = [0u64; 8];
        let keys = ycsb::generator::KeySpace::hashed();
        for _ in 0..200_000 {
            let k = keys.key(zipf.next(&mut rng));
            counts[p.shard_of(&k)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let rows = vec![vec![format!("{counts:?}"), format!("{:.2}", max / min)]];
        print_table(
            "Ablation: hash partitioning under zipfian skew (200k requests, 8 workers)",
            &["per-worker request counts", "max/min"],
            &rows,
        );
    }
}
