//! Benchmark harness regenerating every table and figure of the p2KVS
//! paper.
//!
//! The `repro` binary (`cargo run -p p2kvs-bench --release --bin repro --
//! <id>`) has one subcommand per figure/table; see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results. All
//! experiments run on the simulated Optane NVMe device unless stated
//! otherwise, with op counts scaled by the `P2KVS_SCALE` environment
//! variable (default 1.0 ≈ tens of seconds per figure).

pub mod accessing;
pub mod artifact;
pub mod backupload;
pub mod cachebench;
pub mod clients;
pub mod compstall;
pub mod elastic;
pub mod figures;
pub mod scaninterf;
pub mod setups;
pub mod skew;
pub mod traceov;

/// Returns `n` scaled by `P2KVS_SCALE` (min 1).
pub fn scaled(n: u64) -> u64 {
    let scale = std::env::var("P2KVS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.001, 1000.0);
    ((n as f64 * scale) as u64).max(1)
}

/// Simple fixed-width table printer used by every figure.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a throughput as `K ops/s`.
pub fn kqps(qps: f64) -> String {
    format!("{:.1}", qps / 1e3)
}

/// Formats bytes as MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_respects_min() {
        assert!(super::scaled(10) >= 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(super::kqps(12_345.0), "12.3");
        assert_eq!(super::mib(3 << 20), "3.0");
        super::print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
