//! Diurnal elastic-scaling benchmark: a load ramp (1× → 8× → 1×) over
//! the utilization-driven auto-scaling pool versus a statically
//! over-provisioned store, writing `BENCH_elastic.json`.
//!
//! The scenario is the one `P2Kvs::scale_workers` exists for: offered
//! load follows a diurnal curve — quiet, a ramp to an 8× peak, quiet
//! again — and a fixed pool must be provisioned for the peak, burning
//! seven idle threads for most of the day. The elastic configuration
//! opens at one worker with a [`p2kvs::ScalePolicy`] and lets the
//! balancer clock resize the pool: each deterministic
//! [`P2Kvs::rebalance_once`] tick compares the interval's aggregate
//! service time against what the live workers should absorb at the
//! target utilization and spawns or drain-retires one worker.
//!
//! Offered load is modeled open-loop-ishly by concurrency: phase `m`
//! drives `m` client threads (the "1×→8×→1×" multiplier), each issuing
//! the same deterministic op stream. Values derive from the key alone,
//! so the two configurations — which run identical phase schedules —
//! must return byte-identical reads; [`run_default`] verifies that.
//!
//! Two gates ride in the artifact (asserted by the `elastic_scale`
//! binary, checked in CI):
//!
//! * **latency**: the elastic configuration's steady-state GET p99
//!   (each phase's final round, after the pool has adapted) stays
//!   within [`P99_BUDGET`]× of the statically over-provisioned p99;
//! * **provisioning**: the elastic pool's time-averaged live worker
//!   count is at least [`PROVISIONING_BUDGET`]× lower than the static
//!   configuration's fixed [`MAX_WORKERS`].
//!
//! No `rand` dependency: the same fixed LCG as the skew bench keeps
//! every run reproducible.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, ScalePolicy};
use p2kvs_storage::{DeviceProfile, SimEnv};

/// Peak pool size: the static configuration provisions this many
/// workers for the whole run; the elastic one may grow up to it.
pub const MAX_WORKERS: usize = 8;
/// Virtual shards — `2×` the peak so the balancer can spread load even
/// at full fan-out.
pub const SHARDS: usize = 16;
/// The diurnal load curve: client-thread multiplier per phase.
pub const PHASES: [usize; 7] = [1, 2, 4, 8, 4, 2, 1];
/// Rounds per phase; each round ends in one balancer tick, so the
/// elastic pool gets this many resize opportunities per load level.
/// The last round of each phase is the steady-state measurement the
/// latency gate reads.
pub const ROUNDS_PER_PHASE: usize = 3;
/// Latency gate: elastic steady-state GET p99 ≤ this × static p99.
pub const P99_BUDGET: f64 = 1.5;
/// Provisioning gate: static avg workers ≥ this × elastic avg workers.
pub const PROVISIONING_BUDGET: f64 = 2.0;
/// Fraction of ops that are writes.
const PUT_PERCENT: u64 = 5;
/// Keys sampled for the cross-configuration byte-identity check.
const READBACK_SAMPLE: u64 = 2_000;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("e{i:08}").into_bytes()
}

/// Values derive from the key alone, so re-puts are idempotent and the
/// final state is identical no matter how client threads interleave.
fn value_of(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64;
    for b in key {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut v = Vec::with_capacity(100);
    while v.len() < 100 {
        v.extend_from_slice(&h.to_le_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    v.truncate(100);
    v
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One phase of one configuration.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// `elastic` or `static`.
    pub config: &'static str,
    /// Phase index into [`PHASES`].
    pub phase: usize,
    /// The phase's load multiplier (= client threads).
    pub load_x: usize,
    /// Mean live workers over the phase's rounds (sampled after every
    /// tick). Constant [`MAX_WORKERS`] for the static configuration.
    pub workers_avg: f64,
    /// Live workers after the phase's last tick.
    pub workers_end: usize,
    /// Ops completed across the phase.
    pub ops: u64,
    /// Wall-clock seconds of the phase.
    pub wall_secs: f64,
    /// Aggregate throughput over the phase.
    pub throughput_ops_sec: f64,
    /// GET p50 over the phase's final (steady-state) round, ns.
    pub p50_get_ns: u64,
    /// GET p99 over the phase's final (steady-state) round, ns.
    pub p99_get_ns: u64,
}

/// The whole run: both configurations' phases plus the two gates.
#[derive(Debug, Clone)]
pub struct ElasticSummary {
    /// Phase rows, elastic first.
    pub results: Vec<PhaseResult>,
    /// Time-averaged live workers, elastic configuration.
    pub elastic_avg_workers: f64,
    /// Time-averaged live workers, static configuration (= pool size).
    pub static_avg_workers: f64,
    /// Peak live workers the elastic pool reached.
    pub elastic_peak_workers: usize,
    /// `static_avg_workers / elastic_avg_workers`.
    pub provisioning_improvement: f64,
    /// Steady-state GET p99 across phases, elastic, ns.
    pub elastic_p99_ns: u64,
    /// Steady-state GET p99 across phases, static, ns.
    pub static_p99_ns: u64,
    /// `elastic_p99_ns / static_p99_ns`.
    pub p99_ratio: f64,
    /// `p99_ratio <= P99_BUDGET`.
    pub latency_within_budget: bool,
    /// `provisioning_improvement >= PROVISIONING_BUDGET`.
    pub provisioning_within_budget: bool,
    /// Both configurations returned byte-identical reads.
    pub reads_identical: bool,
}

fn open_store(name: &str, elastic: bool) -> P2Kvs<lsmkv::Db> {
    let env: p2kvs_storage::EnvRef = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 256 << 10;
    lsm.target_file_size = 1 << 20;
    lsm.block_cache_size = 256 << 10;
    let mut opts = P2KvsOptions::with_workers(if elastic { 1 } else { MAX_WORKERS });
    opts.shards = SHARDS;
    opts.pin_workers = false;
    // No client-side cache: hits served off-worker would hide the very
    // queueing the pool size determines.
    opts.cache_capacity = 0;
    if elastic {
        // cooldown 0: with a handful of deterministic ticks per phase,
        // sitting ticks out would starve the ramp.
        opts.scale = Some(ScalePolicy {
            target_util: 0.6,
            min_workers: 1,
            max_workers: MAX_WORKERS,
            cooldown: 0,
        });
    }
    P2Kvs::open(LsmFactory::new(lsm), name, opts).unwrap()
}

fn load(store: &P2Kvs<lsmkv::Db>, keys: u64) {
    for i in 0..keys {
        let k = key_of(i);
        store.put(&k, &value_of(&k)).unwrap();
    }
}

/// Runs one round: `clients` threads each issue `ops_per_client`
/// deterministic ops (95/5 read/write over the preloaded keyspace) and
/// the round ends with one balancer tick. Returns the round's sorted
/// GET latencies and the completed op count.
fn drive_round(
    store: &P2Kvs<lsmkv::Db>,
    keys: u64,
    clients: usize,
    ops_per_client: u64,
    seed: u64,
) -> (Vec<u64>, u64) {
    let mut lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut rng = Lcg(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)));
                    let mut lat = Vec::with_capacity(ops_per_client as usize);
                    for _ in 0..ops_per_client {
                        let key = key_of(rng.next() % keys);
                        if rng.next() % 100 < PUT_PERCENT {
                            store.put(&key, &value_of(&key)).unwrap();
                        } else {
                            let began = Instant::now();
                            let got = store.get(&key).unwrap();
                            lat.push(began.elapsed().as_nanos() as u64);
                            assert!(got.is_some(), "preloaded key missing");
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let ops = clients as u64 * ops_per_client;
    lat.sort_unstable();
    store.rebalance_once().unwrap();
    (lat, ops)
}

/// Deterministic sample readback used for the cross-configuration
/// byte-identity check.
fn readback(store: &P2Kvs<lsmkv::Db>, keys: u64) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let mut rng = Lcg(0x0ddba11);
    (0..READBACK_SAMPLE)
        .map(|_| {
            let key = key_of(rng.next() % keys);
            let got = store.get(&key).unwrap();
            (key, got)
        })
        .collect()
}

/// Measures one configuration across the whole diurnal schedule.
/// Returns the phase rows, the per-round live-worker samples, and the
/// readback sample.
pub fn measure(
    config: &'static str,
    elastic: bool,
    keys: u64,
    ops_per_client: u64,
    seed: u64,
) -> (Vec<PhaseResult>, Vec<usize>, Vec<(Vec<u8>, Option<Vec<u8>>)>) {
    let store = open_store(config, elastic);
    load(&store, keys);
    let mut rows = Vec::with_capacity(PHASES.len());
    let mut samples = Vec::new();
    for (phase, &load_x) in PHASES.iter().enumerate() {
        let began = Instant::now();
        let mut phase_ops = 0u64;
        let mut phase_workers = 0usize;
        let mut last_round_lat = Vec::new();
        for round in 0..ROUNDS_PER_PHASE {
            let (lat, ops) = drive_round(
                &store,
                keys,
                load_x,
                ops_per_client,
                seed ^ ((phase as u64) << 8) ^ round as u64,
            );
            phase_ops += ops;
            let live = store.workers();
            phase_workers += live;
            samples.push(live);
            last_round_lat = lat;
        }
        let wall_secs = began.elapsed().as_secs_f64();
        rows.push(PhaseResult {
            config,
            phase,
            load_x,
            workers_avg: phase_workers as f64 / ROUNDS_PER_PHASE as f64,
            workers_end: store.workers(),
            ops: phase_ops,
            wall_secs,
            throughput_ops_sec: phase_ops as f64 / wall_secs.max(1e-9),
            p50_get_ns: percentile(&last_round_lat, 0.50),
            p99_get_ns: percentile(&last_round_lat, 0.99),
        });
    }
    let sample = readback(&store, keys);
    store.close();
    (rows, samples, sample)
}

fn avg(samples: &[usize]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<usize>() as f64 / samples.len() as f64
}

/// Builds the summary (gates included) from both configurations' rows.
pub fn summarize(
    elastic_rows: Vec<PhaseResult>,
    elastic_samples: &[usize],
    static_rows: Vec<PhaseResult>,
    static_samples: &[usize],
    reads_identical: bool,
) -> ElasticSummary {
    // The gate p99 is the worst steady-state phase p99: the elastic
    // pool must hold latency at every load level once adapted, not just
    // on average.
    let worst = |rows: &[PhaseResult]| rows.iter().map(|r| r.p99_get_ns).max().unwrap_or(0);
    let elastic_p99_ns = worst(&elastic_rows);
    let static_p99_ns = worst(&static_rows);
    let p99_ratio = elastic_p99_ns as f64 / (static_p99_ns as f64).max(1.0);
    let elastic_avg_workers = avg(elastic_samples);
    let static_avg_workers = avg(static_samples);
    let provisioning_improvement = static_avg_workers / elastic_avg_workers.max(1e-9);
    let elastic_peak_workers = elastic_samples.iter().copied().max().unwrap_or(0);
    let mut results = elastic_rows;
    results.extend(static_rows);
    ElasticSummary {
        results,
        elastic_avg_workers,
        static_avg_workers,
        elastic_peak_workers,
        provisioning_improvement,
        elastic_p99_ns,
        static_p99_ns,
        p99_ratio,
        latency_within_budget: p99_ratio <= P99_BUDGET,
        provisioning_within_budget: provisioning_improvement >= PROVISIONING_BUDGET,
        reads_identical,
    }
}

/// Renders the `BENCH_elastic.json` artifact.
pub fn render_json(summary: &ElasticSummary, keys: u64, ops_per_client: u64, seed: u64) -> String {
    let phases: Vec<String> = PHASES.iter().map(|p| p.to_string()).collect();
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("elastic_scale", seed)
            .num("max_workers", MAX_WORKERS)
            .num("shards", SHARDS)
            .num("rounds_per_phase", ROUNDS_PER_PHASE)
            .num("keys", keys)
            .num("ops_per_client", ops_per_client)
            .num("p99_budget", P99_BUDGET)
            .num("provisioning_budget", PROVISIONING_BUDGET)
            .text("phases", &phases.join(","))
            .render(),
    );
    s.push_str(&format!("  \"reads_identical\": {},\n", summary.reads_identical));
    s.push_str(&format!(
        "  \"elastic_avg_workers\": {:.3},\n  \"static_avg_workers\": {:.3},\n  \
         \"elastic_peak_workers\": {},\n  \"provisioning_improvement\": {:.3},\n  \
         \"provisioning_within_budget\": {},\n  \"elastic_p99_ns\": {},\n  \
         \"static_p99_ns\": {},\n  \"p99_ratio\": {:.3},\n  \"latency_within_budget\": {},\n",
        summary.elastic_avg_workers,
        summary.static_avg_workers,
        summary.elastic_peak_workers,
        summary.provisioning_improvement,
        summary.provisioning_within_budget,
        summary.elastic_p99_ns,
        summary.static_p99_ns,
        summary.p99_ratio,
        summary.latency_within_budget,
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in summary.results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"phase\": {}, \"load_x\": {}, \
             \"workers_avg\": {:.2}, \"workers_end\": {}, \"ops\": {}, \
             \"wall_secs\": {:.3}, \"throughput_ops_sec\": {:.1}, \
             \"p50_get_ns\": {}, \"p99_get_ns\": {}}}{}\n",
            r.config,
            r.phase,
            r.load_x,
            r.workers_avg,
            r.workers_end,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.p50_get_ns,
            r.p99_get_ns,
            if i + 1 == summary.results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_elastic.json"),
        _ => PathBuf::from("BENCH_elastic.json"),
    }
}

/// Runs both configurations over the diurnal schedule (10k keys, 4k
/// ops per client per round, scaled by `P2KVS_SCALE`; seed from
/// `P2KVS_ELASTIC_SEED`, default fixed) and writes
/// `BENCH_elastic.json` to `path`. Panics if the configurations
/// disagree on any read — resizing must be invisible to results. The
/// perf gates are *not* asserted here (the `elastic_scale` binary owns
/// that exit code); they ride in the summary and the artifact.
pub fn run_default(path: &Path) -> std::io::Result<ElasticSummary> {
    let keys = crate::scaled(10_000);
    let ops_per_client = crate::scaled(4_000);
    let seed = std::env::var("P2KVS_ELASTIC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1A5_71C5);

    let (el_rows, el_samples, el_sample) = measure("elastic", true, keys, ops_per_client, seed);
    let (st_rows, st_samples, st_sample) = measure("static", false, keys, ops_per_client, seed);
    let identical = el_sample == st_sample;
    assert!(
        identical,
        "elastic and static configurations must return byte-identical reads"
    );

    let summary = summarize(el_rows, &el_samples, st_rows, &st_samples, identical);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&summary, keys, ops_per_client, seed))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_curve_ramps_up_and_back_down() {
        assert_eq!(PHASES[0], 1);
        assert_eq!(*PHASES.iter().max().unwrap(), MAX_WORKERS);
        assert_eq!(PHASES[PHASES.len() - 1], 1);
        // Monotone up then monotone down.
        let peak = PHASES.iter().position(|&p| p == MAX_WORKERS).unwrap();
        assert!(PHASES[..=peak].windows(2).all(|w| w[0] <= w[1]));
        assert!(PHASES[peak..].windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn summary_gates_and_json_schema() {
        let row = |config: &'static str, phase: usize, p99: u64| PhaseResult {
            config,
            phase,
            load_x: PHASES[phase],
            workers_avg: if config == "static" { 8.0 } else { 2.0 },
            workers_end: if config == "static" { 8 } else { 2 },
            ops: 1000,
            wall_secs: 0.5,
            throughput_ops_sec: 2000.0,
            p50_get_ns: p99 / 4,
            p99_get_ns: p99,
        };
        let s = summarize(
            vec![row("elastic", 0, 1200), row("elastic", 1, 1400)],
            &[1, 2, 2, 3],
            vec![row("static", 0, 1000), row("static", 1, 1000)],
            &[8, 8, 8, 8],
            true,
        );
        assert_eq!(s.elastic_p99_ns, 1400, "gate reads the worst phase");
        assert!((s.p99_ratio - 1.4).abs() < 1e-9);
        assert!(s.latency_within_budget);
        assert_eq!(s.elastic_peak_workers, 3);
        assert!((s.elastic_avg_workers - 2.0).abs() < 1e-9);
        assert!((s.provisioning_improvement - 4.0).abs() < 1e-9);
        assert!(s.provisioning_within_budget);
        let json = render_json(&s, 10_000, 4_000, 7);
        assert!(json.contains("\"bench\": \"elastic_scale\""));
        assert!(json.contains("\"config\": \"elastic\""));
        assert!(json.contains("provisioning_improvement"));
        assert!(json.contains("latency_within_budget"));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn summary_flags_budget_violations() {
        let row = |config: &'static str, p99: u64, w: f64| PhaseResult {
            config,
            phase: 0,
            load_x: 1,
            workers_avg: w,
            workers_end: w as usize,
            ops: 1,
            wall_secs: 0.1,
            throughput_ops_sec: 10.0,
            p50_get_ns: p99 / 4,
            p99_get_ns: p99,
        };
        let s = summarize(
            vec![row("elastic", 2000, 5.0)],
            &[5, 5],
            vec![row("static", 1000, 8.0)],
            &[8, 8],
            true,
        );
        assert!(!s.latency_within_budget, "2.0x p99 must trip the gate");
        assert!(!s.provisioning_within_budget, "1.6x avg must trip the gate");
    }

    /// A miniature end-to-end run: the elastic pool must actually move
    /// (grow past one worker under the ramp, end the quiet tail below
    /// the peak), the static pool must stay pinned, and the two must
    /// read back identically. Timing-derived gates are asserted by the
    /// binary, not here — a loaded CI box must not flake this test.
    #[test]
    fn tiny_run_scales_and_reads_identically() {
        let (el_rows, el_samples, a) = measure("elastic", true, 400, 200, 7);
        let (st_rows, st_samples, b) = measure("static", false, 400, 200, 7);
        assert_eq!(a, b, "reads must not depend on the pool size");
        assert!(st_samples.iter().all(|&w| w == MAX_WORKERS), "static pool pinned");
        assert!(
            el_samples.iter().copied().max().unwrap() > 1,
            "the ramp never grew the elastic pool: {el_samples:?}"
        );
        assert!(
            *el_samples.last().unwrap() < MAX_WORKERS,
            "the quiet tail never shrank the pool: {el_samples:?}"
        );
        let s = summarize(el_rows, &el_samples, st_rows, &st_samples, true);
        assert!(s.elastic_avg_workers < s.static_avg_workers);
        let json = render_json(&s, 400, 200, 7);
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
