//! Scan-interference micro-benchmark: point-GET latency with and without
//! a concurrent large scan, for the chunked streaming scan path versus
//! the old blocking behavior.
//!
//! The scenario is the one the streaming scan subsystem exists for
//! (YCSB-E-style mixes): one client continuously drains full-store scans
//! while another issues synchronous point GETs. With the old monolithic
//! `Op::Scan` a whole per-instance scan ran inside one worker dequeue, so
//! every point op queued behind it waited the full scan — that behavior
//! is reproduced exactly by setting `scan_chunk_entries`/`bytes` to
//! `usize::MAX` (the worker clamp becomes a no-op and the opening chunk
//! returns the entire instance). The chunked configuration uses the
//! production defaults, where a scan yields to queued point ops after
//! every bounded chunk.
//!
//! The store runs a single worker so that every point GET shares a queue
//! with the scan. With more workers a GET only collides with the scan
//! when its key hashes to the worker currently serving a scan chunk, and
//! the store-side merge of already-fetched chunks leaves workers idle
//! between bursts — both dilute the queueing effect into the measurement
//! noise. Head-of-line blocking is per worker queue, so the single-queue
//! configuration is the honest unit of measurement; multi-worker stores
//! experience the same tail on the scanned worker's key slice.
//!
//! [`run_default`] runs both configurations over identically loaded
//! stores, verifies the scan output is byte-identical between them, and
//! writes the `BENCH_scan.json` artifact consumed by CI and
//! `EXPERIMENTS.md`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, SimEnv};

/// One configuration's measurements.
#[derive(Debug, Clone)]
pub struct InterfResult {
    /// `blocking` (old behavior) or `chunked` (streaming default).
    pub config: &'static str,
    /// Effective per-chunk entry bound.
    pub chunk_entries: usize,
    /// Point-GET p50 with no scan running, nanoseconds.
    pub p50_get_idle_ns: u64,
    /// Point-GET p99 with no scan running, nanoseconds.
    pub p99_get_idle_ns: u64,
    /// Point-GET p50 while full-store scans drain continuously.
    pub p50_get_scan_ns: u64,
    /// Point-GET p99 while full-store scans drain continuously.
    pub p99_get_scan_ns: u64,
    /// GETs completed during the interference window.
    pub gets_during_scan: u64,
    /// Full-store scans completed during the interference window.
    pub scans_completed: u64,
    /// Entries streamed per second by the scanner during the window.
    pub scan_entries_per_sec: f64,
    /// Scan chunks served by the workers over the whole run.
    pub scan_chunks: u64,
    /// Cursor resumes served by the workers over the whole run.
    pub scan_resumes: u64,
}

/// Keys are `key%08d` over a deterministic permutation; values are
/// `value_bytes` of a key-derived byte. No `rand` dependency: a fixed
/// LCG keeps runs reproducible.
fn nth_key(i: u64) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn open_store(name: &str, workers: usize, chunk_entries: usize) -> P2Kvs<lsmkv::Db> {
    // The paper's device: simulated NVMe Optane with per-IO latency and
    // bandwidth accounting. Small memtables and block caches force scans
    // (and most GETs) through the device, as on a real SSD-resident
    // dataset — an all-in-memory store serves chunks so fast that worker
    // occupancy, the thing this benchmark measures, never materializes.
    let env: p2kvs_storage::EnvRef = Arc::new(SimEnv::with_profile(DeviceProfile::nvme_optane()));
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 256 << 10;
    lsm.target_file_size = 1 << 20;
    lsm.block_cache_size = 256 << 10;
    let mut opts = P2KvsOptions::with_workers(workers);
    opts.pin_workers = false;
    // Cache off: this bench measures GET latency *through the queue*
    // while scans stream — client-side cache hits would bypass exactly
    // the interference under test.
    opts.cache_capacity = 0;
    opts.scan_chunk_entries = chunk_entries;
    if chunk_entries == usize::MAX {
        opts.scan_chunk_bytes = usize::MAX;
    }
    P2Kvs::open(LsmFactory::new(lsm), name, opts).unwrap()
}

fn load(store: &P2Kvs<lsmkv::Db>, entries: u64, value_bytes: usize) {
    for i in 0..entries {
        let v = vec![(i % 251) as u8; value_bytes];
        store.put(&nth_key(i), &v).unwrap();
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Synchronous point GETs of existing keys for `window`, returning the
/// sorted latency samples.
fn get_loop(store: &P2Kvs<lsmkv::Db>, entries: u64, window: Duration) -> Vec<u64> {
    let mut lat = Vec::with_capacity(1 << 16);
    let mut rng = Lcg(0x5ca1ab1e);
    let start = Instant::now();
    while start.elapsed() < window {
        let key = nth_key(rng.next() % entries);
        let began = Instant::now();
        let got = store.get(&key).unwrap();
        lat.push(began.elapsed().as_nanos() as u64);
        assert!(got.is_some(), "preloaded key missing");
    }
    lat.sort_unstable();
    lat
}

/// Measures one configuration: idle point-GET latency, then point-GET
/// latency while a scanner thread drains full-store scans back to back.
pub fn measure(
    config: &'static str,
    chunk_entries: usize,
    entries: u64,
    value_bytes: usize,
    window: Duration,
) -> (InterfResult, Vec<(Vec<u8>, Vec<u8>)>) {
    let store = open_store(config, 1, chunk_entries);
    load(&store, entries, value_bytes);

    // Quiescent reference drain — also the byte-identity artifact.
    let reference = store.scan(b"", entries as usize + 1).unwrap();
    assert_eq!(reference.len(), entries as usize);

    // Phase 1: no scan running.
    let idle = get_loop(&store, entries, window);

    // Phase 2: continuous full-store scans beside the GET loop.
    let stop = AtomicBool::new(false);
    let scans_done = AtomicU64::new(0);
    let entries_streamed = AtomicU64::new(0);
    let (during, scan_secs) = thread::scope(|s| {
        let scanner = {
            let store = &store;
            let stop = &stop;
            let scans_done = &scans_done;
            let entries_streamed = &entries_streamed;
            s.spawn(move || {
                let began = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    let got = store.scan(b"", entries as usize + 1).unwrap();
                    entries_streamed.fetch_add(got.len() as u64, Ordering::Relaxed);
                    scans_done.fetch_add(1, Ordering::Relaxed);
                }
                began.elapsed().as_secs_f64()
            })
        };
        let during = get_loop(&store, entries, window);
        stop.store(true, Ordering::Release);
        let scan_secs = scanner.join().unwrap();
        (during, scan_secs)
    });

    let snap = store.snapshot();
    let result = InterfResult {
        config,
        chunk_entries,
        p50_get_idle_ns: percentile(&idle, 0.50),
        p99_get_idle_ns: percentile(&idle, 0.99),
        p50_get_scan_ns: percentile(&during, 0.50),
        p99_get_scan_ns: percentile(&during, 0.99),
        gets_during_scan: during.len() as u64,
        scans_completed: scans_done.load(Ordering::Relaxed),
        scan_entries_per_sec: entries_streamed.load(Ordering::Relaxed) as f64
            / scan_secs.max(1e-9),
        scan_chunks: snap.workers.iter().map(|w| w.scan_chunks).sum(),
        scan_resumes: snap.workers.iter().map(|w| w.scan_resumes).sum(),
    };
    (result, reference)
}

/// p99 point-GET improvement of `chunked` over `blocking` during the
/// interference window (>1 means chunking helped).
pub fn p99_improvement(results: &[InterfResult]) -> f64 {
    let find = |c: &str| {
        results
            .iter()
            .find(|r| r.config == c)
            .map(|r| r.p99_get_scan_ns)
    };
    match (find("blocking"), find("chunked")) {
        (Some(b), Some(c)) if c > 0 => b as f64 / c as f64,
        _ => 0.0,
    }
}

/// Renders the `BENCH_scan.json` artifact.
pub fn render_json(
    results: &[InterfResult],
    entries: u64,
    value_bytes: usize,
    identical: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("scan_interference", 0)
            .num("entries", entries)
            .num("value_bytes", value_bytes)
            .render(),
    );
    s.push_str(&format!(
        "  \"scan_results_identical\": {identical},\n"
    ));
    s.push_str(&format!(
        "  \"p99_point_get_improvement_during_scan\": {:.3},\n",
        p99_improvement(results)
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let chunk = if r.chunk_entries == usize::MAX {
            "\"unbounded\"".to_string()
        } else {
            r.chunk_entries.to_string()
        };
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"chunk_entries\": {}, \
             \"p50_get_idle_ns\": {}, \"p99_get_idle_ns\": {}, \
             \"p50_get_scan_ns\": {}, \"p99_get_scan_ns\": {}, \
             \"gets_during_scan\": {}, \"scans_completed\": {}, \
             \"scan_entries_per_sec\": {:.1}, \"scan_chunks\": {}, \
             \"scan_resumes\": {}}}{}\n",
            r.config,
            chunk,
            r.p50_get_idle_ns,
            r.p99_get_idle_ns,
            r.p50_get_scan_ns,
            r.p99_get_scan_ns,
            r.gets_during_scan,
            r.scans_completed,
            r.scan_entries_per_sec,
            r.scan_chunks,
            r.scan_resumes,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_scan.json"),
        _ => PathBuf::from("BENCH_scan.json"),
    }
}

/// Runs both configurations (100k entries × 100 B values scaled by
/// `P2KVS_SCALE`, 3 s measurement windows) and writes `BENCH_scan.json`
/// to `path`. Panics if the two configurations disagree on the scan
/// content — the refactor must be invisible to scan results.
pub fn run_default(path: &Path) -> std::io::Result<Vec<InterfResult>> {
    let entries = crate::scaled(100_000);
    let value_bytes = 100;
    let window = Duration::from_secs(3);

    let (chunked, chunked_ref) = measure("chunked", 256, entries, value_bytes, window);
    let (blocking, blocking_ref) = measure("blocking", usize::MAX, entries, value_bytes, window);
    let identical = chunked_ref == blocking_ref;
    assert!(
        identical,
        "chunked and blocking scans must return identical results"
    );

    let results = vec![blocking, chunked];
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&results, entries, value_bytes, identical))?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_and_scans_agree() {
        let (r, reference) = measure("chunked", 64, 2_000, 32, Duration::from_millis(200));
        assert_eq!(reference.len(), 2_000);
        assert!(r.gets_during_scan > 0);
        assert!(r.scans_completed > 0);
        assert!(r.p50_get_idle_ns <= r.p99_get_idle_ns);
        assert!(r.p50_get_scan_ns <= r.p99_get_scan_ns);
        assert!(r.scan_chunks > 0);
    }

    #[test]
    fn json_render_is_complete() {
        let (r, _) = measure("blocking", usize::MAX, 500, 16, Duration::from_millis(100));
        let json = render_json(&[r], 500, 16, true);
        assert!(json.contains("\"bench\": \"scan_interference\""));
        assert!(json.contains("\"config\": \"blocking\""));
        assert!(json.contains("\"chunk_entries\": \"unbounded\""));
        assert!(json.contains("p99_point_get_improvement_during_scan"));
        assert!(json.contains("\"scan_results_identical\": true"));
    }
}
