//! Compaction-stall scenario benchmark: write-tail latency on a
//! compaction-heavy YCSB-A-style load, single-queue serial compaction
//! versus multi-queue parallel subcompactions, writing
//! `BENCH_compaction.json`.
//!
//! The scenario is the one the multi-queue device and queue-aware
//! parallel compaction exist for (DESIGN.md §13): a store whose L0
//! keeps tripping the slowdown/stop triggers, so foreground PUTs stall
//! behind compaction. Both configurations run the identical
//! deterministic workload on a device with the *same aggregate*
//! simulated capacity (`with_queues` splits bandwidth, it does not add
//! any); the only differences are queue count, compaction parallelism,
//! and queue affinity:
//!
//! * `baseline` — one submission queue, one compaction thread, no
//!   subcompaction splitting: WAL syncs, flushes, and compaction I/O
//!   all serialize on one device timeline.
//! * `parallel` — four queues with queue affinity on, three compaction
//!   threads, four-way subcompactions spread across queues.
//!
//! The gate: the parallel configuration's write-stall time — seconds
//! writers spent blocked on L0/immutable backpressure, summed from the
//! engines' own `engine_stall_ns_total` counters, best (lowest) round
//! per configuration — must be at least [`MIN_STALL_IMPROVEMENT_X`]×
//! lower than the baseline's, **and** both configurations must
//! converge to byte-identical logical state (an order-independent fold
//! over a full scan) — parallel compaction that drops or duplicates a
//! key is not an optimization. Foreground PUT percentiles (p50, p95,
//! p99, max) are recorded in the artifact for the latency view of the
//! same story; they are reported, not gated, because at device
//! saturation the put tail mixes in WAL-writeback service time that
//! both configurations pay identically.
//! Values derive from the key alone, so the final state is a function
//! of the touched key set, which the fixed seed makes deterministic.
//! No `rand` dependency: the same LCG as the other figures.

use std::path::{Path, PathBuf};
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, SimEnv};

/// Gate: the parallel configuration's write-stall seconds (best round)
/// must be at least this many times lower than the baseline's (1.25 =
/// 25% less time stalled). Measured headroom is ~1.5–2.0× across
/// seeds and scales; the margin absorbs host scheduler noise.
pub const MIN_STALL_IMPROVEMENT_X: f64 = 1.25;
/// Worker threads (= shards = parallel-config queues: the paper's
/// square layout, worker *i* pinned to queue *i*).
pub const WORKERS: usize = 4;
/// Client threads issuing the foreground workload.
const CLIENTS: usize = 4;
/// YCSB-A: half the ops are writes — write stalls are the measurement.
const PUT_PERCENT: u64 = 50;
/// Measured rounds per configuration; the summary compares best-of
/// (lowest p99), which tames scheduler noise the same way the backup
/// and trace-overhead figures do.
const ROUNDS: usize = 2;
/// Value payload size; large enough that the preload plus updates
/// overflow the tiny memtables many times over.
const VALUE_LEN: usize = 512;

/// One benchmark configuration: device queue layout plus compaction
/// parallelism. Both run the same workload, engine sizing, and device
/// capacity.
#[derive(Debug, Clone, Copy)]
pub struct ConfigSpec {
    /// `baseline` or `parallel`.
    pub name: &'static str,
    /// Submission queues the simulated device exposes.
    pub queues: usize,
    /// Background compaction threads per engine instance.
    pub compaction_threads: usize,
    /// Maximum key-range subcompactions per compaction job.
    pub subcompactions: usize,
}

/// The two measured configurations.
pub const CONFIGS: [ConfigSpec; 2] = [
    ConfigSpec { name: "baseline", queues: 1, compaction_threads: 1, subcompactions: 1 },
    ConfigSpec { name: "parallel", queues: 4, compaction_threads: 3, subcompactions: 4 },
];

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("cst-{i:07}").into_bytes()
}

/// Values derive from the key alone, so re-puts are idempotent and the
/// final logical state depends only on which keys were ever touched —
/// identical across configurations by construction, which is what the
/// read-back fold verifies survived two very different compaction
/// pipelines.
fn value_of(key: &[u8]) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64;
    for b in key {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut v = Vec::with_capacity(VALUE_LEN);
    while v.len() < VALUE_LEN {
        v.extend_from_slice(&h.to_le_bytes());
        h = h.wrapping_mul(0x100000001b3);
    }
    v.truncate(VALUE_LEN);
    v
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for b in bytes {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// One configuration × round measurement.
#[derive(Debug, Clone)]
pub struct CompactionStallResult {
    /// Configuration name (`baseline` or `parallel`).
    pub config: &'static str,
    /// Round index within the configuration.
    pub round: usize,
    /// Foreground ops completed in the window.
    pub ops: u64,
    /// Wall-clock seconds of the window.
    pub wall_secs: f64,
    /// Aggregate foreground throughput over the window.
    pub throughput_ops_sec: f64,
    /// Foreground PUT latency percentiles, nanoseconds. p99 is the
    /// gated number — it is where L0/imm backpressure stalls surface.
    pub p50_put_ns: u64,
    /// PUT p95, nanoseconds.
    pub p95_put_ns: u64,
    /// PUT p99 — the gated number.
    pub p99_put_ns: u64,
    /// Worst PUT seen, nanoseconds.
    pub max_put_ns: u64,
    /// Foreground GET latency percentiles, nanoseconds.
    pub p50_get_ns: u64,
    /// GET p99 (reported, not gated).
    pub p99_get_ns: u64,
    /// Seconds writers spent inside engine write stalls (summed
    /// `engine_stall_ns_total` across instances).
    pub stall_secs: f64,
    /// Bytes of compaction output the device absorbed.
    pub compaction_bytes: u64,
    /// Device submission queues that saw write traffic.
    pub queues_active: usize,
    /// Order-independent fold over a full scan: `count` and the summed
    /// per-entry FNV of key and value. Equal folds = identical state.
    pub read_back_count: u64,
    /// See [`CompactionStallResult::read_back_count`].
    pub read_back_fold: u64,
}

/// The artifact's summary block: best-of-round stall time and PUT p99
/// per configuration, the improvement ratios, and the two gates.
#[derive(Debug, Clone)]
pub struct CompactionStallSummary {
    /// All measured rounds, both configurations.
    pub results: Vec<CompactionStallResult>,
    /// Lowest write-stall seconds across baseline rounds.
    pub best_baseline_stall_secs: f64,
    /// Lowest write-stall seconds across parallel rounds.
    pub best_parallel_stall_secs: f64,
    /// `best_baseline_stall_secs / best_parallel_stall_secs` — how many
    /// times less time the parallel configuration spent stalled. The
    /// gated number.
    pub stall_improvement_x: f64,
    /// Lowest PUT p99 across baseline rounds, nanoseconds (reported).
    pub best_baseline_put_p99_ns: u64,
    /// Lowest PUT p99 across parallel rounds, nanoseconds (reported).
    pub best_parallel_put_p99_ns: u64,
    /// `best_baseline_put_p99_ns / best_parallel_put_p99_ns`
    /// (reported, not gated — see the module docs).
    pub put_p99_x: f64,
    /// Every round of every configuration scanned back the same
    /// `(count, fold)` — parallel compaction lost or duplicated
    /// nothing.
    pub read_back_identical: bool,
    /// `stall_improvement_x >= MIN_STALL_IMPROVEMENT_X` **and**
    /// `read_back_identical` — what the CI job asserts.
    pub within_gate: bool,
}

/// Engine sizing shared by both configurations: memtables and files
/// small enough that the workload tripping over the L0 slowdown/stop
/// triggers is the steady state, not an accident.
fn engine_options(env: p2kvs_storage::EnvRef, spec: ConfigSpec) -> lsmkv::Options {
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 48 << 10;
    // Roomy immutable queue, tight L0 triggers: rotation almost never
    // blocks on the (inherently serial) flush, so the write stalls the
    // figure measures are L0-stop waits — the kind whose duration is a
    // compaction job's wall time, which subcompactions divide.
    lsm.max_immutable_memtables = 3;
    // Files much smaller than levels, so every level holds many files
    // and `partition_bounds` has real key boundaries to split
    // subcompactions on — with one file per level the parallel
    // configuration silently degenerates to serial.
    lsm.target_file_size = 16 << 10;
    // A deep, narrow tree: every flush cascades through several
    // levels, so compaction demand is a large multiple of ingest and
    // the serial baseline cannot drain L0 at any ingest rate — the
    // backpressure is structural, not a race the closed-loop clients
    // can pace away.
    lsm.base_level_size = 64 << 10;
    lsm.level_multiplier = 4;
    lsm.l0_compaction_trigger = 4;
    lsm.l0_slowdown_trigger = 5;
    lsm.l0_stop_trigger = 6;
    // A cache big enough to serve the read half of YCSB-A from memory:
    // GETs paying multi-ms simulated block reads would throttle the
    // closed-loop clients long before the write path backpressures,
    // and the write path is the measurement.
    lsm.block_cache_size = 8 << 20;
    // Buffered logging: puts do not pay device time per group, so
    // ingest runs at memtable speed and write tails are set by
    // flush/compaction backpressure — the stalls this figure exists to
    // measure — not by per-op WAL transfer time.
    lsm.sync = lsmkv::SyncPolicy::Buffered;
    lsm.compaction_threads = spec.compaction_threads;
    lsm.subcompactions = spec.subcompactions;
    lsm
}

/// Measures one configuration round: preload, run the 50/50 client
/// window, read the engine/device counters, then fold a full scan for
/// the cross-configuration identity check. Deterministic per
/// `(seed, client index)`.
pub fn measure(spec: ConfigSpec, round: usize, keys: u64, ops: u64, seed: u64) -> CompactionStallResult {
    // A throttled SATA-class device, not the Optane profile: the
    // figure needs background drain (flush + compaction) to lag the
    // memtable-speed ingest so the L0 slowdown/stop triggers actually
    // trip — on the stock profiles this workload never backpressures
    // and there is no stall to measure. Per-stream bandwidth and IO
    // latencies are identical in both configurations; what differs is
    // how much of the device's parallelism the submission layout can
    // *express*: `with_queues` floors per-queue depth at one, so on
    // this low-depth device (2 channels) a single queue holds two IOs
    // in flight while four queues hold four — the paper's core claim
    // that one submission stream cannot keep a parallel SSD busy.
    let mut profile = DeviceProfile::sata_ssd();
    profile.read_bw = 3 << 20;
    profile.write_bw = 3 << 20;
    // Fine-grained writeback: 16 KiB chunks keep any one buffered
    // flush from monopolizing a depth-1 queue for tens of
    // milliseconds, which would swamp the placement signal with
    // chunk-granularity noise.
    profile.writeback_threshold = 16 << 10;
    let env: p2kvs_storage::EnvRef =
        std::sync::Arc::new(SimEnv::with_profile(profile.with_queues(spec.queues)));
    let lsm = engine_options(env, spec);
    let mut opts = P2KvsOptions::with_workers(WORKERS);
    opts.pin_workers = false;
    // Square layout: shards == workers == (parallel) queues, so each
    // worker's WAL/flush traffic has a home queue of its own.
    opts.shards = WORKERS;
    // Cache off: client-side hits would hide the worker-path write
    // stalls being measured.
    opts.cache_capacity = 0;
    let name = format!("cst-{}-{round}", spec.name);
    let store = P2Kvs::open(LsmFactory::new(lsm), &name, opts).unwrap();
    for i in 0..keys {
        let k = key_of(i);
        store.put(&k, &value_of(&k)).unwrap();
    }

    let per_client = (ops / CLIENTS as u64).max(1);
    let began = Instant::now();
    let (mut gets, mut puts) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let store = &store;
                s.spawn(move || {
                    let mut rng = Lcg(seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)));
                    let mut gets = Vec::new();
                    let mut puts = Vec::with_capacity(per_client as usize);
                    for _ in 0..per_client {
                        let key = key_of(rng.next() % keys);
                        if rng.next() % 100 < PUT_PERCENT {
                            let t = Instant::now();
                            store.put(&key, &value_of(&key)).unwrap();
                            puts.push(t.elapsed().as_nanos() as u64);
                        } else {
                            let t = Instant::now();
                            let got = store.get(&key).unwrap();
                            gets.push(t.elapsed().as_nanos() as u64);
                            assert!(got.is_some(), "preloaded key missing");
                        }
                    }
                    (gets, puts)
                })
            })
            .collect();
        let mut gets = Vec::new();
        let mut puts = Vec::new();
        for h in handles {
            let (g, p) = h.join().unwrap();
            gets.extend(g);
            puts.extend(p);
        }
        (gets, puts)
    });
    let wall_secs = began.elapsed().as_secs_f64();
    let ops_done = (gets.len() + puts.len()) as u64;

    // Counters after the window: stall time proves the workload really
    // was backpressured, queue activity proves affinity spread it.
    let snap = store.metrics_snapshot();
    let stall_ns: f64 = snap
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("engine_stall_ns_total"))
        .map(|(_, v)| v)
        .sum();
    let compaction_bytes = snap
        .counters
        .iter()
        .find(|(n, _)| n == "p2kvs_device_compaction_bytes_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let queues_active = if spec.queues > 1 {
        (0..spec.queues)
            .filter(|q| {
                snap.counters
                    .iter()
                    .any(|(n, v)| n == &format!("p2kvs_device_q{q}_bytes_written_total") && *v > 0)
            })
            .count()
    } else {
        1
    };

    // The identity fold: order-independent (summed per-entry FNV), so
    // it only depends on the logical contents, not on scan order or
    // SST layout — the two things the configurations legitimately
    // differ in.
    let entries = store.range(b"", &[0xffu8; 12]).unwrap();
    let read_back_count = entries.len() as u64;
    let mut read_back_fold = 0u64;
    for (k, v) in &entries {
        read_back_fold = read_back_fold.wrapping_add(fnv(fnv(0xcbf29ce484222325, k), v));
    }
    store.close();

    gets.sort_unstable();
    puts.sort_unstable();
    CompactionStallResult {
        config: spec.name,
        round,
        ops: ops_done,
        wall_secs,
        throughput_ops_sec: ops_done as f64 / wall_secs.max(1e-9),
        p50_put_ns: percentile(&puts, 0.50),
        p95_put_ns: percentile(&puts, 0.95),
        p99_put_ns: percentile(&puts, 0.99),
        max_put_ns: puts.last().copied().unwrap_or(0),
        p50_get_ns: percentile(&gets, 0.50),
        p99_get_ns: percentile(&gets, 0.99),
        stall_secs: stall_ns / 1e9,
        compaction_bytes,
        queues_active,
        read_back_count,
        read_back_fold,
    }
}

/// Folds rounds into the gated summary: best (lowest) stall time and
/// PUT p99 per configuration, the improvement ratios, the read-back
/// identity check, and the gate verdict.
pub fn summarize(results: Vec<CompactionStallResult>) -> CompactionStallSummary {
    let best_p99 = |config: &str| -> u64 {
        results
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.p99_put_ns)
            .min()
            .unwrap_or(0)
            .max(1)
    };
    let best_stall = |config: &str| -> f64 {
        results
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.stall_secs)
            .fold(f64::INFINITY, f64::min)
            .max(1e-9)
    };
    let best_baseline_stall_secs = best_stall("baseline");
    let best_parallel_stall_secs = best_stall("parallel");
    let stall_improvement_x = best_baseline_stall_secs / best_parallel_stall_secs;
    let best_baseline_put_p99_ns = best_p99("baseline");
    let best_parallel_put_p99_ns = best_p99("parallel");
    let put_p99_x = best_baseline_put_p99_ns as f64 / best_parallel_put_p99_ns as f64;
    let read_back_identical = results
        .windows(2)
        .all(|w| w[0].read_back_count == w[1].read_back_count && w[0].read_back_fold == w[1].read_back_fold);
    CompactionStallSummary {
        results,
        best_baseline_stall_secs,
        best_parallel_stall_secs,
        stall_improvement_x,
        best_baseline_put_p99_ns,
        best_parallel_put_p99_ns,
        put_p99_x,
        read_back_identical,
        within_gate: stall_improvement_x >= MIN_STALL_IMPROVEMENT_X && read_back_identical,
    }
}

/// Renders the `BENCH_compaction.json` artifact.
pub fn render_json(summary: &CompactionStallSummary, keys: u64, ops: u64, seed: u64) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("compaction_stall", seed)
            .num("workers", WORKERS)
            .num("clients", CLIENTS)
            .num("keys", keys)
            .num("ops_per_round", ops)
            .num("rounds", ROUNDS)
            .num("put_percent", PUT_PERCENT)
            .num("value_len", VALUE_LEN)
            .num("min_improvement_x", MIN_STALL_IMPROVEMENT_X)
            .render(),
    );
    s.push_str(&format!(
        "  \"best_baseline_stall_secs\": {:.3}, \"best_parallel_stall_secs\": {:.3},\n",
        summary.best_baseline_stall_secs, summary.best_parallel_stall_secs
    ));
    s.push_str(&format!(
        "  \"stall_improvement_x\": {:.3},\n",
        summary.stall_improvement_x
    ));
    s.push_str(&format!(
        "  \"best_baseline_put_p99_ns\": {}, \"best_parallel_put_p99_ns\": {}, \"put_p99_x\": {:.3},\n",
        summary.best_baseline_put_p99_ns, summary.best_parallel_put_p99_ns, summary.put_p99_x
    ));
    s.push_str(&format!(
        "  \"read_back_identical\": {}, \"within_gate\": {},\n",
        summary.read_back_identical, summary.within_gate
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in summary.results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"round\": {}, \"ops\": {}, \
             \"wall_secs\": {:.3}, \"throughput_ops_sec\": {:.1}, \
             \"p50_put_ns\": {}, \"p95_put_ns\": {}, \"p99_put_ns\": {}, \"max_put_ns\": {}, \
             \"p50_get_ns\": {}, \"p99_get_ns\": {}, \
             \"stall_secs\": {:.3}, \"compaction_bytes\": {}, \
             \"queues_active\": {}, \"read_back_count\": {}, \
             \"read_back_fold\": {}}}{}\n",
            r.config,
            r.round,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.p50_put_ns,
            r.p95_put_ns,
            r.p99_put_ns,
            r.max_put_ns,
            r.p50_get_ns,
            r.p99_get_ns,
            r.stall_secs,
            r.compaction_bytes,
            r.queues_active,
            r.read_back_count,
            r.read_back_fold,
            if i + 1 == summary.results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_compaction.json"),
        _ => PathBuf::from("BENCH_compaction.json"),
    }
}

/// Runs both configurations for [`ROUNDS`] rounds (16 000 keys, 24k ops
/// per round, scaled by `P2KVS_SCALE`; seed from
/// `P2KVS_COMPACTION_SEED`, default fixed — the same variable the CI
/// job pins) and writes `BENCH_compaction.json` to `path`.
pub fn run_default(path: &Path) -> std::io::Result<CompactionStallSummary> {
    let keys = crate::scaled(16_000);
    let ops = crate::scaled(24_000);
    let seed = std::env::var("P2KVS_COMPACTION_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0_57A11);

    let mut results = Vec::new();
    for round in 0..ROUNDS {
        for spec in CONFIGS {
            results.push(measure(spec, round, keys, ops, seed ^ round as u64));
        }
    }
    let summary = summarize(results);

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&summary, keys, ops, seed))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(
        config: &'static str,
        stall_secs: f64,
        count: u64,
        fold: u64,
    ) -> CompactionStallResult {
        CompactionStallResult {
            config,
            round: 0,
            ops: 1000,
            wall_secs: 0.5,
            throughput_ops_sec: 2000.0,
            p50_put_ns: 2_000,
            p95_put_ns: 4_000,
            p99_put_ns: 8_000,
            max_put_ns: 16_000,
            p50_get_ns: 500,
            p99_get_ns: 2_000,
            stall_secs,
            compaction_bytes: 1 << 20,
            queues_active: if config == "parallel" { 4 } else { 1 },
            read_back_count: count,
            read_back_fold: fold,
        }
    }

    #[test]
    fn summary_gates_on_stall_improvement_and_identity() {
        // Half the stall time, identical folds: passes.
        let s = summarize(vec![
            synthetic("baseline", 0.8, 300, 42),
            synthetic("parallel", 0.4, 300, 42),
        ]);
        assert!((s.stall_improvement_x - 2.0).abs() < 1e-9);
        assert!(s.read_back_identical && s.within_gate);
        // Less stalling but the folds disagree: the identity half trips.
        let s = summarize(vec![
            synthetic("baseline", 0.8, 300, 42),
            synthetic("parallel", 0.4, 300, 43),
        ]);
        assert!(!s.read_back_identical && !s.within_gate);
        // Identical folds but no stall improvement: the stall half trips.
        let s = summarize(vec![
            synthetic("baseline", 0.4, 300, 42),
            synthetic("parallel", 0.4, 300, 42),
        ]);
        assert!(s.read_back_identical && !s.within_gate);
    }

    #[test]
    fn tiny_run_converges_to_identical_state_and_renders_schema() {
        let baseline = measure(CONFIGS[0], 0, 300, 2_000, 7);
        let parallel = measure(CONFIGS[1], 0, 300, 2_000, 7);
        assert!(baseline.ops > 0 && parallel.ops > 0);
        assert_eq!(baseline.queues_active, 1);
        assert!(parallel.queues_active >= 2, "affinity spread nothing");
        assert_eq!(baseline.read_back_count, 300, "scan must see every key");
        assert_eq!(baseline.read_back_count, parallel.read_back_count);
        assert_eq!(baseline.read_back_fold, parallel.read_back_fold);
        assert!(baseline.p50_put_ns <= baseline.p99_put_ns);
        let summary = summarize(vec![baseline, parallel]);
        assert!(summary.read_back_identical);
        let json = render_json(&summary, 300, 2_000, 7);
        assert!(json.contains("\"bench\": \"compaction_stall\""));
        assert!(json.contains("\"config\": \"parallel\""));
        assert!(json.contains("stall_improvement_x"));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
