//! System constructors shared by all experiments.
//!
//! Engine sizes are scaled down from production defaults (1 MiB memtables,
//! 512 KiB SSTs) so compaction dynamics appear within scaled-down op
//! counts; the ratios between levels match the full-size configuration.

use std::sync::Arc;

use lsmkv::{Db, Options};
use p2kvs::engine::{LsmFactory, WtFactory};
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::{DeviceProfile, EnvRef, SimEnv};

use crate::clients::{KvellClient, LsmClient, MultiLsmClient, P2Client, WtClient};

/// A simulated environment over the given device profile.
pub fn device_env(profile: DeviceProfile) -> Arc<SimEnv> {
    Arc::new(SimEnv::with_profile(profile))
}

/// The default experiment device: the Optane-class NVMe SSD.
pub fn nvme_env() -> Arc<SimEnv> {
    device_env(DeviceProfile::nvme_optane())
}

/// A zero-latency environment (unit tests of the harness itself).
pub fn instant_env() -> Arc<SimEnv> {
    device_env(DeviceProfile::instant())
}

/// Bench-scaled RocksDB-mode options.
pub fn bench_options(env: EnvRef) -> Options {
    let mut o = Options::rocksdb_like(env);
    o.memtable_size = 1 << 20;
    o.target_file_size = 512 << 10;
    o.base_level_size = 4 << 20;
    o.block_cache_size = 8 << 20;
    o
}

/// Single-instance RocksDB-mode baseline.
pub fn rocksdb_single(env: Arc<SimEnv>, dir: &str) -> LsmClient {
    LsmClient {
        db: Arc::new(Db::open(bench_options(env), dir).expect("open rocksdb baseline")),
    }
}

/// Single-instance PebblesDB-mode baseline.
pub fn pebblesdb_single(env: Arc<SimEnv>, dir: &str) -> LsmClient {
    let mut o = bench_options(env);
    o.compaction_style = lsmkv::CompactionStyle::Fragmented;
    o.concurrent_memtable = false;
    o.pipelined_write = false;
    o.has_multiget = false;
    o.read_pool_threads = 0;
    LsmClient {
        db: Arc::new(Db::open(o, dir).expect("open pebblesdb baseline")),
    }
}

/// Single-instance LevelDB-mode baseline.
pub fn leveldb_single(env: Arc<SimEnv>, dir: &str) -> LsmClient {
    let mut o = bench_options(env);
    o.concurrent_memtable = false;
    o.pipelined_write = false;
    o.has_multiget = false;
    o.read_pool_threads = 0;
    LsmClient {
        db: Arc::new(Db::open(o, dir).expect("open leveldb baseline")),
    }
}

/// The §3 multi-instance configuration (`n` independent instances).
pub fn rocksdb_multi(env: Arc<SimEnv>, dir: &str, n: usize) -> MultiLsmClient {
    let dbs = (0..n)
        .map(|i| {
            Arc::new(
                Db::open(bench_options(env.clone()), format!("{dir}/inst{i}"))
                    .expect("open multi instance"),
            )
        })
        .collect();
    MultiLsmClient { dbs }
}

/// p2KVS over RocksDB-mode engines.
pub fn p2kvs(env: Arc<SimEnv>, dir: &str, workers: usize, obm: bool) -> P2Client<Db> {
    p2kvs_with(bench_options(env), dir, workers, obm)
}

/// p2KVS over RocksDB-mode engines with explicit engine options.
pub fn p2kvs_with(opts: Options, dir: &str, workers: usize, obm: bool) -> P2Client<Db> {
    let factory = LsmFactory::new(opts);
    // The paper's static layout: one shard per worker, no balancer —
    // figures reproduce the published configuration byte-for-byte.
    let mut popts = P2KvsOptions::paper_layout(workers);
    popts.obm = obm;
    // Adaptive SCAN quotas: exact results with far less read amplification
    // (see the `repro ablate` scan-strategy table).
    popts.scan_strategy = p2kvs::ScanStrategy::Adaptive;
    P2Client {
        store: P2Kvs::open(factory, dir, popts).expect("open p2kvs"),
    }
}

/// p2KVS over LevelDB-mode engines.
pub fn p2kvs_over_leveldb(env: Arc<SimEnv>, dir: &str, workers: usize) -> P2Client<Db> {
    let mut o = bench_options(env);
    o.concurrent_memtable = false;
    o.pipelined_write = false;
    o.has_multiget = false;
    o.read_pool_threads = 0;
    let factory = LsmFactory::new(o);
    P2Client {
        store: P2Kvs::open(factory, dir, P2KvsOptions::paper_layout(workers))
            .expect("open p2kvs/leveldb"),
    }
}

/// p2KVS over WiredTiger engines.
pub fn p2kvs_over_wt(env: Arc<SimEnv>, dir: &str, workers: usize) -> P2Client<wtiger::WtDb> {
    let factory = WtFactory::new(wtiger::WtOptions::new(env));
    P2Client {
        store: P2Kvs::open(factory, dir, P2KvsOptions::paper_layout(workers))
            .expect("open p2kvs/wt"),
    }
}

/// Standalone WiredTiger.
pub fn wiredtiger_single(env: Arc<SimEnv>, dir: &str) -> WtClient {
    WtClient {
        db: Arc::new(wtiger::WtDb::open(wtiger::WtOptions::new(env), dir).expect("open wt")),
    }
}

/// KVell with `workers` share-nothing workers.
pub fn kvell(env: Arc<SimEnv>, dir: &str, workers: usize) -> KvellClient {
    let mut opts = kvell::KvellOptions::new(env);
    opts.workers = workers;
    KvellClient {
        db: kvell::KvellDb::open(opts, dir).expect("open kvell"),
    }
}
