//! Runs the diurnal elastic-scaling benchmark and writes
//! `BENCH_elastic.json` (to `$P2KVS_METRICS_DIR` when set). Exits
//! nonzero when either CI gate fails: auto-scale steady-state GET p99
//! beyond 1.5× the statically over-provisioned pool's, or average
//! provisioned workers not at least 2× lower.

use p2kvs_bench::elastic;

fn main() {
    let path = elastic::artifact_path();
    let summary = elastic::run_default(&path).expect("bench run failed");

    let rows: Vec<Vec<String>> = summary
        .results
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.phase.to_string(),
                format!("{}x", r.load_x),
                format!("{:.1}", r.workers_avg),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                format!("{} ns", r.p50_get_ns),
                format!("{} ns", r.p99_get_ns),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "diurnal ramp 1x -> 8x -> 1x",
        &["config", "phase", "load", "workers", "kops/s", "p50 get", "p99 get"],
        &rows,
    );

    println!(
        "avg workers: elastic {:.2} vs static {:.2} ({:.2}x fewer, peak {})",
        summary.elastic_avg_workers,
        summary.static_avg_workers,
        summary.provisioning_improvement,
        summary.elastic_peak_workers,
    );
    println!(
        "steady-state p99: elastic {} ns vs static {} ns ({:.2}x)",
        summary.elastic_p99_ns, summary.static_p99_ns, summary.p99_ratio,
    );
    println!("wrote {}", path.display());

    let mut failed = false;
    if !summary.latency_within_budget {
        eprintln!(
            "GATE FAILED: elastic p99 is {:.2}x static (budget {:.1}x)",
            summary.p99_ratio,
            elastic::P99_BUDGET,
        );
        failed = true;
    }
    if !summary.provisioning_within_budget {
        eprintln!(
            "GATE FAILED: elastic pool only saves {:.2}x workers (budget {:.1}x)",
            summary.provisioning_improvement,
            elastic::PROVISIONING_BUDGET,
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("gates passed");
}
