//! Standalone trace-overhead benchmark: the accessing pipeline with
//! span tracing disabled versus the default 1-in-64 sample rate,
//! writing `BENCH_trace.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin trace_overhead
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE` and the seed
//! comes from `P2KVS_TRACE_SEED` (default fixed). **Exits non-zero when
//! the overhead exceeds the 5% budget** — the `trace-overhead` CI job
//! is exactly this binary.

use p2kvs_bench::traceov;

fn main() -> std::io::Result<()> {
    let path = traceov::artifact_path();
    let summary = traceov::run_default(&path)?;

    let rows: Vec<Vec<String>> = summary
        .results
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.trace_sample.to_string(),
                r.round.to_string(),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                format!("{:016x}", r.read_checksum),
                r.spans_recorded.to_string(),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "span tracing overhead: disabled vs default 1/64 sampling",
        &["config", "sample", "round", "kops/s", "read_checksum", "spans"],
        &rows,
    );
    println!(
        "\nbest disabled: {:.1} kops/s, best sampled: {:.1} kops/s, overhead {:.2}% (budget {}%)",
        summary.best_disabled / 1e3,
        summary.best_sampled / 1e3,
        summary.overhead_pct,
        traceov::OVERHEAD_BUDGET_PCT,
    );
    println!("wrote {}", path.display());

    if !summary.within_budget {
        eprintln!(
            "FAIL: tracing overhead {:.2}% exceeds the {}% budget",
            summary.overhead_pct,
            traceov::OVERHEAD_BUDGET_PCT
        );
        std::process::exit(1);
    }
    Ok(())
}
