//! Standalone backup-under-load benchmark: foreground GET/PUT latency
//! with an online backup streaming versus idle, writing
//! `BENCH_backup.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin backup_under_load
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE` and the seed
//! comes from `P2KVS_BACKUP_SEED` (default fixed). **Exits non-zero
//! when foreground GET or PUT p99 while streaming exceeds 2× the idle
//! best** — the `backup-under-load` CI job is exactly this binary.

use p2kvs_bench::backupload;

fn main() -> std::io::Result<()> {
    let path = backupload::artifact_path();
    let summary = backupload::run_default(&path)?;

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    let rows: Vec<Vec<String>> = summary
        .results
        .iter()
        .map(|r| {
            vec![
                r.phase.to_string(),
                r.round.to_string(),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                us(r.p50_get_ns),
                us(r.p99_get_ns),
                us(r.p50_put_ns),
                us(r.p99_put_ns),
                r.backup_entries.to_string(),
                format!("{:.2}", r.backup_wall_secs),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "foreground latency: online backup streaming vs idle",
        &[
            "phase", "round", "kops/s", "get_p50_us", "get_p99_us", "put_p50_us", "put_p99_us",
            "bk_entries", "bk_secs",
        ],
        &rows,
    );
    println!(
        "\nGET p99: idle {}us vs streaming {}us ({:.2}x); PUT p99: idle {}us vs streaming {}us \
         ({:.2}x); budget {}x",
        us(summary.best_idle_get_p99_ns),
        us(summary.best_streaming_get_p99_ns),
        summary.degradation_x_get,
        us(summary.best_idle_put_p99_ns),
        us(summary.best_streaming_put_p99_ns),
        summary.degradation_x_put,
        backupload::DEGRADATION_BUDGET_X,
    );
    println!("wrote {}", path.display());

    if !summary.within_budget {
        eprintln!(
            "FAIL: streaming p99 degradation (get {:.2}x, put {:.2}x) exceeds the {}x budget",
            summary.degradation_x_get,
            summary.degradation_x_put,
            backupload::DEGRADATION_BUDGET_X
        );
        std::process::exit(1);
    }
    Ok(())
}
