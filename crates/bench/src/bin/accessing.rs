//! Standalone accessing-layer benchmark: fan-in sweep over 1/2/4/8/16
//! user threads for both queue implementations (lock-free ring vs the
//! Mutex + Condvar baseline), writing `BENCH_accessing.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin accessing
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE`.

use p2kvs_bench::accessing;

fn main() -> std::io::Result<()> {
    let path = accessing::artifact_path();
    let results = accessing::run_default_sweep(&path)?;

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.queue.to_string(),
                r.mode.to_string(),
                r.window.to_string(),
                r.threads.to_string(),
                p2kvs_bench::kqps(r.ops_per_sec),
                format!("{:.2}", r.avg_batch),
                format!("{:.1}", r.p50_rt_ns as f64 / 1e3),
                format!("{:.1}", r.p99_rt_ns as f64 / 1e3),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "accessing-layer fan-in (one worker queue)",
        &[
            "queue",
            "mode",
            "window",
            "threads",
            "kops/s",
            "avg_batch",
            "p50_us",
            "p99_us",
        ],
        &rows,
    );
    println!(
        "\nring vs mutex at 8 threads: {:.2}x",
        accessing::speedup_at(&results, 8)
    );
    println!("wrote {}", path.display());
    Ok(())
}
