//! Standalone compaction-stall benchmark: write-tail latency on a
//! compaction-heavy YCSB-A-style load, single-queue serial compaction
//! versus multi-queue parallel subcompactions, writing
//! `BENCH_compaction.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin compaction_stall
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE` and the seed
//! comes from `P2KVS_COMPACTION_SEED` (default fixed). **Exits non-zero
//! when the parallel configuration fails to cut write-stall time by the
//! gate margin, or when the two configurations do not read back
//! byte-identical state** — the `compaction-stall` CI job is exactly
//! this binary. PUT tail percentiles land in the artifact as the
//! latency view of the same story.

use p2kvs_bench::compstall;

fn main() -> std::io::Result<()> {
    let path = compstall::artifact_path();
    let summary = compstall::run_default(&path)?;

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    let rows: Vec<Vec<String>> = summary
        .results
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.round.to_string(),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                us(r.p50_put_ns),
                us(r.p99_put_ns),
                us(r.p50_get_ns),
                us(r.p99_get_ns),
                format!("{:.2}", r.stall_secs),
                (r.compaction_bytes >> 20).to_string(),
                r.queues_active.to_string(),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "write stalls: serial single-queue vs parallel multi-queue compaction",
        &[
            "config", "round", "kops/s", "put_p50_us", "put_p99_us", "get_p50_us", "get_p99_us",
            "stall_s", "comp_MiB", "queues",
        ],
        &rows,
    );
    println!(
        "\nwrite stalls: baseline {:.2}s vs parallel {:.2}s ({:.2}x less; gate {}x); \
         PUT p99 {}us vs {}us ({:.2}x, reported); read-back identical: {}",
        summary.best_baseline_stall_secs,
        summary.best_parallel_stall_secs,
        summary.stall_improvement_x,
        compstall::MIN_STALL_IMPROVEMENT_X,
        us(summary.best_baseline_put_p99_ns),
        us(summary.best_parallel_put_p99_ns),
        summary.put_p99_x,
        summary.read_back_identical,
    );
    println!("wrote {}", path.display());

    if !summary.within_gate {
        eprintln!(
            "FAIL: stall improvement {:.2}x (gate {}x), read-back identical: {}",
            summary.stall_improvement_x,
            compstall::MIN_STALL_IMPROVEMENT_X,
            summary.read_back_identical,
        );
        std::process::exit(1);
    }
    Ok(())
}
