//! Standalone scan-interference benchmark: point-GET latency with and
//! without a concurrent full-store scan, for the chunked streaming scan
//! path versus the old blocking behavior, writing `BENCH_scan.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin scan_interference
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; the dataset size scales with `P2KVS_SCALE`.

use p2kvs_bench::scaninterf;

fn main() -> std::io::Result<()> {
    let path = scaninterf::artifact_path();
    let results = scaninterf::run_default(&path)?;

    let fmt_chunk = |c: usize| {
        if c == usize::MAX {
            "unbounded".to_string()
        } else {
            c.to_string()
        }
    };
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                fmt_chunk(r.chunk_entries),
                format!("{:.1}", r.p50_get_idle_ns as f64 / 1e3),
                format!("{:.1}", r.p99_get_idle_ns as f64 / 1e3),
                format!("{:.1}", r.p50_get_scan_ns as f64 / 1e3),
                format!("{:.1}", r.p99_get_scan_ns as f64 / 1e3),
                r.scans_completed.to_string(),
                p2kvs_bench::kqps(r.scan_entries_per_sec),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "point-GET latency under a concurrent full-store scan",
        &[
            "config",
            "chunk",
            "idle_p50_us",
            "idle_p99_us",
            "scan_p50_us",
            "scan_p99_us",
            "scans",
            "kentries/s",
        ],
        &rows,
    );
    println!(
        "\np99 point-GET improvement during scan (blocking/chunked): {:.2}x",
        scaninterf::p99_improvement(&results)
    );
    println!("wrote {}", path.display());
    Ok(())
}
