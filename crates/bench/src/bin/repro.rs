//! `repro`: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin repro -- <id> [<id> ...]
//! cargo run -p p2kvs-bench --release --bin repro -- all
//! ```
//!
//! Ids: fig1 fig4 fig5 fig6 fig7 fig8 tab1 fig12 tab2 fig13 fig14 fig15
//! fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23 ablate.
//! Scale op counts with `P2KVS_SCALE` (e.g. `P2KVS_SCALE=0.2` for a quick
//! pass).

use p2kvs_bench::{artifact, figures};

fn run(id: &str) -> bool {
    let t0 = std::time::Instant::now();
    // Stores closed during this experiment write their final metrics
    // snapshot as `<id>-<seq>.metrics.json` under P2KVS_METRICS_DIR.
    artifact::set_experiment(id);
    match id {
        "fig1" => figures::analysis::fig1(),
        "fig4" => figures::analysis::fig4(),
        "fig5" => figures::analysis::fig5(),
        "fig6" => figures::analysis::fig6(),
        "fig7" => figures::analysis::fig7(),
        "fig8" => figures::analysis::fig8(),
        "tab1" => figures::macrobench::tab1(),
        "fig12" | "tab2" => figures::evaluation::fig12_tab2(),
        "fig13" => figures::evaluation::fig13(),
        "fig14" => figures::evaluation::fig14(),
        "fig15" => figures::evaluation::fig15(),
        "fig16" => figures::macrobench::fig16(),
        "fig17" => figures::macrobench::fig17(),
        "fig18" => figures::macrobench::fig18(),
        "fig19" => figures::macrobench::fig19(),
        "fig20" => figures::baselines::fig20(),
        "fig21" => figures::baselines::fig21(),
        "fig22" => figures::portability::fig22(),
        "fig23" => figures::portability::fig23(),
        "ablate" => figures::portability::ablate(),
        other => {
            eprintln!("unknown experiment id: {other}");
            return false;
        }
    }
    println!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
    true
}

const ALL: &[&str] = &[
    "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "tab1", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "ablate",
];

fn main() {
    // Metrics artifacts default on for repro runs; export
    // P2KVS_METRICS_DIR="" to disable or point it elsewhere.
    if std::env::var_os(p2kvs_bench::artifact::METRICS_DIR_ENV).is_none() {
        std::env::set_var(p2kvs_bench::artifact::METRICS_DIR_ENV, "repro_metrics");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <id>... | all   (ids: {})", ALL.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut ok = true;
    for id in ids {
        ok &= run(id);
    }
    if !ok {
        std::process::exit(2);
    }
}
