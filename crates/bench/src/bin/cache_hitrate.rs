//! Standalone read-cache benchmark: zipfian hit-rate sweep, miss-path
//! overhead gate, and the three-way skew-recovery comparison, writing
//! `BENCH_cache.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin cache_hitrate
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE` and the seed
//! comes from `P2KVS_CACHE_SEED` (default fixed). Exits non-zero when a
//! gate fails:
//!
//! * miss-path overhead (cache on, all-miss traffic) > 3 % — always;
//! * full-hot-set hit rate < 90 %, or GET p50 ≥ 5 µs at that point;
//! * balanced+cache throughput < 1.0× the unlucky static baseline —
//!   only at `P2KVS_SCALE` ≥ 1.0 (tiny windows are too noisy to gate).

use p2kvs_bench::cachebench;

fn main() -> std::io::Result<()> {
    let path = cachebench::artifact_path();
    let summary = cachebench::run_default(&path)?;

    let rows: Vec<Vec<String>> = summary
        .results
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.pct_of_hot),
                p2kvs_bench::mib(r.capacity_bytes),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                format!("{:.1}", r.hit_rate * 100.0),
                format!("{:.1}", r.p50_get_ns as f64 / 1e3),
                format!("{:.1}", r.p99_get_ns as f64 / 1e3),
                r.evictions.to_string(),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "zipfian hot-set read cache: capacity sweep (% of hot-set bytes)",
        &["cache", "MiB", "kops/s", "hit %", "get_p50_us", "get_p99_us", "evictions"],
        &rows,
    );
    println!(
        "\nhot set: {} keys / {:.1} MiB carry {:.0}% of requests",
        summary.hot_keys,
        summary.hot_bytes as f64 / (1 << 20) as f64,
        cachebench::HOT_MASS * 100.0
    );
    println!(
        "miss-path overhead (all-miss, fastest of {} rounds): {:.2}% (off {:.3}s, on {:.3}s)",
        summary.miss.rounds, summary.miss.overhead_pct, summary.miss.off_secs, summary.miss.on_secs
    );
    println!(
        "skew recovery: static {:.1} kops/s, balanced {:.1} kops/s, balanced+cache {:.1} kops/s \
         ({:.2}x static)",
        summary.skew.static_ops_sec / 1e3,
        summary.skew.balanced_ops_sec / 1e3,
        summary.skew.balanced_cached_ops_sec / 1e3,
        summary.skew.cached_over_static
    );
    println!("wrote {}", path.display());

    let full_scale = std::env::var("P2KVS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        >= 1.0;
    let full = summary.results.last().expect("sweep ran");
    let mut failures = Vec::new();
    if summary.miss.overhead_pct > 3.0 {
        failures.push(format!(
            "miss-path overhead {:.2}% exceeds the 3% budget",
            summary.miss.overhead_pct
        ));
    }
    if full.hit_rate < 0.90 {
        failures.push(format!(
            "full-hot-set hit rate {:.1}% is under the 90% target",
            full.hit_rate * 100.0
        ));
    }
    if full.p50_get_ns >= 5_000 {
        failures.push(format!(
            "full-hot-set GET p50 {:.1}us is not under the 5us target",
            full.p50_get_ns as f64 / 1e3
        ));
    }
    if full_scale && summary.skew.cached_over_static < 1.0 {
        failures.push(format!(
            "balanced+cache is {:.3}x the static baseline (want >= 1.0x)",
            summary.skew.cached_over_static
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    Ok(())
}
