//! Standalone skew-rebalancing benchmark: zipfian tenant traffic over a
//! static shard map versus the skew-aware balancer, writing
//! `BENCH_skew.json`.
//!
//! ```text
//! cargo run -p p2kvs-bench --release --bin skew_rebalance
//! ```
//!
//! The artifact lands in `$P2KVS_METRICS_DIR` when set, the working
//! directory otherwise; op counts scale with `P2KVS_SCALE` and the seed
//! comes from `P2KVS_SKEW_SEED` (default fixed).

use p2kvs_bench::skew;

fn main() -> std::io::Result<()> {
    let path = skew::artifact_path();
    let results = skew::run_default(&path)?;

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                r.migrations.to_string(),
                p2kvs_bench::kqps(r.throughput_ops_sec),
                format!("{:.1}", r.p50_get_ns as f64 / 1e3),
                format!("{:.1}", r.p99_get_ns as f64 / 1e3),
                format!("{:.2}", r.ops_spread),
                format!("{:.2}", r.busy_spread),
                format!("{:?}", r.worker_ops),
            ]
        })
        .collect();
    p2kvs_bench::print_table(
        "zipfian tenant skew: static map vs skew-aware rebalancing",
        &[
            "config",
            "moves",
            "kops/s",
            "get_p50_us",
            "get_p99_us",
            "ops_spread",
            "busy_spread",
            "worker_ops",
        ],
        &rows,
    );
    println!(
        "\nper-worker throughput spread improvement (static/balanced): {:.2}x",
        skew::spread_improvement(&results)
    );
    println!(
        "aggregate throughput improvement (balanced/static): {:.2}x",
        skew::throughput_improvement(&results)
    );
    println!("wrote {}", path.display());
    Ok(())
}
