//! Trace-overhead benchmark: the accessing pipeline with span tracing
//! disabled versus the default 1-in-64 sample rate, writing
//! `BENCH_trace.json`.
//!
//! Tracing is only free to leave on in production if the sampled path
//! costs nothing measurable on the *hot* pipeline. This bench makes the
//! comparison deliberately adversarial: the store runs on [`MemEnv`]
//! (no simulated device latency to hide behind), several user threads
//! drive blocking puts/gets through the queues, and the two
//! configurations differ **only** in `trace_sample` (0 = the sampling
//! branch compiled in but never taken vs 64 = the default). Each thread
//! owns a disjoint key range, so the fold of every GET result is
//! byte-deterministic — the artifact asserts the checksums of both
//! configurations are identical before comparing throughput, proving
//! tracing never changed a result. The budget (enforced by the
//! `trace-overhead` CI job via the `trace_overhead` binary's exit code)
//! is **< 5%** throughput loss at the default sample rate.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions};
use p2kvs_storage::MemEnv;
use p2kvs_util::hash::{fnv1a64, mix64};

/// Throughput budget: the sampled configuration may cost at most this
/// fraction of the untraced configuration's throughput.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Alternating measurement rounds per configuration; the best round is
/// compared so scheduler noise penalizes neither side.
const ROUNDS: usize = 3;

/// One configuration's measurement from one round.
#[derive(Debug, Clone)]
pub struct TraceOvResult {
    /// `disabled` (`trace_sample = 0`) or `sampled` (default rate).
    pub config: &'static str,
    /// The `trace_sample` the store ran with.
    pub trace_sample: u64,
    /// Measurement round (0-based).
    pub round: usize,
    /// Blocking ops completed across all user threads.
    pub ops: u64,
    /// Wall-clock for the measured phase.
    pub wall_secs: f64,
    /// `ops / wall_secs`.
    pub throughput_ops_sec: f64,
    /// Deterministic fold of every GET result (thread-order free).
    pub read_checksum: u64,
    /// Spans the store recorded over the run — 0 when disabled, > 0
    /// when sampled (asserted by [`run_default`]).
    pub spans_recorded: u64,
}

/// Everything [`run_default`] measured, pre-digested for the artifact
/// and the CI gate.
pub struct TraceOvSummary {
    /// Per-round measurements, both configurations.
    pub results: Vec<TraceOvResult>,
    /// Best-round throughput with tracing disabled.
    pub best_disabled: f64,
    /// Best-round throughput at the default sample rate.
    pub best_sampled: f64,
    /// `100 × (1 - sampled/disabled)`; negative = noise in tracing's
    /// favor.
    pub overhead_pct: f64,
    /// Whether `overhead_pct` is under [`OVERHEAD_BUDGET_PCT`].
    pub within_budget: bool,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Runs `threads` user threads of an LCG-driven 3:1 put:get mix for
/// `ops_per_thread` blocking ops each, every thread confined to its own
/// `keys_per_thread` key range (GET results therefore depend only on
/// that thread's own put stream — deterministic under any
/// interleaving). Returns (ops, wall, checksum, spans).
fn measure(
    config: &'static str,
    trace_sample: u64,
    round: usize,
    threads: usize,
    ops_per_thread: u64,
    keys_per_thread: u64,
    seed: u64,
) -> TraceOvResult {
    let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
    let mut lsm = lsmkv::Options::rocksdb_like(env);
    lsm.memtable_size = 4 << 20;
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    // Cache off: the overhead under test is tracing on the worker
    // round-trip; cached GETs would never reach it.
    opts.cache_capacity = 0;
    opts.trace_sample = trace_sample;
    let store = P2Kvs::open(LsmFactory::new(lsm), "trace-ov", opts).unwrap();

    let began = Instant::now();
    let checksum = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = &store;
                s.spawn(move || {
                    let mut rng = Lcg(mix64(seed ^ (t as u64) << 32));
                    let mut sum = 0u64;
                    for i in 0..ops_per_thread {
                        let r = rng.next();
                        let key = format!("t{t:02}k{:06}", r % keys_per_thread);
                        if r % 4 == 3 {
                            let got = store.get(key.as_bytes()).unwrap();
                            sum ^= mix64(
                                fnv1a64(key.as_bytes())
                                    ^ got.as_deref().map_or(0, fnv1a64),
                            );
                        } else {
                            let value = format!("v{t:02}-{i:08}-{:016x}", rng.next());
                            store.put(key.as_bytes(), value.as_bytes()).unwrap();
                        }
                    }
                    sum
                })
            })
            .collect();
        // XOR-fold: associative and commutative, so the total is
        // independent of thread completion order.
        handles.into_iter().fold(0u64, |acc, h| acc ^ h.join().unwrap())
    });
    let wall = began.elapsed().as_secs_f64();
    let spans = store.introspect().trace_spans_recorded;
    store.close();

    let ops = threads as u64 * ops_per_thread;
    TraceOvResult {
        config,
        trace_sample,
        round,
        ops,
        wall_secs: wall,
        throughput_ops_sec: ops as f64 / wall.max(1e-9),
        read_checksum: checksum,
        spans_recorded: spans,
    }
}

/// Renders the `BENCH_trace.json` artifact.
pub fn render_json(
    summary: &TraceOvSummary,
    threads: usize,
    ops_per_thread: u64,
    keys_per_thread: u64,
    seed: u64,
    identical: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(
        &crate::artifact::RunMeta::new("trace_overhead", seed)
            .num("threads", threads)
            .num("ops_per_thread", ops_per_thread)
            .num("keys_per_thread", keys_per_thread)
            .num("rounds", ROUNDS)
            .num("default_trace_sample", 64)
            .render(),
    );
    s.push_str(&format!("  \"read_checksums_identical\": {identical},\n"));
    s.push_str(&format!(
        "  \"best_disabled_ops_sec\": {:.1},\n",
        summary.best_disabled
    ));
    s.push_str(&format!(
        "  \"best_sampled_ops_sec\": {:.1},\n",
        summary.best_sampled
    ));
    s.push_str(&format!("  \"overhead_pct\": {:.3},\n", summary.overhead_pct));
    s.push_str(&format!("  \"budget_pct\": {OVERHEAD_BUDGET_PCT},\n"));
    s.push_str(&format!("  \"within_budget\": {},\n", summary.within_budget));
    s.push_str("  \"results\": [\n");
    for (i, r) in summary.results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"trace_sample\": {}, \"round\": {}, \
             \"ops\": {}, \"wall_secs\": {:.6}, \"throughput_ops_sec\": {:.1}, \
             \"read_checksum\": {}, \"spans_recorded\": {}}}{}\n",
            r.config,
            r.trace_sample,
            r.round,
            r.ops,
            r.wall_secs,
            r.throughput_ops_sec,
            r.read_checksum,
            r.spans_recorded,
            if i + 1 == summary.results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Where the artifact goes: `$P2KVS_METRICS_DIR` when set, the working
/// directory otherwise.
pub fn artifact_path() -> PathBuf {
    match std::env::var(crate::artifact::METRICS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join("BENCH_trace.json"),
        _ => PathBuf::from("BENCH_trace.json"),
    }
}

/// Runs the comparison (4 user threads × 60k ops scaled by
/// `P2KVS_SCALE`, seed from `P2KVS_TRACE_SEED`, [`ROUNDS`] alternating
/// rounds per configuration) and writes `BENCH_trace.json` to `path`.
/// Panics if the configurations disagree on any GET fold or if sampling
/// recorded no spans — the comparison must be real on both sides.
pub fn run_default(path: &Path) -> std::io::Result<TraceOvSummary> {
    let threads = 4;
    let ops_per_thread = crate::scaled(60_000);
    let keys_per_thread = 4_000;
    let seed = std::env::var("P2KVS_TRACE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7AC3_0FF5);

    let mut results = Vec::with_capacity(2 * ROUNDS);
    for round in 0..ROUNDS {
        results.push(measure(
            "disabled", 0, round, threads, ops_per_thread, keys_per_thread, seed,
        ));
        results.push(measure(
            "sampled", 64, round, threads, ops_per_thread, keys_per_thread, seed,
        ));
    }
    let identical = results.windows(2).all(|w| w[0].read_checksum == w[1].read_checksum);
    assert!(identical, "tracing changed a GET result — checksums diverge");
    for r in &results {
        match r.config {
            "disabled" => assert_eq!(r.spans_recorded, 0, "disabled run recorded spans"),
            _ => assert!(r.spans_recorded > 0, "sampled run recorded no spans"),
        }
    }

    let best = |config: &str| {
        results
            .iter()
            .filter(|r| r.config == config)
            .map(|r| r.throughput_ops_sec)
            .fold(0.0f64, f64::max)
    };
    let (best_disabled, best_sampled) = (best("disabled"), best("sampled"));
    let overhead_pct = 100.0 * (1.0 - best_sampled / best_disabled.max(1e-9));
    let summary = TraceOvSummary {
        results,
        best_disabled,
        best_sampled,
        overhead_pct,
        within_budget: overhead_pct < OVERHEAD_BUDGET_PCT,
    };

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(
        path,
        render_json(&summary, threads, ops_per_thread, keys_per_thread, seed, identical),
    )?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksums_are_deterministic_and_trace_independent() {
        let a = measure("disabled", 0, 0, 2, 2_000, 200, 11);
        let b = measure("sampled", 1, 0, 2, 2_000, 200, 11);
        assert_eq!(a.read_checksum, b.read_checksum, "tracing changed results");
        assert_ne!(a.read_checksum, 0, "fold must cover real GET hits");
        assert_eq!(a.spans_recorded, 0);
        assert!(b.spans_recorded > 0, "sample=1 must record spans");
        assert!(a.throughput_ops_sec > 0.0 && b.throughput_ops_sec > 0.0);
        // A different seed walks a different history.
        let c = measure("disabled", 0, 0, 2, 2_000, 200, 12);
        assert_ne!(a.read_checksum, c.read_checksum);
    }

    #[test]
    fn artifact_conforms_to_schema() {
        let mk = |config: &'static str, sample, thr| TraceOvResult {
            config,
            trace_sample: sample,
            round: 0,
            ops: 1000,
            wall_secs: 0.5,
            throughput_ops_sec: thr,
            read_checksum: 42,
            spans_recorded: sample.min(1),
        };
        let summary = TraceOvSummary {
            results: vec![mk("disabled", 0, 2000.0), mk("sampled", 64, 1960.0)],
            best_disabled: 2000.0,
            best_sampled: 1960.0,
            overhead_pct: 2.0,
            within_budget: true,
        };
        let json = render_json(&summary, 4, 1000, 100, 7, true);
        assert!(json.contains("\"bench\": \"trace_overhead\""));
        assert!(json.contains("\"overhead_pct\": 2.000"));
        assert!(json.contains("\"within_budget\": true"));
        let v = crate::artifact::validate_schema(&json);
        assert!(v.is_empty(), "{v:?}");
    }
}
