//! Criterion end-to-end benchmarks: one PUT / GET through each system's
//! full software path (instant device: pure software cost, the quantity
//! the paper's CPU-bottleneck analysis is about).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use p2kvs_bench::setups;
use ycsb::KvClient;

fn bench_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("put-128B");
    g.throughput(Throughput::Elements(1));

    let rocks = setups::rocksdb_single(setups::instant_env(), "cb-rocks");
    let mut i = 0u64;
    g.bench_function("lsmkv-single", |b| {
        b.iter(|| {
            rocks
                .insert(format!("key{i:012}").as_bytes(), &[7u8; 128])
                .unwrap();
            i += 1;
        })
    });

    let p2 = setups::p2kvs(setups::instant_env(), "cb-p2", 2, true);
    let mut i = 0u64;
    g.bench_function("p2kvs-2w", |b| {
        b.iter(|| {
            p2.insert(format!("key{i:012}").as_bytes(), &[7u8; 128]).unwrap();
            i += 1;
        })
    });

    let kv = setups::kvell(setups::instant_env(), "cb-kvell", 2);
    let mut i = 0u64;
    g.bench_function("kvell-2w", |b| {
        b.iter(|| {
            kv.insert(format!("key{i:012}").as_bytes(), &[7u8; 128]).unwrap();
            i += 1;
        })
    });

    let wt = setups::wiredtiger_single(setups::instant_env(), "cb-wt");
    let mut i = 0u64;
    g.bench_function("wtiger-single", |b| {
        b.iter(|| {
            wt.insert(format!("key{i:012}").as_bytes(), &[7u8; 128]).unwrap();
            i += 1;
        })
    });
    g.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("get-128B");
    g.throughput(Throughput::Elements(1));
    const N: u64 = 20_000;

    let rocks = setups::rocksdb_single(setups::instant_env(), "cg-rocks");
    let p2 = setups::p2kvs(setups::instant_env(), "cg-p2", 2, true);
    let kv = setups::kvell(setups::instant_env(), "cg-kvell", 2);
    let clients: [(&str, &dyn KvClient); 3] =
        [("lsmkv-single", &rocks), ("p2kvs-2w", &p2), ("kvell-2w", &kv)];
    for (_, client) in &clients {
        for i in 0..N {
            client
                .insert(format!("key{i:08}").as_bytes(), &[9u8; 128])
                .unwrap();
        }
    }
    rocks.db.flush().unwrap();
    rocks.db.wait_idle().unwrap();
    for (name, client) in clients {
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                let k = format!("key{:08}", (i * 7919) % N);
                i += 1;
                std::hint::black_box(client.read(k.as_bytes()).unwrap());
            })
        });
    }
    g.finish();
}

fn bench_multiget(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiget-32keys");
    g.throughput(Throughput::Elements(32));
    const N: u64 = 20_000;
    let rocks = setups::rocksdb_single(setups::instant_env(), "cm-rocks");
    for i in 0..N {
        rocks
            .insert(format!("key{i:08}").as_bytes(), &[9u8; 128])
            .unwrap();
    }
    rocks.db.flush().unwrap();
    let mut i = 0u64;
    g.bench_function("lsmkv-multiget", |b| {
        b.iter(|| {
            let keys: Vec<Vec<u8>> = (0..32)
                .map(|j| format!("key{:08}", (i * 31 + j * 977) % N).into_bytes())
                .collect();
            i += 1;
            std::hint::black_box(Arc::clone(&rocks.db).multiget(&keys).unwrap());
        })
    });
    let mut i = 0u64;
    g.bench_function("lsmkv-32-serial-gets", |b| {
        b.iter(|| {
            for j in 0..32u64 {
                let k = format!("key{:08}", (i * 31 + j * 977) % N);
                std::hint::black_box(rocks.db.get(k.as_bytes()).unwrap());
            }
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_put, bench_get, bench_multiget
);
criterion_main!(benches);
