//! Criterion micro-benchmarks of the engine's hot components: these are
//! the per-operation costs the paper's latency breakdown (Fig 6) is made
//! of — WAL encoding, skiplist insertion, SST lookup, bloom probes,
//! checksums, and OBM batch formation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;

fn bench_skiplist(c: &mut Criterion) {
    use lsmkv::memtable::MemTable;
    use lsmkv::types::ValueType;
    let mut g = c.benchmark_group("memtable");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert-128B", |b| {
        let mem = MemTable::new();
        let mut i = 0u64;
        b.iter(|| {
            mem.add(
                i + 1,
                ValueType::Value,
                format!("key{i:012}").as_bytes(),
                &[7u8; 128],
            );
            i += 1;
        });
    });
    g.bench_function("get-hit", |b| {
        let mem = MemTable::new();
        for i in 0..10_000u64 {
            mem.add(
                i + 1,
                ValueType::Value,
                format!("key{i:08}").as_bytes(),
                &[7u8; 128],
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            let k = format!("key{:08}", (i * 7919) % 10_000);
            i += 1;
            std::hint::black_box(mem.get(k.as_bytes(), u64::MAX >> 8));
        });
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    use lsmkv::wal::LogWriter;
    use p2kvs_storage::{Env, MemEnv};
    let mut g = c.benchmark_group("wal");
    for size in [128usize, 1024, 16384] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("append-{size}B"), |b| {
            let env = MemEnv::new();
            let mut w = LogWriter::new(env.new_writable(std::path::Path::new("b.log")).unwrap());
            let payload = vec![7u8; size];
            b.iter(|| w.add_record(&payload).unwrap());
        });
    }
    g.finish();
}

fn bench_sst(c: &mut Criterion) {
    use lsmkv::sst::{TableBuilder, TableConfig, TableReader};
    use lsmkv::types::{make_internal_key, ValueType};
    use p2kvs_storage::{Env, MemEnv};
    let mut g = c.benchmark_group("sst");
    let env = MemEnv::new();
    let path = std::path::Path::new("bench.sst");
    let config = TableConfig {
        block_size: 4096,
        restart_interval: 16,
        bloom_bits_per_key: 10,
    };
    let mut builder = TableBuilder::new(env.new_writable(path).unwrap(), config);
    for i in 0..50_000u64 {
        let ik = make_internal_key(format!("key{i:010}").as_bytes(), 1, ValueType::Value);
        builder.add(&ik, &[9u8; 128]).unwrap();
    }
    let summary = builder.finish().unwrap();
    let reader = Arc::new(
        TableReader::open(
            env.new_random_access(path).unwrap(),
            summary.file_size,
            1,
            None,
        )
        .unwrap(),
    );
    g.throughput(Throughput::Elements(1));
    g.bench_function("get-present", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let ik = make_internal_key(
                format!("key{:010}", (i * 104_729) % 50_000).as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            );
            i += 1;
            std::hint::black_box(reader.get(&ik, false).unwrap());
        });
    });
    g.bench_function("bloom-reject-absent", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let k = format!("absent{i:010}");
            i += 1;
            std::hint::black_box(reader.may_contain(k.as_bytes()));
        });
    });
    g.finish();
}

fn bench_hash_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("util");
    let data = vec![0xa5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("crc32c-4k", |b| {
        b.iter(|| std::hint::black_box(p2kvs_util::crc32c::crc32c(&data)))
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("fnv1a-20B-key", |b| {
        b.iter(|| std::hint::black_box(p2kvs_util::hash::fnv1a64(b"user0000000000001234")))
    });
    g.finish();
}

fn bench_zipfian(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut g = c.benchmark_group("ycsb");
    g.throughput(Throughput::Elements(1));
    g.bench_function("scrambled-zipfian", |b| {
        let gen = ycsb::generator::ScrambledZipfian::new(1_000_000);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(gen.next(&mut rng)));
    });
    g.finish();
}

fn bench_obm_queue(c: &mut Criterion) {
    use p2kvs::queue::RequestQueue;
    use p2kvs::types::{Op, Request};
    let mut g = c.benchmark_group("obm");
    g.bench_function("enqueue+batch-32", |b| {
        let q = RequestQueue::new();
        b.iter_batched(
            || {
                (0..32)
                    .map(|i: u32| {
                        Request::sync(Op::Put {
                            key: i.to_le_bytes().to_vec(),
                            value: vec![0u8; 128],
                        })
                        .0
                    })
                    .collect::<Vec<_>>()
            },
            |reqs| {
                for r in reqs {
                    q.push(r).ok().unwrap();
                }
                let batch = q.pop_batch(32).unwrap();
                std::hint::black_box(batch.len());
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_accessing(c: &mut Criterion) {
    use p2kvs::queue::{MutexQueue, RequestQueue};
    use p2kvs::types::{Op, Request, Response};
    use p2kvs_bench::accessing::{fan_in, QueueImpl};
    use std::thread;

    // Single-thread enqueue → completion round trip against a dedicated
    // echo worker: the floor the accessing layer adds to every sync op.
    let mut g = c.benchmark_group("accessing");
    g.throughput(Throughput::Elements(1));

    g.bench_function("round-trip/ring", |b| {
        let q = Arc::new(RequestQueue::new());
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut batch = Vec::with_capacity(32);
                while q.pop_batch_into(32, &mut batch) {
                    for req in batch.drain(..) {
                        req.finish(Ok(Response::Done));
                    }
                }
            })
        };
        b.iter(|| {
            let (req, waiter) = Request::sync(Op::Get { key: b"k".to_vec() });
            q.push(req).ok().unwrap();
            std::hint::black_box(waiter.wait().unwrap());
        });
        q.close();
        consumer.join().unwrap();
    });

    g.bench_function("round-trip/mutex", |b| {
        let q = Arc::new(MutexQueue::new());
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut batch = Vec::with_capacity(32);
                while q.pop_batch_into(32, &mut batch) {
                    for req in batch.drain(..) {
                        req.finish(Ok(Response::Done));
                    }
                }
            })
        };
        b.iter(|| {
            let (req, waiter) = Request::sync(Op::Get { key: b"k".to_vec() });
            q.push(req).ok().unwrap();
            std::hint::black_box(waiter.wait().unwrap());
        });
        q.close();
        consumer.join().unwrap();
    });

    // Fan-in: N synchronous user threads sharing one worker queue — the
    // contended shape the lock-free ring exists for. One criterion
    // "element" is one completed round trip across all threads.
    const OPS_PER_THREAD: usize = 1_000;
    for threads in [1usize, 2, 4, 8, 16] {
        for imp in [QueueImpl::Mutex, QueueImpl::Ring] {
            g.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
            g.bench_function(format!("fan-in/{}x{threads}", imp.label()), |b| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let r = fan_in(imp, threads, OPS_PER_THREAD, 32);
                        total += std::time::Duration::from_secs_f64(r.elapsed_secs);
                    }
                    total
                });
            });
        }
    }

    // Pipelined fan-in: each user thread keeps a window of async requests
    // outstanding, so the handoff itself (not the per-op context switch)
    // is the measured cost.
    for imp in [QueueImpl::Mutex, QueueImpl::Ring] {
        g.throughput(Throughput::Elements((8 * OPS_PER_THREAD) as u64));
        g.bench_function(format!("pipelined/{}x8", imp.label()), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    let r = p2kvs_bench::accessing::pipelined(imp, 8, OPS_PER_THREAD, 32, 64);
                    total += std::time::Duration::from_secs_f64(r.elapsed_secs);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_skiplist, bench_wal, bench_sst, bench_hash_crc, bench_zipfian, bench_obm_queue, bench_accessing
);
criterion_main!(benches);
