//! Log-bucketed latency histogram.
//!
//! An HdrHistogram-style structure: values are bucketed by
//! (exponent, sub-bucket) so that relative error is bounded (~1.5% with 64
//! sub-buckets) across the full `u64` range while the footprint stays a few
//! KiB. Every latency number reported in EXPERIMENTS.md (average, p50, p99,
//! p99.9, max — cf. Fig 13) comes from this type.

/// Sub-buckets per power of two; 64 gives <1.6% relative error.
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Number of power-of-two ranges needed to cover `u64`.
const RANGES: usize = 64 - SUB_BUCKET_BITS as usize + 1;

/// A fixed-size, mergeable latency histogram.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; RANGES * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let range = (msb - SUB_BUCKET_BITS + 1) as usize;
        let sub = (value >> (msb - SUB_BUCKET_BITS)) as usize & (SUB_BUCKETS - 1);
        // Range 0 covers [0, SUB_BUCKETS); each later range covers one
        // power-of-two span split into SUB_BUCKETS/2 used slots, but the
        // simple (range, sub) layout keeps indexing branch-free.
        range * SUB_BUCKETS + sub
    }

    /// Representative (upper-bound) value of bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        let range = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if range == 0 {
            return sub;
        }
        let shift = range as u32 - 1;
        ((SUB_BUCKETS as u64 + sub) << shift).saturating_add((1u64 << shift) - 1)
    }

    /// Records one observation of `value` (e.g. nanoseconds).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded observations (sums are tracked outside
    /// the buckets, so this carries no quantization error).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), or 0 when empty.
    ///
    /// The returned value is the upper bound of the bucket containing the
    /// requested rank, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).min(self.max);
            }
        }
        self.max
    }

    /// Convenience wrapper: percentile in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile(p / 100.0)
    }

    /// One-line summary (`count/mean/p50/p99/p999/max`), values treated as
    /// nanoseconds and printed in microseconds.
    pub fn summary_us(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p99={:.1}us p999={:.1}us max={:.1}us",
            self.total,
            self.mean() / 1e3,
            self.percentile(50.0) as f64 / 1e3,
            self.percentile(99.0) as f64 / 1e3,
            self.percentile(99.9) as f64 / 1e3,
            self.max as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        // Rank ceil(0.5 × 64) = 32 → the 32nd smallest value, which is 31.
        assert_eq!(h.quantile(0.5), SUB_BUCKETS as u64 / 2 - 1);
    }

    #[test]
    fn bounded_relative_error() {
        let mut h = Histogram::new();
        let values = [100u64, 1_000, 10_000, 123_456, 9_999_999, 1 << 40];
        for &v in &values {
            let mut one = Histogram::new();
            one.record(v);
            let q = one.quantile(0.5);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.02, "value {v} quantized to {q} (err {err})");
        }
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i);
        }
        let mut prev = 0;
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let q = h.percentile(p);
            assert!(q >= prev, "p{p} = {q} < previous {prev}");
            prev = q;
        }
        // p50 of 1..=100k should be close to 50k.
        let p50 = h.percentile(50.0) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.03, "p50={p50}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for i in 0..10_000u64 {
            let v = (i * 2654435761) % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.min(), both.min());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn sum_is_exact() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(1_000_003);
        assert_eq!(h.sum(), 1_000_006);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.sum(), 1_000_006 + u128::from(u64::MAX));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        for v in [5u64, 500, 50_000] {
            a.record(v);
        }
        let before = (a.count(), a.sum(), a.min(), a.max(), a.percentile(50.0));
        a.merge(&Histogram::new());
        assert_eq!(
            (a.count(), a.sum(), a.min(), a.max(), a.percentile(50.0)),
            before
        );
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.min(), a.min());
        assert_eq!(empty.max(), a.max());
    }

    #[test]
    fn tail_percentiles_are_ordered() {
        // p50 ≤ p99 ≤ p99.9 ≤ max on a heavy-tailed distribution.
        let mut h = Histogram::new();
        let mut x = 88172645463325252u64;
        for _ in 0..50_000 {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mostly small values with a 1/1000 huge tail.
            let v = if x % 1000 == 0 { x % 1_000_000_000 } else { x % 10_000 };
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p99, "p50={p50} p99={p99}");
        assert!(p99 <= p999, "p99={p99} p999={p999}");
        assert!(p999 <= h.max(), "p999={p999} max={}", h.max());
        assert!(p999 > p50, "the tail must be visible in p99.9");
    }

    #[test]
    fn relative_error_bounded_at_bucket_boundaries() {
        // Power-of-two boundaries are where log-bucketing error peaks:
        // check v-1, v, v+1 around each boundary stay within the bound
        // promised by 64 sub-buckets (1/64 ≈ 1.6%).
        for shift in [7u32, 10, 16, 24, 32, 47] {
            let boundary = 1u64 << shift;
            for v in [boundary - 1, boundary, boundary + 1] {
                let mut h = Histogram::new();
                h.record(v);
                // A far larger second value keeps the max clamp away from
                // v's bucket, so the p50 we read is the raw bucket bound.
                h.record(v * 8);
                let q = h.quantile(0.5);
                let err = (q as f64 - v as f64).abs() / v as f64;
                assert!(
                    err <= 1.0 / 64.0 + 1e-9,
                    "value {v} (2^{shift} boundary) quantized to {q}, err {err}"
                );
                assert!(q >= v, "bucket upper bound must not under-report: {q} < {v}");
            }
        }
    }

    #[test]
    fn max_value_does_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        let _ = h.quantile(1.0);
    }
}
