//! Integer coding shared by the on-disk formats.
//!
//! All persistent formats in this workspace (WAL records, SST blocks,
//! manifests, slab headers) use little-endian fixed-width integers and
//! LEB128-style varints, mirroring the LevelDB/RocksDB wire formats.

/// Appends a little-endian `u32` to `dst`.
#[inline]
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `dst`.
#[inline]
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` from the first 4 bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than 4 bytes.
#[inline]
pub fn get_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("short fixed32"))
}

/// Reads a little-endian `u64` from the first 8 bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than 8 bytes.
#[inline]
pub fn get_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("short fixed64"))
}

/// Appends `v` as a varint (LEB128) to `dst`.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, u64::from(v));
}

/// Appends `v` as a varint (LEB128) to `dst`.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a varint from the front of `src`, returning the value and the
/// number of bytes consumed, or `None` if `src` is truncated or the varint
/// overflows 64 bits.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        result |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None
}

/// Decodes a 32-bit varint from the front of `src`.
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    u32::try_from(v).ok().map(|v| (v, n))
}

/// Appends a length-prefixed (varint) byte slice to `dst`.
pub fn put_length_prefixed(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint32(dst, slice.len() as u32);
    dst.extend_from_slice(slice);
}

/// Decodes a length-prefixed slice from the front of `src`, returning the
/// slice and the total bytes consumed.
pub fn get_length_prefixed(src: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let end = n.checked_add(len as usize)?;
    if end > src.len() {
        return None;
    }
    Some((&src[n..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(get_fixed32(&buf), 0xdead_beef);
        assert_eq!(get_fixed64(&buf[4..]), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, used) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        assert!(get_varint64(&buf[..buf.len() - 1]).is_none());
        assert!(get_varint64(&[]).is_none());
    }

    #[test]
    fn varint_overlong_is_none() {
        // 11 continuation bytes overflow a u64.
        let buf = [0xffu8; 11];
        assert!(get_varint64(&buf).is_none());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"key");
        put_length_prefixed(&mut buf, b"");
        put_length_prefixed(&mut buf, b"value-bytes");
        let (a, n1) = get_length_prefixed(&buf).unwrap();
        let (b, n2) = get_length_prefixed(&buf[n1..]).unwrap();
        let (c, n3) = get_length_prefixed(&buf[n1 + n2..]).unwrap();
        assert_eq!((a, b, c), (&b"key"[..], &b""[..], &b"value-bytes"[..]));
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn length_prefixed_truncated_is_none() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"0123456789");
        assert!(get_length_prefixed(&buf[..5]).is_none());
    }

    #[test]
    fn varint32_rejects_64bit_values() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }
}
