//! Byte-capacity LRU cache of owned byte strings.
//!
//! Used as the item/page cache of the non-LSM engines (KVell slabs,
//! WiredTiger pages). Recency is tracked with a generation queue and lazy
//! eviction; the structure is not internally synchronized — wrap it in a
//! mutex or give each worker its own.

use std::collections::{HashMap, VecDeque};

/// An LRU keyed by byte strings, bounded by total (key + value) bytes.
pub struct ByteLru {
    map: HashMap<Vec<u8>, (Vec<u8>, u64)>,
    queue: VecDeque<(Vec<u8>, u64)>,
    usage: usize,
    capacity: usize,
    gen: u64,
}

impl ByteLru {
    /// Creates a cache holding at most `capacity` bytes (0 disables it).
    pub fn new(capacity: usize) -> ByteLru {
        ByteLru {
            map: HashMap::new(),
            queue: VecDeque::new(),
            usage: 0,
            capacity,
            gen: 0,
        }
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.gen += 1;
        let gen = self.gen;
        let (value, g) = self.map.get_mut(key)?;
        *g = gen;
        let v = value.clone();
        self.queue.push_back((key.to_vec(), gen));
        self.compact();
        Some(v)
    }

    /// Inserts `key -> value`, evicting least-recently-used entries as
    /// needed.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        self.gen += 1;
        let gen = self.gen;
        if let Some((old, _)) = self.map.insert(key.to_vec(), (value.to_vec(), gen)) {
            self.usage -= key.len() + old.len();
        }
        self.usage += key.len() + value.len();
        self.queue.push_back((key.to_vec(), gen));
        while self.usage > self.capacity {
            let Some((k, g)) = self.queue.pop_front() else {
                break;
            };
            let stale = self.map.get(&k).map(|(_, cur)| *cur != g).unwrap_or(true);
            if stale {
                continue;
            }
            if let Some((v, _)) = self.map.remove(&k) {
                self.usage -= k.len() + v.len();
            }
        }
    }

    /// Removes `key` if present.
    pub fn remove(&mut self, key: &[u8]) {
        if let Some((v, _)) = self.map.remove(key) {
            self.usage -= key.len() + v.len();
        }
    }

    /// Current resident bytes.
    pub fn usage(&self) -> usize {
        self.usage
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bounds queue growth from repeated touches.
    fn compact(&mut self) {
        if self.queue.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.queue
                .retain(|(k, g)| map.get(k).map(|(_, cur)| cur == g).unwrap_or(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_usage() {
        let mut c = ByteLru::new(1024);
        assert!(c.get(b"a").is_none());
        c.insert(b"a", b"1111");
        assert_eq!(c.get(b"a").unwrap(), b"1111");
        assert_eq!(c.usage(), 5);
        c.remove(b"a");
        assert!(c.get(b"a").is_none());
        assert_eq!(c.usage(), 0);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut c = ByteLru::new(100);
        for i in 0..50u32 {
            c.insert(format!("key{i:02}").as_bytes(), &[0u8; 10]);
        }
        assert!(c.usage() <= 100);
        assert!(c.len() <= 7);
    }

    #[test]
    fn recently_used_survive() {
        let mut c = ByteLru::new(60);
        c.insert(b"hot", &[1u8; 10]);
        for i in 0..100u32 {
            let _ = c.get(b"hot");
            c.insert(format!("x{i:03}").as_bytes(), &[0u8; 10]);
        }
        assert!(c.get(b"hot").is_some(), "hot entry evicted");
    }

    #[test]
    fn reinsert_updates_value_and_usage() {
        let mut c = ByteLru::new(1024);
        c.insert(b"k", &[0u8; 100]);
        c.insert(b"k", &[1u8; 10]);
        assert_eq!(c.get(b"k").unwrap(), vec![1u8; 10]);
        assert_eq!(c.usage(), 11);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ByteLru::new(0);
        c.insert(b"k", b"v");
        assert!(c.get(b"k").is_none());
        assert!(c.is_empty());
    }
}
