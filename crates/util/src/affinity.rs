//! Thread-to-core pinning.
//!
//! p2KVS pins each worker thread to a dedicated CPU core so that workers do
//! not migrate under OS scheduling (the paper measures a 10–15% win from
//! pinning alone, Fig 5a). On Linux this uses `sched_setaffinity`; on other
//! platforms pinning is a no-op and [`pin_to_core`] reports failure.

/// Number of logical CPUs available to this process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pins the calling thread to logical CPU `core`.
///
/// Returns `true` on success. Out-of-range cores are wrapped modulo the
/// available CPU count so callers can pin "worker i" without first sizing
/// the machine.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    let core = core % num_cpus();
    // SAFETY: `cpu_set_t` is plain-old-data; zeroing it is its documented
    // empty state, and `CPU_SET`/`sched_setaffinity` only read/write within
    // the set we pass. Thread id 0 means "the calling thread".
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Pinning is unsupported on this platform; always returns `false`.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

/// Returns the CPU the calling thread is currently running on, if known.
#[cfg(target_os = "linux")]
pub fn current_core() -> Option<usize> {
    // SAFETY: `sched_getcpu` has no preconditions; it returns -1 on error.
    let cpu = unsafe { libc::sched_getcpu() };
    usize::try_from(cpu).ok()
}

/// Unsupported on this platform.
#[cfg(not(target_os = "linux"))]
pub fn current_core() -> Option<usize> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_cpus_is_positive() {
        assert!(num_cpus() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_lands_on_requested_core() {
        let ok = std::thread::spawn(|| {
            if !pin_to_core(0) {
                // Restricted environments (cpuset cgroups) may refuse; that
                // is not a correctness failure of the wrapper.
                return true;
            }
            current_core() == Some(0)
        })
        .join()
        .unwrap();
        assert!(ok);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_wraps_out_of_range_cores() {
        std::thread::spawn(|| {
            // Must not panic or fail outright for absurd indices.
            let _ = pin_to_core(usize::MAX - 1);
        })
        .join()
        .unwrap();
    }
}
