//! Request-rate control and measurement.
//!
//! [`RateLimiter`] is a token bucket used by the latency-vs-intensity
//! experiment (Fig 13) to drive clients at a fixed offered load.
//! [`Meter`] accumulates an event count over a window and reports
//! events-per-second, used for the bandwidth/QPS timelines (Figs 4, 5b).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::timing::precise_sleep;

/// A token-bucket rate limiter shared by any number of threads.
pub struct RateLimiter {
    /// Tokens issued per second; 0 disables limiting.
    per_second: u64,
    /// Nanoseconds between tokens.
    interval_ns: u64,
    /// Virtual time (ns since `start`) at which the next token is available.
    next_ns: AtomicU64,
    start: Instant,
}

impl RateLimiter {
    /// Creates a limiter that admits `per_second` operations per second
    /// across all callers. `0` means unlimited.
    pub fn new(per_second: u64) -> Self {
        RateLimiter {
            per_second,
            interval_ns: if per_second == 0 {
                0
            } else {
                1_000_000_000 / per_second.max(1)
            },
            next_ns: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Blocks until one token is available, then consumes it.
    pub fn acquire(&self) {
        if self.per_second == 0 {
            return;
        }
        let slot = self.next_ns.fetch_add(self.interval_ns, Ordering::Relaxed);
        let now = self.start.elapsed().as_nanos() as u64;
        if slot > now {
            precise_sleep(Duration::from_nanos(slot - now));
        }
    }

    /// The configured rate (ops/s); 0 means unlimited.
    pub fn rate(&self) -> u64 {
        self.per_second
    }
}

/// A windowed event meter: count events, then read events/second.
#[derive(Default)]
pub struct Meter {
    events: AtomicU64,
}

impl Meter {
    /// Creates a meter with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }

    /// Current cumulative count.
    pub fn count(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Resets the count to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.events.swap(0, Ordering::Relaxed)
    }

    /// Converts a taken count into a rate over `window`.
    pub fn rate_over(count: u64, window: Duration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            count as f64 / window.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_limiter_never_blocks() {
        let rl = RateLimiter::new(0);
        let start = Instant::now();
        for _ in 0..100_000 {
            rl.acquire();
        }
        assert!(start.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn limiter_enforces_rate() {
        // 10k ops/s for 500 tokens should take ~50ms.
        let rl = RateLimiter::new(10_000);
        let start = Instant::now();
        for _ in 0..500 {
            rl.acquire();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(45),
            "too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(500),
            "too slow: {elapsed:?}"
        );
    }

    #[test]
    fn limiter_is_fair_across_threads() {
        let rl = std::sync::Arc::new(RateLimiter::new(20_000));
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rl = rl.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        rl.acquire();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 1000 tokens at 20k/s ≈ 50ms total regardless of thread count.
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(40), "{elapsed:?}");
    }

    #[test]
    fn meter_take_resets() {
        let m = Meter::new();
        m.add(5);
        m.add(7);
        assert_eq!(m.count(), 12);
        assert_eq!(m.take(), 12);
        assert_eq!(m.count(), 0);
        assert_eq!(Meter::rate_over(100, Duration::from_millis(500)), 200.0);
    }
}
