//! Epoch-based memory reclamation for lock-free readers (FASTER-style).
//!
//! The hot-record read cache publishes records through atomic pointer
//! words that readers dereference without taking any lock. Removal
//! (invalidation, eviction, migration flush) unlinks the word with a CAS
//! — but the memory behind it cannot be freed while some reader, pinned
//! before the unlink, may still be dereferencing it. This module provides
//! the deferred-free half of that protocol:
//!
//! * [`pin`] — a reader enters an epoch before touching any shared
//!   pointer and holds the returned [`Guard`] for the duration of the
//!   access. Pinning is lock-free and, after a thread's first pin
//!   (which registers a reclaimed or freshly leaked participant slot),
//!   allocation-free: one TLS read, one atomic store, one atomic load.
//! * [`retire`] — the unlinking thread hands the unlinked box here
//!   *after* its CAS. The box is stamped with the current global epoch
//!   and parked in a limbo list; its destructor runs only once every
//!   participant that was pinned at (or before) that epoch has unpinned.
//!
//! # Safety argument
//!
//! The global epoch is a monotone counter. `pin` loops `store slot ←
//! epoch; re-read epoch` (all `SeqCst`) until the epoch is stable across
//! the store, so a pinned slot always holds an epoch the thread
//! *observed while its pin was already visible*. `retire` reads the
//! epoch **after** the caller's unlink. Collection first advances the
//! epoch, then frees exactly the limbo items whose stamp is below the
//! minimum epoch held by any active slot. For a freed item stamped `e`,
//! every active reader was therefore pinned at an epoch `> e` — i.e.
//! after the global epoch had advanced past `e`, which happens after the
//! retire, which happens after the unlink. Such a reader can only have
//! loaded the pointer word *after* the unlink CAS removed it, so it
//! never saw the freed record. Readers that did see it were pinned with
//! an epoch `≤ e` and block collection until they unpin.
//!
//! The domain is global and dependency-free: participant slots are
//! leaked once per peak-concurrent-thread and recycled through a
//! `claimed` flag, so thread churn does not grow the registry forever.

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// Collect (advance the epoch and sweep the limbo list) once this many
/// retired items are parked. Bounds limbo memory without putting the
/// sweep on every retire.
const COLLECT_THRESHOLD: usize = 64;

/// One participant: the epoch its owner thread is pinned at (0 = not
/// pinned) and whether a live thread owns it. Slots are leaked and
/// recycled, never freed.
struct Slot {
    active: AtomicU64,
    claimed: AtomicBool,
    next: *const Slot,
}

// `next` is written once before publication and read-only afterwards.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// Head of the global participant list.
static SLOTS: AtomicPtr<Slot> = AtomicPtr::new(std::ptr::null_mut());

/// The global epoch. Starts at 1 so an `active` of 0 can mean
/// "unpinned".
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Retired items awaiting their epoch: `(stamp, boxed value)`.
static LIMBO: Mutex<Vec<(u64, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

/// Claims a recycled slot or leaks a new one.
fn acquire_slot() -> &'static Slot {
    let mut cur = SLOTS.load(Ordering::Acquire);
    while !cur.is_null() {
        let slot = unsafe { &*cur };
        if slot
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return slot;
        }
        cur = slot.next as *mut Slot;
    }
    // No free slot: publish a fresh one (leaked — slots are recycled
    // across threads for the life of the process).
    let mut head = SLOTS.load(Ordering::Acquire);
    let slot = Box::leak(Box::new(Slot {
        active: AtomicU64::new(0),
        claimed: AtomicBool::new(true),
        next: head,
    }));
    loop {
        match SLOTS.compare_exchange(head, slot, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return slot,
            Err(now) => {
                head = now;
                slot.next = head;
            }
        }
    }
}

/// Per-thread registration: the claimed slot plus the nesting depth of
/// live guards (re-entrant pins are counted, not re-stamped).
struct Registration {
    slot: &'static Slot,
    depth: Cell<usize>,
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.slot.active.store(0, Ordering::SeqCst);
        self.slot.claimed.store(false, Ordering::Release);
    }
}

std::thread_local! {
    static REG: Registration = Registration {
        slot: acquire_slot(),
        depth: Cell::new(0),
    };
}

/// An active pin. Readers hold this across every dereference of an
/// epoch-protected pointer; dropping it exits the epoch.
pub struct Guard {
    slot: &'static Slot,
    /// Guards are thread-bound (the pin lives in this thread's slot).
    _not_send: PhantomData<*mut ()>,
}

/// Enters the current epoch. Lock-free; allocation-free after the
/// calling thread's first pin.
pub fn pin() -> Guard {
    REG.with(|r| {
        if r.depth.get() == 0 {
            let mut e = EPOCH.load(Ordering::SeqCst);
            loop {
                r.slot.active.store(e, Ordering::SeqCst);
                let now = EPOCH.load(Ordering::SeqCst);
                if now == e {
                    break;
                }
                e = now;
            }
        }
        r.depth.set(r.depth.get() + 1);
        Guard {
            slot: r.slot,
            _not_send: PhantomData,
        }
    })
}

impl Drop for Guard {
    fn drop(&mut self) {
        // `try_with`: a guard dropped during thread teardown (after the
        // registration's own destructor) must not re-create the TLS.
        let cleared = REG
            .try_with(|r| {
                let d = r.depth.get().saturating_sub(1);
                r.depth.set(d);
                d == 0
            })
            .unwrap_or(true);
        if cleared {
            self.slot.active.store(0, Ordering::SeqCst);
        }
    }
}

/// Defers dropping `value` until every reader pinned at or before the
/// current epoch has unpinned. Call **after** unlinking the value from
/// all shared pointers.
pub fn retire<T: Send + 'static>(value: Box<T>) {
    let stamp = EPOCH.load(Ordering::SeqCst);
    let mut limbo = LIMBO.lock().expect("epoch limbo poisoned");
    limbo.push((stamp, value as Box<dyn Any + Send>));
    if limbo.len() >= COLLECT_THRESHOLD {
        collect_locked(&mut limbo);
    }
}

/// Advances the epoch and frees every limbo item no active reader can
/// still see. Returns how many items were freed. Safe to call from any
/// thread at any time (e.g. on cache drop).
pub fn try_collect() -> usize {
    let mut limbo = LIMBO.lock().expect("epoch limbo poisoned");
    collect_locked(&mut limbo)
}

/// Items currently parked in limbo (tests and introspection).
pub fn pending() -> usize {
    LIMBO.lock().expect("epoch limbo poisoned").len()
}

fn collect_locked(limbo: &mut Vec<(u64, Box<dyn Any + Send>)>) -> usize {
    // Advance first: readers pinning from here on stamp an epoch above
    // every limbo item, so they cannot block this sweep.
    EPOCH.fetch_add(1, Ordering::SeqCst);
    let mut min_active = u64::MAX;
    let mut cur = SLOTS.load(Ordering::SeqCst);
    while !cur.is_null() {
        let slot = unsafe { &*cur };
        let e = slot.active.load(Ordering::SeqCst);
        if e != 0 {
            min_active = min_active.min(e);
        }
        cur = slot.next as *mut Slot;
    }
    let before = limbo.len();
    // An item stamped `e` is free once every active reader is pinned
    // strictly above `e` (see the module-level safety argument).
    limbo.retain(|(stamp, _)| *stamp >= min_active);
    before - limbo.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    struct DropFlag(Arc<AtomicUsize>);
    impl Drop for DropFlag {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_value_outlives_active_pin() {
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = pin();
        retire(Box::new(DropFlag(drops.clone())));
        // Collect as hard as we can: our own pin must hold the value.
        for _ in 0..8 {
            try_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under a live pin");
        drop(guard);
        // Unpinned: the next collection may free it.
        for _ in 0..8 {
            try_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "leaked after unpin");
    }

    #[test]
    fn nested_pins_count() {
        let a = pin();
        let b = pin();
        drop(a);
        let drops = Arc::new(AtomicUsize::new(0));
        retire(Box::new(DropFlag(drops.clone())));
        try_collect();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "inner pin ignored");
        drop(b);
        try_collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unpinned_threads_do_not_block_collection() {
        let drops = Arc::new(AtomicUsize::new(0));
        let d = drops.clone();
        std::thread::spawn(move || {
            let _g = pin();
            retire(Box::new(DropFlag(d)));
            // Guard drops here; thread exit releases the slot.
        })
        .join()
        .unwrap();
        for _ in 0..8 {
            try_collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_pin_retire_smoke() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n: usize = 4;
        let per: usize = 200;
        let mut handles = Vec::new();
        for _ in 0..n {
            let d = drops.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let g = pin();
                    if i % 3 == 0 {
                        retire(Box::new(DropFlag(d.clone())));
                    }
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..8 {
            try_collect();
        }
        let expected: usize = n * per.div_ceil(3);
        assert_eq!(drops.load(Ordering::SeqCst), expected);
    }
}
