//! CRC-32C (Castagnoli) checksums.
//!
//! Used to protect WAL records and SST blocks against torn writes and
//! corruption, exactly where RocksDB/LevelDB use it. The implementation is a
//! table-driven, slicing-by-4 software CRC — fast enough that checksum time
//! does not distort the write-path latency breakdown (Fig 6).

/// Castagnoli polynomial, reversed representation.
const POLY: u32 = 0x82f6_3b78;

/// 4 × 256-entry lookup tables for slicing-by-4.
static TABLES: [[u32; 256]; 4] = build_tables();

const fn build_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Computes the CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a running CRC-32C `crc` with `data`.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(4);
    for w in &mut chunks {
        crc ^= u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        crc = TABLES[3][(crc & 0xff) as usize]
            ^ TABLES[2][((crc >> 8) & 0xff) as usize]
            ^ TABLES[1][((crc >> 16) & 0xff) as usize]
            ^ TABLES[0][(crc >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// Delta applied by [`mask`]; identical to LevelDB's masked CRCs.
const MASK_DELTA: u32 = 0xa282_ead8;

/// Masks a CRC so that storing the CRC of data that itself contains CRCs
/// does not produce degenerate values (LevelDB convention).
#[inline]
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask`].
#[inline]
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / LevelDB test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_matches_whole() {
        let data = b"hello world, this is a wal record";
        let whole = crc32c(data);
        let split = extend(crc32c(&data[..10]), &data[10..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn mask_roundtrip() {
        for crc in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(unmask(mask(crc)), crc);
            assert_ne!(mask(crc), crc);
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"a small kv record payload".to_vec();
        let before = crc32c(&data);
        data[7] ^= 0x40;
        assert_ne!(before, crc32c(&data));
    }
}
