//! Non-cryptographic hash functions.
//!
//! Two hashes are provided:
//!
//! * [`fnv1a64`] — the classic FNV-1a used by the p2KVS accessing layer to
//!   partition the key space across workers (§4.2 of the paper uses
//!   `Hash(key) % N`); FNV gives a good spread even for the dense,
//!   zero-padded keys YCSB generates.
//! * [`mix64`] / [`bloom_hash`] — cheap avalanche mixes used to derive the
//!   probe sequence of the SST bloom filters (double hashing).

/// FNV-1a offset basis for 64-bit hashes.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime for 64-bit hashes.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Hashes `data` with 64-bit FNV-1a.
///
/// # Examples
///
/// ```
/// let h = p2kvs_util::hash::fnv1a64(b"user4832");
/// assert_ne!(h, p2kvs_util::hash::fnv1a64(b"user4833"));
/// ```
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Finalization mix from SplitMix64; turns a weak integer into a
/// well-distributed 64-bit value.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// 32-bit hash used for bloom-filter probes, compatible with the
/// LevelDB-style `BloomHash` (a Murmur-inspired block hash).
#[inline]
pub fn bloom_hash(data: &[u8]) -> u32 {
    hash32(data, 0xbc9f_1d34)
}

/// 32-bit seeded hash over `data` (LevelDB `Hash` algorithm).
pub fn hash32(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0xc6a4_a793;
    const R: u32 = 24;
    let n = data.len();
    let mut h = seed ^ (M.wrapping_mul(n as u32));
    let mut chunks = data.chunks_exact(4);
    for w in &mut chunks {
        let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        h = h.wrapping_add(v);
        h = h.wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    // Tail bytes are folded in high-to-low, matching the reference algorithm.
    if rest.len() >= 3 {
        h = h.wrapping_add(u32::from(rest[2]) << 16);
    }
    if rest.len() >= 2 {
        h = h.wrapping_add(u32::from(rest[1]) << 8);
    }
    if !rest.is_empty() {
        h = h.wrapping_add(u32::from(rest[0]));
        h = h.wrapping_mul(M);
        h ^= h >> R;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_neighbours() {
        let a = fnv1a64(b"key00000001");
        let b = fnv1a64(b"key00000002");
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_empty_is_offset_basis() {
        assert_eq!(fnv1a64(b""), FNV_OFFSET);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // A mix must not collapse close inputs.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn partitioning_is_balanced() {
        // The paper relies on Hash(key) % N spreading dense keys evenly.
        const N: usize = 8;
        let mut counts = [0usize; N];
        for i in 0..80_000u64 {
            let key = format!("user{i:016}");
            counts[(fnv1a64(key.as_bytes()) % N as u64) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Within 10% of each other.
        assert!(*max < min + min / 10, "imbalanced: {counts:?}");
    }

    #[test]
    fn hash32_tail_handling() {
        // Exercise 1-, 2-, 3-byte tails explicitly.
        let h0 = hash32(b"", 7);
        let h1 = hash32(b"a", 7);
        let h2 = hash32(b"ab", 7);
        let h3 = hash32(b"abc", 7);
        let h4 = hash32(b"abcd", 7);
        let all = [h0, h1, h2, h3, h4];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "collision between lengths {i} and {j}");
            }
        }
    }
}
