//! Precise sleeping and busy-time accounting.
//!
//! The simulated storage devices (crate `p2kvs-storage`) need to charge IO
//! service times in the microsecond range, far below the OS sleep
//! granularity. [`precise_sleep`] sleeps coarsely and spins for the
//! remainder. [`BusyClock`] lets worker threads separate "useful CPU time"
//! from "waiting on IO / queue" time, which is how the CPU-utilization
//! figures (Figs 4, 5c, 21) are produced without relying on `/proc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Threshold below which we yield-wait instead of asking the OS to sleep
/// (the OS timer floor is tens of microseconds).
const YIELD_THRESHOLD: Duration = Duration::from_micros(150);

/// Sleeps for at least `dur`.
///
/// Long waits use `std::thread::sleep`. Short waits yield the CPU in a
/// loop until the deadline — never a hot spin, which on small machines
/// (CI runners often expose a single core) would starve every other
/// thread, including the ones being waited for.
pub fn precise_sleep(dur: Duration) {
    if dur.is_zero() {
        return;
    }
    let deadline = Instant::now() + dur;
    if dur > YIELD_THRESHOLD {
        std::thread::sleep(dur);
        return;
    }
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// Accumulates busy nanoseconds across threads.
///
/// Workers wrap the "actually processing" parts of their loop in
/// [`BusyClock::time`]; the ratio of accumulated busy time to wall time is
/// the per-worker CPU utilization reported by the benchmark harness.
#[derive(Default)]
pub struct BusyClock {
    busy_ns: AtomicU64,
}

impl BusyClock {
    /// Creates a clock with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, adding its wall duration to the busy counter.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(start.elapsed());
        out
    }

    /// Adds an externally measured duration.
    pub fn add(&self, dur: Duration) {
        self.busy_ns
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn take(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.swap(0, Ordering::Relaxed))
    }
}

/// Total CPU time (user + system) consumed by this process so far.
///
/// Used by the benchmark harness to report real CPU consumption — on
/// small machines, per-thread wall-clock "busy" measures include scheduler
/// wait and overstate usage.
#[cfg(target_os = "linux")]
pub fn process_cpu_time() -> Duration {
    // SAFETY: `getrusage` writes into the zeroed struct we pass; RUSAGE_SELF
    // is always valid for the calling process.
    unsafe {
        let mut usage: libc::rusage = std::mem::zeroed();
        if libc::getrusage(libc::RUSAGE_SELF, &mut usage) != 0 {
            return Duration::ZERO;
        }
        let tv = |t: libc::timeval| {
            Duration::from_secs(t.tv_sec as u64) + Duration::from_micros(t.tv_usec as u64)
        };
        tv(usage.ru_utime) + tv(usage.ru_stime)
    }
}

/// Unsupported platform: always zero.
#[cfg(not(target_os = "linux"))]
pub fn process_cpu_time() -> Duration {
    Duration::ZERO
}

/// A monotone stopwatch that reports elapsed nanoseconds.
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn new() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the stopwatch was started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Duration since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleep_is_at_least_requested() {
        for us in [5u64, 50, 300, 1500] {
            let dur = Duration::from_micros(us);
            let start = Instant::now();
            precise_sleep(dur);
            let elapsed = start.elapsed();
            assert!(elapsed >= dur, "slept {elapsed:?} < requested {dur:?}");
            // Not absurdly long either (CI machines can stall; be generous).
            assert!(elapsed < dur + Duration::from_millis(60));
        }
    }

    #[test]
    fn precise_sleep_zero_returns_immediately() {
        let start = Instant::now();
        precise_sleep(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn busy_clock_accumulates() {
        let clock = BusyClock::new();
        clock.time(|| precise_sleep(Duration::from_micros(500)));
        clock.add(Duration::from_micros(250));
        let busy = clock.busy();
        assert!(busy >= Duration::from_micros(750));
        let taken = clock.take();
        assert_eq!(taken, busy);
        assert_eq!(clock.busy(), Duration::ZERO);
    }

    #[test]
    fn busy_clock_is_shareable_across_threads() {
        let clock = std::sync::Arc::new(BusyClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = clock.clone();
                std::thread::spawn(move || c.add(Duration::from_micros(100)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.busy(), Duration::from_micros(400));
    }
}
