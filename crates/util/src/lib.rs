//! Shared utilities for the p2KVS reproduction.
//!
//! This crate collects the small, dependency-free building blocks that every
//! other crate in the workspace needs:
//!
//! * [`hash`] — FNV-1a and a 64-bit mix hash used for key partitioning and
//!   bloom filters.
//! * [`crc32c`] — the Castagnoli CRC used to protect WAL records and SST
//!   blocks.
//! * [`coding`] — varint and fixed-width little-endian integer coding shared
//!   by the on-disk formats.
//! * [`histogram`] — a log-bucketed latency histogram (HdrHistogram-style)
//!   used by every benchmark harness.
//! * [`lru`] — a byte-capacity LRU used as the item/page cache of the
//!   non-LSM engines.
//! * [`timing`] — precise spin-sleep and busy-time accounting used by the
//!   simulated storage devices and the worker threads.
//! * [`affinity`] — thread-to-core pinning (`sched_setaffinity`), one of the
//!   paper's explicit design points (§4.1).
//! * [`rate`] — token-bucket rate limiting and windowed throughput meters
//!   used by the latency-vs-intensity experiment (Fig 13).
//! * [`epoch`] — FASTER-style epoch-based memory reclamation backing the
//!   lock-free hot-record read cache.

pub mod affinity;
pub mod coding;
pub mod crc32c;
pub mod epoch;
pub mod hash;
pub mod histogram;
pub mod lru;
pub mod rate;
pub mod timing;
