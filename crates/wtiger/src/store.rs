//! The store: shared B-tree index + journal + checkpoints + value cache.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

use parking_lot::{Mutex, RwLock};
use p2kvs_storage::{EnvRef, RandomAccessFile, WritableFile};
use p2kvs_util::coding::{get_fixed64, put_fixed64};
use p2kvs_util::lru::ByteLru;

use crate::journal::{decode_at, encode, TYPE_DELETE, TYPE_PUT};

/// Store configuration.
#[derive(Clone)]
pub struct WtOptions {
    /// Environment for journal and checkpoint files.
    pub env: EnvRef,
    /// Create the store if missing.
    pub create_if_missing: bool,
    /// fsync the journal on every write (WiredTiger `log=(enabled,sync)`).
    pub sync_writes: bool,
    /// Value-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Checkpoint after this many journal bytes.
    pub checkpoint_every: u64,
}

impl WtOptions {
    /// Defaults over the given env: async journal, 8 MiB cache,
    /// checkpoint every 16 MiB.
    pub fn new(env: EnvRef) -> WtOptions {
        WtOptions {
            env,
            create_if_missing: true,
            sync_writes: false,
            cache_bytes: 8 << 20,
            checkpoint_every: 16 << 20,
        }
    }
}

/// Location of a value inside the journal.
#[derive(Debug, Clone, Copy)]
struct ValRef {
    offset: u64,
    len: u32,
}

struct Journal {
    writer: Box<dyn WritableFile>,
    len: u64,
    last_checkpoint_len: u64,
}

/// A WiredTiger-style single-instance store.
pub struct WtDb {
    env: EnvRef,
    dir: PathBuf,
    opts: WtOptions,
    /// The shared index: the global latch writers contend on.
    tree: RwLock<BTreeMap<Vec<u8>, ValRef>>,
    /// The journal, serialized behind its own latch (the "WAL lock").
    journal: Mutex<Journal>,
    cache: Mutex<ByteLru>,
    reader: Mutex<Option<Box<dyn RandomAccessFile>>>,
}

const JOURNAL_FILE: &str = "journal.wal";
const CHECKPOINT_FILE: &str = "checkpoint";

impl WtDb {
    /// Opens (creating if allowed) the store under `dir`.
    pub fn open(opts: WtOptions, dir: impl Into<PathBuf>) -> io::Result<WtDb> {
        let dir = dir.into();
        let env = opts.env.clone();
        let journal_path = dir.join(JOURNAL_FILE);
        if !env.exists(&journal_path) && !opts.create_if_missing {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no store at {}", dir.display()),
            ));
        }
        env.create_dir_all(&dir)?;
        let mut tree = BTreeMap::new();
        let mut replay_from = 0u64;
        // Load the last checkpoint, if any.
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        if env.exists(&ckpt_path) {
            let data = p2kvs_storage::env::read_all(&*env, &ckpt_path)?;
            replay_from = Self::load_checkpoint(&data, &mut tree)?;
        }
        // Replay the journal tail.
        let mut journal_len = replay_from;
        if env.exists(&journal_path) {
            let data = p2kvs_storage::env::read_all(&*env, &journal_path)?;
            let mut off = replay_from as usize;
            while let Some((rec, used)) = decode_at(&data, off)? {
                match rec.kind {
                    TYPE_PUT => {
                        tree.insert(
                            rec.key,
                            ValRef {
                                offset: rec.value_offset,
                                len: rec.value.len() as u32,
                            },
                        );
                    }
                    TYPE_DELETE => {
                        tree.remove(&rec.key);
                    }
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown journal record type {}", rec.kind),
                        ))
                    }
                }
                off += used;
            }
            journal_len = off as u64;
        }
        let writer = env.new_appendable(&journal_path)?;
        // If the file had a torn tail, appended records start after it; the
        // decoder skips garbage by CRC. Track the real file length.
        let len = writer.len();
        Ok(WtDb {
            env,
            dir,
            cache: Mutex::new(ByteLru::new(opts.cache_bytes)),
            tree: RwLock::new(tree),
            journal: Mutex::new(Journal {
                writer,
                len,
                last_checkpoint_len: replay_from.min(journal_len),
            }),
            reader: Mutex::new(None),
            opts,
        })
    }

    /// Inserts or updates `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> io::Result<()> {
        let (frame, value_off) = encode(TYPE_PUT, key, value);
        let offset = self.append(&frame)?;
        let vref = ValRef {
            offset: offset + value_off,
            len: value.len() as u32,
        };
        self.tree.write().insert(key.to_vec(), vref);
        self.cache.lock().insert(key, value);
        self.maybe_checkpoint()?;
        Ok(())
    }

    /// Deletes `key`; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> io::Result<bool> {
        let (frame, _) = encode(TYPE_DELETE, key, b"");
        self.append(&frame)?;
        let existed = self.tree.write().remove(key).is_some();
        self.cache.lock().remove(key);
        Ok(existed)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let Some(vref) = self.tree.read().get(key).copied() else {
            return Ok(None);
        };
        if let Some(v) = self.cache.lock().get(key) {
            return Ok(Some(v));
        }
        let value = self.read_value(vref)?;
        self.cache.lock().insert(key, &value);
        Ok(Some(value))
    }

    /// Up to `count` entries with keys `>= start`, in order.
    pub fn scan(&self, start: &[u8], count: usize) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let refs: Vec<(Vec<u8>, ValRef)> = self
            .tree
            .read()
            .range(start.to_vec()..)
            .take(count)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut out = Vec::with_capacity(refs.len());
        for (k, vref) in refs {
            let cached = self.cache.lock().get(&k);
            let v = match cached {
                Some(v) => v,
                None => {
                    let v = self.read_value(vref)?;
                    self.cache.lock().insert(&k, &v);
                    v
                }
            };
            out.push((k, v));
        }
        Ok(out)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.tree.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.read().is_empty()
    }

    /// Approximate memory footprint (index + cache).
    pub fn mem_usage(&self) -> usize {
        let index: usize = self
            .tree
            .read()
            .keys()
            .map(|k| k.len() + std::mem::size_of::<ValRef>() + 48)
            .sum();
        index + self.cache.lock().usage()
    }

    /// Forces a checkpoint now.
    pub fn checkpoint(&self) -> io::Result<()> {
        self.write_checkpoint()
    }

    /// Forks a point-in-time snapshot: the index is cloned under its
    /// latch (cheap — keys and value *locations* only, no payload copy)
    /// after a journal sync, and values are read lazily from the
    /// append-only journal, whose bytes at already-written offsets are
    /// immutable. The snapshot owns its own reader, so it can be drained
    /// from another thread while writers keep appending.
    pub fn snapshot(&self) -> io::Result<WtSnapshot> {
        // Sync first so every offset the cloned index references is
        // readable through a fresh file handle.
        self.journal.lock().writer.sync()?;
        let entries: Vec<(Vec<u8>, ValRef)> = self
            .tree
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        Ok(WtSnapshot {
            env: self.env.clone(),
            path: self.dir.join(JOURNAL_FILE),
            entries,
            pos: 0,
            reader: None,
        })
    }

    fn append(&self, frame: &[u8]) -> io::Result<u64> {
        let mut j = self.journal.lock();
        let offset = j.len;
        j.writer.append(frame)?;
        if self.opts.sync_writes {
            j.writer.sync()?;
        } else {
            j.writer.flush()?;
        }
        j.len += frame.len() as u64;
        Ok(offset)
    }

    fn read_value(&self, vref: ValRef) -> io::Result<Vec<u8>> {
        let mut guard = self.reader.lock();
        if guard.is_none() {
            *guard = Some(self.env.new_random_access(&self.dir.join(JOURNAL_FILE))?);
        }
        let mut buf = vec![0u8; vref.len as usize];
        if vref.len > 0 {
            let reader = guard.as_ref().expect("reader just ensured");
            if let Err(e) = reader.read_at(vref.offset, &mut buf) {
                // The handle may predate appends on some platforms; retry
                // with a fresh one before giving up.
                *guard = Some(self.env.new_random_access(&self.dir.join(JOURNAL_FILE))?);
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    guard
                        .as_ref()
                        .expect("fresh reader")
                        .read_at(vref.offset, &mut buf)?;
                } else {
                    return Err(e);
                }
            }
        }
        Ok(buf)
    }

    fn maybe_checkpoint(&self) -> io::Result<()> {
        let due = {
            let j = self.journal.lock();
            j.len - j.last_checkpoint_len >= self.opts.checkpoint_every
        };
        if due {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Checkpoint format:
    /// `journal_len: u64 | count: u64 | (key_len: u64 | key | offset: u64 |
    /// value_len: u64)*`.
    fn write_checkpoint(&self) -> io::Result<()> {
        // Snapshot index and journal length under both latches so the
        // checkpoint is consistent with a journal prefix.
        let (snapshot, journal_len) = {
            let tree = self.tree.read();
            let mut j = self.journal.lock();
            j.writer.sync()?;
            let snap: Vec<(Vec<u8>, ValRef)> =
                tree.iter().map(|(k, v)| (k.clone(), *v)).collect();
            let len = j.len;
            j.last_checkpoint_len = len;
            (snap, len)
        };
        let mut out = Vec::new();
        put_fixed64(&mut out, journal_len);
        put_fixed64(&mut out, snapshot.len() as u64);
        for (k, v) in &snapshot {
            put_fixed64(&mut out, k.len() as u64);
            out.extend_from_slice(k);
            put_fixed64(&mut out, v.offset);
            put_fixed64(&mut out, u64::from(v.len));
        }
        let tmp = self.dir.join("checkpoint.tmp");
        p2kvs_storage::env::write_all(&*self.env, &tmp, &out)?;
        self.env.rename(&tmp, &self.dir.join(CHECKPOINT_FILE))?;
        Ok(())
    }

    /// Loads a checkpoint into `tree`, returning the journal offset to
    /// replay from.
    fn load_checkpoint(data: &[u8], tree: &mut BTreeMap<Vec<u8>, ValRef>) -> io::Result<u64> {
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "truncated checkpoint");
        if data.len() < 16 {
            return Err(bad());
        }
        let journal_len = get_fixed64(data);
        let count = get_fixed64(&data[8..]) as usize;
        let mut off = 16usize;
        for _ in 0..count {
            if off + 8 > data.len() {
                return Err(bad());
            }
            let klen = get_fixed64(&data[off..]) as usize;
            off += 8;
            if off + klen + 16 > data.len() {
                return Err(bad());
            }
            let key = data[off..off + klen].to_vec();
            off += klen;
            let offset = get_fixed64(&data[off..]);
            let len = get_fixed64(&data[off + 8..]) as u32;
            off += 16;
            tree.insert(key, ValRef { offset, len });
        }
        Ok(journal_len)
    }
}

/// A forked point-in-time view of a [`WtDb`]: a cloned key → value
/// location index plus a private journal reader. Draining streams values
/// straight from the journal in key order; writes to the live store made
/// after the fork are invisible because already-written journal bytes
/// never change (the journal is append-only and checkpoints do not
/// truncate it).
pub struct WtSnapshot {
    env: EnvRef,
    path: PathBuf,
    entries: Vec<(Vec<u8>, ValRef)>,
    pos: usize,
    reader: Option<Box<dyn RandomAccessFile>>,
}

impl WtSnapshot {
    /// Number of entries the snapshot holds in total.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Materializes the next slice: at most `limit` entries and roughly
    /// `max_bytes` of payload (always at least one entry when any
    /// remain). Returns the entries and whether the snapshot is
    /// exhausted.
    pub fn next_batch(
        &mut self,
        limit: usize,
        max_bytes: usize,
    ) -> io::Result<(Vec<(Vec<u8>, Vec<u8>)>, bool)> {
        if self.reader.is_none() && self.pos < self.entries.len() {
            self.reader = Some(self.env.new_random_access(&self.path)?);
        }
        let limit = limit.max(1);
        let mut out = Vec::new();
        let mut bytes = 0usize;
        while self.pos < self.entries.len() && out.len() < limit && bytes < max_bytes.max(1) {
            let (key, vref) = &self.entries[self.pos];
            let mut value = vec![0u8; vref.len as usize];
            if vref.len > 0 {
                self.reader
                    .as_ref()
                    .expect("reader ensured above")
                    .read_at(vref.offset, &mut value)?;
            }
            bytes = bytes.saturating_add(key.len() + value.len());
            out.push((key.clone(), value));
            self.pos += 1;
        }
        Ok((out, self.pos >= self.entries.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;
    use std::sync::Arc;

    fn db() -> WtDb {
        let env: EnvRef = Arc::new(MemEnv::new());
        WtDb::open(WtOptions::new(env), "wt").unwrap()
    }

    #[test]
    fn put_get_delete() {
        let db = db();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap(), b"v");
        assert!(db.delete(b"k").unwrap());
        assert_eq!(db.get(b"k").unwrap(), None);
        assert!(!db.delete(b"k").unwrap());
        assert!(db.is_empty());
    }

    #[test]
    fn overwrite_returns_latest() {
        let db = db();
        for i in 0..20 {
            db.put(b"k", format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(db.get(b"k").unwrap().unwrap(), b"v19");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn values_read_back_from_journal_when_uncached() {
        let env: EnvRef = Arc::new(MemEnv::new());
        let mut opts = WtOptions::new(env);
        opts.cache_bytes = 0; // Force journal reads.
        let db = WtDb::open(opts, "wt").unwrap();
        for i in 0..100 {
            db.put(format!("k{i:03}").as_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        for i in (0..100).step_by(9) {
            assert_eq!(
                db.get(format!("k{i:03}").as_bytes()).unwrap().unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn scan_is_ordered() {
        let db = db();
        for i in [9, 2, 7, 4] {
            db.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let got = db.scan(b"k3", 2).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"k4".to_vec(), b"k7".to_vec()]);
    }

    #[test]
    fn reopen_replays_journal() {
        let env: EnvRef = Arc::new(MemEnv::new());
        {
            let db = WtDb::open(WtOptions::new(env.clone()), "wt").unwrap();
            for i in 0..200 {
                db.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.delete(b"k100").unwrap();
        }
        let db = WtDb::open(WtOptions::new(env), "wt").unwrap();
        assert_eq!(db.len(), 199);
        assert_eq!(db.get(b"k42").unwrap().unwrap(), b"v42");
        assert_eq!(db.get(b"k100").unwrap(), None);
    }

    #[test]
    fn checkpoint_speeds_recovery_and_preserves_data() {
        let env: EnvRef = Arc::new(MemEnv::new());
        {
            let mut opts = WtOptions::new(env.clone());
            opts.checkpoint_every = 4 << 10; // Checkpoint often.
            let db = WtDb::open(opts, "wt").unwrap();
            for i in 0..500 {
                db.put(format!("k{i:04}").as_bytes(), &[7u8; 64]).unwrap();
            }
            db.checkpoint().unwrap();
            // Post-checkpoint writes replay from the journal tail.
            for i in 500..600 {
                db.put(format!("k{i:04}").as_bytes(), &[8u8; 64]).unwrap();
            }
        }
        assert!(env.exists(std::path::Path::new("wt/checkpoint")));
        let db = WtDb::open(WtOptions::new(env), "wt").unwrap();
        assert_eq!(db.len(), 600);
        assert_eq!(db.get(b"k0599").unwrap().unwrap(), vec![8u8; 64]);
        assert_eq!(db.get(b"k0000").unwrap().unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn synced_writes_survive_power_failure() {
        let mem = Arc::new(MemEnv::new());
        let env: EnvRef = mem.clone();
        {
            let mut opts = WtOptions::new(env.clone());
            opts.sync_writes = true;
            let db = WtDb::open(opts, "wt").unwrap();
            for i in 0..50 {
                db.put(format!("s{i}").as_bytes(), b"durable").unwrap();
            }
            std::mem::forget(db);
        }
        mem.fs().power_failure();
        let db = WtDb::open(WtOptions::new(env), "wt").unwrap();
        assert_eq!(db.len(), 50);
        assert_eq!(db.get(b"s49").unwrap().unwrap(), b"durable");
    }

    #[test]
    fn unsynced_tail_is_dropped_after_power_failure() {
        let mem = Arc::new(MemEnv::new());
        let env: EnvRef = mem.clone();
        {
            let mut opts = WtOptions::new(env.clone());
            opts.sync_writes = false;
            let db = WtDb::open(opts, "wt").unwrap();
            db.put(b"lost", b"maybe").unwrap();
            std::mem::forget(db);
        }
        mem.fs().power_failure();
        let db = WtDb::open(WtOptions::new(env), "wt").unwrap();
        // Unsynced journal bytes vanished: the key must be gone (and the
        // open must not fail on the truncated log).
        assert_eq!(db.get(b"lost").unwrap(), None);
    }

    #[test]
    fn concurrent_clients_serialize_correctly() {
        let db = Arc::new(db());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = format!("t{t}-{i}");
                        db.put(k.as_bytes(), k.as_bytes()).unwrap();
                        assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), k.as_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 1600);
    }

    #[test]
    fn snapshot_is_point_in_time_under_concurrent_writes() {
        let db = db();
        for i in 0..40 {
            db.put(format!("k{i:02}").as_bytes(), format!("old{i}").as_bytes())
                .unwrap();
        }
        let mut snap = db.snapshot().unwrap();
        assert_eq!(snap.len(), 40);
        // Mutate the live store after the fork: overwrites, deletes and
        // fresh keys must all be invisible to the snapshot.
        db.put(b"k05", b"NEW").unwrap();
        db.delete(b"k06").unwrap();
        db.put(b"zz", b"fresh").unwrap();
        let mut all = Vec::new();
        let mut batches = 0;
        loop {
            let (batch, done) = snap.next_batch(7, usize::MAX).unwrap();
            all.extend(batch);
            batches += 1;
            if done {
                break;
            }
        }
        assert!(batches >= 40 / 7);
        assert_eq!(all.len(), 40);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k, format!("k{i:02}").as_bytes());
            assert_eq!(v, format!("old{i}").as_bytes());
        }
    }

    #[test]
    fn snapshot_byte_budget_keeps_progress() {
        let db = db();
        for i in 0..5 {
            db.put(format!("k{i}").as_bytes(), &[b'x'; 100]).unwrap();
        }
        let mut snap = db.snapshot().unwrap();
        let mut total = 0;
        loop {
            let (batch, done) = snap.next_batch(100, 10).unwrap();
            assert!(done || batch.len() == 1, "budget below one entry");
            total += batch.len();
            if done {
                break;
            }
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn mem_usage_reflects_index_size() {
        let db = db();
        let before = db.mem_usage();
        for i in 0..1000 {
            db.put(format!("key-number-{i:06}").as_bytes(), b"v").unwrap();
        }
        assert!(db.mem_usage() > before + 1000 * 16);
    }
}
