//! `wtiger`: a B-tree keyed store with WAL and checkpoints (WiredTiger
//! stand-in).
//!
//! The p2KVS paper uses WiredTiger (§4.6, Fig 23) as its non-LSM
//! portability target. What matters for that experiment is WiredTiger's
//! *architecture*, which this crate reproduces:
//!
//! * a **shared B-tree index** protected by a global latch — writers
//!   serialize on it, so a single instance scales poorly with threads;
//! * a **write-ahead journal**: every update is appended (and optionally
//!   fsynced) to a log before it is acknowledged, behind a global log
//!   latch;
//! * **checkpoints**: the index is periodically dumped so recovery only
//!   replays the journal tail;
//! * a bounded **page/value cache** — values are read back from disk when
//!   not cached;
//! * **no batch-write API** — the p2KVS OBM therefore cannot merge writes
//!   on this engine (it still batches reads by issuing them back to back).
//!
//! Storage layout: one append-only `journal.wal` file doubles as the value
//! log (records are `len | crc | type | key | value`), an in-memory
//! `BTreeMap` maps keys to value locations in that file, and `checkpoint`
//! persists the map. This value-log arrangement is a simplification of
//! WiredTiger's on-disk B-tree pages; DESIGN.md records the substitution —
//! the lock structure, journal write path and cache behaviour (the things
//! Fig 23 measures) are preserved.

pub mod journal;
pub mod store;

pub use store::{WtDb, WtOptions, WtSnapshot};
