//! The journal: an append-only record log that doubles as the value store.
//!
//! Record framing:
//!
//! ```text
//! total_len: u32 | crc32c: u32 | type: u8 (1 = put, 2 = delete)
//! key_len: u32 | key | value
//! ```
//!
//! `total_len` covers everything after the two length/crc words. The crc
//! covers the same span, so a torn tail after a crash is detected and
//! replay stops there, exactly like a conventional WAL.

use std::io;

use p2kvs_util::crc32c::crc32c;

/// Record type tags.
pub const TYPE_PUT: u8 = 1;
pub const TYPE_DELETE: u8 = 2;

/// Frame header bytes (`total_len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// A decoded journal record.
#[derive(Debug, PartialEq, Eq)]
pub struct Record {
    /// `TYPE_PUT` or `TYPE_DELETE`.
    pub kind: u8,
    pub key: Vec<u8>,
    pub value: Vec<u8>,
    /// Byte offset of the *value* within the journal file (valid for puts;
    /// this is what the index stores).
    pub value_offset: u64,
}

/// Encodes a record, returning the bytes and the offset of the value
/// relative to the start of the frame.
pub fn encode(kind: u8, key: &[u8], value: &[u8]) -> (Vec<u8>, u64) {
    let body_len = 1 + 4 + key.len() + value.len();
    let mut out = Vec::with_capacity(FRAME_HEADER + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc patched below
    out.push(kind);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = crc32c(&out[FRAME_HEADER..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    let value_off = (FRAME_HEADER + 1 + 4 + key.len()) as u64;
    (out, value_off)
}

/// Decodes the record framed at `offset` inside `data`.
///
/// Returns `Ok(None)` on a clean or torn end, `Err` on framing garbage in
/// the middle of the log (caller decides whether that is fatal).
pub fn decode_at(data: &[u8], offset: usize) -> io::Result<Option<(Record, usize)>> {
    if offset >= data.len() {
        return Ok(None);
    }
    if data.len() - offset < FRAME_HEADER {
        return Ok(None); // Torn header.
    }
    let body_len =
        u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let stored_crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
    let body_start = offset + FRAME_HEADER;
    if body_start + body_len > data.len() {
        return Ok(None); // Torn body.
    }
    let body = &data[body_start..body_start + body_len];
    if crc32c(body) != stored_crc {
        return Ok(None); // Torn/corrupt tail: stop replay.
    }
    if body_len < 5 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "journal body too short"));
    }
    let kind = body[0];
    let key_len = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
    if 5 + key_len > body_len {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "journal key overruns body"));
    }
    let key = body[5..5 + key_len].to_vec();
    let value = body[5 + key_len..].to_vec();
    let record = Record {
        kind,
        key,
        value,
        value_offset: (body_start + 5 + key_len) as u64,
    };
    Ok(Some((record, FRAME_HEADER + body_len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_puts_and_deletes() {
        let (f1, voff1) = encode(TYPE_PUT, b"alpha", b"value-1");
        let (f2, _) = encode(TYPE_DELETE, b"beta", b"");
        let mut log = f1.clone();
        log.extend_from_slice(&f2);
        let (r1, used1) = decode_at(&log, 0).unwrap().unwrap();
        assert_eq!(r1.kind, TYPE_PUT);
        assert_eq!(r1.key, b"alpha");
        assert_eq!(r1.value, b"value-1");
        assert_eq!(r1.value_offset, voff1);
        assert_eq!(&log[r1.value_offset as usize..used1], b"value-1");
        let (r2, used2) = decode_at(&log, used1).unwrap().unwrap();
        assert_eq!(r2.kind, TYPE_DELETE);
        assert_eq!(r2.key, b"beta");
        assert!(decode_at(&log, used1 + used2).unwrap().is_none());
    }

    #[test]
    fn torn_tail_stops_replay() {
        let (frame, _) = encode(TYPE_PUT, b"k", b"a-longer-value");
        let torn = &frame[..frame.len() - 3];
        assert!(decode_at(torn, 0).unwrap().is_none());
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let (mut frame, _) = encode(TYPE_PUT, b"k", b"v");
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        assert!(decode_at(&frame, 0).unwrap().is_none());
    }

    #[test]
    fn empty_value_and_empty_log() {
        let (frame, _) = encode(TYPE_PUT, b"k", b"");
        let (r, _) = decode_at(&frame, 0).unwrap().unwrap();
        assert_eq!(r.value, b"");
        assert!(decode_at(&[], 0).unwrap().is_none());
    }
}
