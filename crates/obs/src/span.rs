//! Causal span tracing: sampled request span records, a fixed-capacity
//! multi-producer ring, and the Chrome-trace (Perfetto) JSON export.
//!
//! A sampled request carries a [`TraceCtx`] (one `u64`, `Copy`,
//! allocation-free) from submission to completion. The worker that
//! executes it reconstructs the request's life as a handful of
//! [`SpanRecord`]s — queue wait, the OBM batch it rode in, the engine
//! call split into WAL / memtable / read phases, and the device I/O the
//! call induced — and stores them into a [`SpanRing`]. Recording never
//! allocates: the ring's slots are preallocated at store open and a
//! record is a fixed-size `Copy` struct written under a per-slot mutex
//! (mirroring the pooled `CompletionSlot` discipline on the submit
//! side), so the worker consumer loop stays allocation-free with
//! tracing enabled.
//!
//! Timestamps are microseconds relative to the ring's creation instant
//! (one shared epoch), so every span of one request nests consistently
//! in the exported trace regardless of which thread recorded it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::journal::JournalRecord;
use crate::snapshot::json_escape;

/// The trace identity a sampled request carries through the pipeline.
///
/// `id == 0` means "not sampled" — the common case — and makes the
/// context free to copy alongside every request without an `Option`
/// discriminant. Ids are assigned from a monotone counter at submit
/// time, so all spans of one request share one id and the exporter can
/// group them into a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Nonzero for sampled requests.
    pub id: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx { id: 0 };

    /// Whether this request is sampled.
    pub fn is_sampled(&self) -> bool {
        self.id != 0
    }
}

/// What a span measures. The discriminants double as nesting depth in
/// the export: `QueueWait` and `Batch` are siblings under the request,
/// `Engine` nests in `Batch`, phases and device I/O nest in `Engine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Enqueue → dequeue on the owning worker's queue.
    QueueWait,
    /// Dequeue → batch completion (the whole OBM merged run).
    Batch,
    /// The engine call itself (`write_batch` / `multiget` / per-op).
    Engine,
    /// WAL-append time inside the engine call (cumulative-clock delta).
    PhaseWal,
    /// Memtable-insert time inside the engine call.
    PhaseMemtable,
    /// Read-path (memtable + table lookup) time inside the engine call.
    PhaseRead,
    /// Simulated-device busy time the engine call induced.
    DeviceIo,
    /// A client-side read-cache probe that hit (no queue round-trip
    /// followed). Recorded on the calling thread, so `worker` is
    /// `u32::MAX`.
    CacheLookup,
}

impl SpanKind {
    /// Stable export name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Batch => "obm_batch",
            SpanKind::Engine => "engine",
            SpanKind::PhaseWal => "wal_append",
            SpanKind::PhaseMemtable => "memtable",
            SpanKind::PhaseRead => "read_path",
            SpanKind::DeviceIo => "device_io",
            SpanKind::CacheLookup => "cache_lookup",
        }
    }
}

/// One completed span of one sampled request. Fixed-size and `Copy` so
/// recording is a plain store into a preallocated slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Groups the spans of one request ([`TraceCtx::id`]).
    pub trace_id: u64,
    /// What this span measures.
    pub kind: SpanKind,
    /// Worker that executed the request.
    pub worker: u32,
    /// Virtual shard the request targeted.
    pub shard: u32,
    /// Start, microseconds since the ring's epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 spans are kept: they carry args).
    pub dur_us: u64,
    /// OBM batch id (per-worker engine-call counter); 0 when n/a.
    pub batch_id: u64,
    /// Requests merged into the batch this span belongs to.
    pub batch_size: u32,
    /// Kind-specific payload: bytes for [`SpanKind::DeviceIo`],
    /// operation-class index for [`SpanKind::Batch`], 0 otherwise.
    pub aux: u64,
}

impl SpanRecord {
    const EMPTY: SpanRecord = SpanRecord {
        trace_id: 0,
        kind: SpanKind::QueueWait,
        worker: 0,
        shard: 0,
        start_us: 0,
        dur_us: 0,
        batch_id: 0,
        batch_size: 0,
        aux: 0,
    };
}

/// A fixed-capacity, multi-producer ring of [`SpanRecord`]s.
///
/// `record` claims a slot by a relaxed `fetch_add` and overwrites it
/// under that slot's own mutex — no allocation, no global lock, and
/// writers on different slots never contend. When the ring wraps, the
/// oldest records are overwritten (flight-recorder semantics).
pub struct SpanRing {
    slots: Box<[Mutex<SpanRecord>]>,
    next: AtomicU64,
    epoch: Instant,
}

impl SpanRing {
    /// Creates a ring with `cap` preallocated slots (min 8).
    pub fn new(cap: usize) -> SpanRing {
        let cap = cap.max(8);
        let slots: Vec<Mutex<SpanRecord>> =
            (0..cap).map(|_| Mutex::new(SpanRecord::EMPTY)).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            next: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The shared time base all spans are stamped against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds from the epoch to `t` (0 if `t` predates it).
    pub fn stamp(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Stores one record, overwriting the oldest when full. Never
    /// allocates.
    pub fn record(&self, rec: SpanRecord) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        // A poisoned slot only loses that one record.
        if let Ok(mut slot) = self.slots[i].lock() {
            *slot = rec;
        }
    }

    /// Total records ever stored (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Snapshot of the live records, ordered by start timestamp.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().ok().map(|r| *r))
            .filter(|r| r.trace_id != 0)
            .collect();
        out.sort_by_key(|r| (r.start_us, r.trace_id));
        out
    }
}

/// Renders spans plus flight-recorder events as a Chrome-trace JSON
/// document (the `traceEvents` array format; loads in Perfetto and
/// `chrome://tracing`).
///
/// Spans become complete (`"ph":"X"`) events on track `tid = worker`;
/// journal records become instant (`"ph":"i"`) events on track 999 so
/// control-plane history lines up with request spans on one timeline.
pub fn export_chrome_trace(spans: &[SpanRecord], journal: &[JournalRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"p2kvs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"shard\":{},\
             \"batch_id\":{},\"batch_size\":{},\"aux\":{}}}}}",
            s.kind.name(),
            s.start_us,
            s.dur_us.max(1),
            s.worker,
            s.trace_id,
            s.shard,
            s.batch_id,
            s.batch_size,
            s.aux,
        );
    }
    for r in journal {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\
             \"pid\":1,\"tid\":999,\"args\":{{\"seq\":{},\"a\":{},\"b\":{},\"c\":{},\
             \"gsn\":{}}}}}",
            json_escape(r.kind.name()),
            r.ts_us,
            r.seq,
            r.a,
            r.b,
            r.c,
            r.gsn,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, kind: SpanKind, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: id,
            kind,
            worker: 1,
            shard: 2,
            start_us: start,
            dur_us: 5,
            batch_id: 3,
            batch_size: 4,
            aux: 0,
        }
    }

    #[test]
    fn ring_records_without_allocating_per_record() {
        let ring = SpanRing::new(8);
        for i in 0..12 {
            ring.record(rec(i + 1, SpanKind::Batch, i));
        }
        assert_eq!(ring.total_recorded(), 12);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "bounded: oldest overwritten");
        // The survivors are the newest eight, ordered by start.
        assert_eq!(
            snap.iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![5, 6, 7, 8, 9, 10, 11, 12]
        );
    }

    #[test]
    fn empty_slots_are_invisible() {
        let ring = SpanRing::new(8);
        ring.record(rec(42, SpanKind::QueueWait, 100));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trace_id, 42);
    }

    #[test]
    fn stamp_is_monotone_from_epoch() {
        let ring = SpanRing::new(8);
        let a = ring.stamp(Instant::now());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = ring.stamp(Instant::now());
        assert!(b > a);
        // Pre-epoch instants clamp to zero instead of panicking.
        assert_eq!(ring.stamp(ring.epoch()), 0);
    }

    #[test]
    fn concurrent_recording_is_safe_and_bounded() {
        let ring = std::sync::Arc::new(SpanRing::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.record(rec(t * 1000 + i + 1, SpanKind::Engine, i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.total_recorded(), 4000);
        assert!(ring.snapshot().len() <= 64);
    }

    #[test]
    fn chrome_export_shape() {
        let spans = vec![
            rec(1, SpanKind::QueueWait, 10),
            rec(1, SpanKind::Batch, 15),
            rec(1, SpanKind::Engine, 16),
        ];
        let journal = vec![JournalRecord {
            seq: 1,
            ts_us: 12,
            kind: crate::journal::JournalKind::StoreOpen,
            a: 0,
            b: 0,
            c: 0,
            gsn: 0,
        }];
        let json = export_chrome_trace(&spans, &journal);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"queue_wait\""));
        assert!(json.contains("\"name\":\"obm_batch\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"store_open\""));
        assert!(json.contains("\"ph\":\"i\""));
        // Balanced braces: cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn export_of_nothing_is_valid() {
        assert_eq!(export_chrome_trace(&[], &[]), "{\"traceEvents\":[]}");
    }
}
