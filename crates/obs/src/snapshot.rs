//! Point-in-time metric values and their text expositions.
//!
//! Two renderers cover the two consumers: `render_prometheus` produces
//! the Prometheus text format (for scraping / eyeballing), `render_json`
//! a flat JSON document (what `repro` writes as its per-run artifact and
//! what EXPERIMENTS.md analysis scripts consume). Both are generated from
//! the same [`MetricsSnapshot`], so they always agree.

use std::fmt::Write as _;

use p2kvs_util::histogram::Histogram;

/// Digest of one histogram at snapshot time (values in the recorded unit,
/// nanoseconds throughout p2KVS).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u128,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl From<&Histogram> for HistogramStats {
    fn from(h: &Histogram) -> HistogramStats {
        HistogramStats {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
        }
    }
}

/// Every registered metric's value at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, digest)`, sorted by name.
    pub histograms: Vec<(String, HistogramStats)>,
}

/// Splits `base{labels}` into `("base", "labels")`; labels is empty when
/// the name is unlabeled.
fn split_name(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i..].trim_start_matches('{').trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Appends `extra` (e.g. `quantile="0.5"`) to a possibly-labeled name,
/// optionally replacing the base with `base_suffix`.
fn with_labels(name: &str, suffix: &str, extra: &str) -> String {
    let (base, labels) = split_name(name);
    let mut all = String::new();
    if !labels.is_empty() {
        all.push_str(labels);
    }
    if !extra.is_empty() {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(extra);
    }
    if all.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{suffix}{{{all}}}")
    }
}

/// Formats an `f64` so the Prometheus and JSON renders print identical
/// digits (shortest round-trippable representation).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram digest by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Merges every histogram series sharing `base` (across label sets)
    /// is not supported — series are independent; this finds all series
    /// of a base name instead.
    pub fn histograms_of(&self, base: &str) -> Vec<(&str, &HistogramStats)> {
        self.histograms
            .iter()
            .filter(|(n, _)| split_name(n).0 == base)
            .map(|(n, v)| (n.as_str(), v))
            .collect()
    }

    /// Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(String, &'static str)> = None;
        let mut type_line = |out: &mut String, base: &str, kind: &'static str| {
            if last_type.as_ref().map(|(b, k)| (b.as_str(), *k)) != Some((base, kind)) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_type = Some((base.to_string(), kind));
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, split_name(name).0, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, split_name(name).0, "gauge");
            let _ = writeln!(out, "{name} {}", fmt_f64(*v));
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, split_name(name).0, "summary");
            for (q, v) in [("0.5", h.p50), ("0.99", h.p99), ("0.999", h.p999)] {
                let series = with_labels(name, "", &format!("quantile=\"{q}\""));
                let _ = writeln!(out, "{series} {v}");
            }
            let _ = writeln!(out, "{} {}", with_labels(name, "_count", ""), h.count);
            let _ = writeln!(out, "{} {}", with_labels(name, "_sum", ""), h.sum);
            let _ = writeln!(out, "{} {}", with_labels(name, "_min", ""), h.min);
            let _ = writeln!(out, "{} {}", with_labels(name, "_max", ""), h.max);
        }
        out
    }

    /// JSON exposition: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, min, max, mean, p50, p99,
    /// p999}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", json_escape(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(name), fmt_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.mean),
                h.p50,
                h.p99,
                h.p999,
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the *value lines* of a Prometheus render back into
    /// `(series, value)` pairs — used by tests to prove the two renders
    /// agree, and handy for scraping the text format without a client
    /// library.
    pub fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
        text.lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .filter_map(|l| {
                let cut = l.rfind(' ')?;
                let value: f64 = l[cut + 1..].parse().ok()?;
                Some((l[..cut].to_string(), value))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        MetricsSnapshot {
            counters: vec![
                ("ops_total{worker=\"0\"}".into(), 7),
                ("ops_total{worker=\"1\"}".into(), 9),
            ],
            gauges: vec![("queue_depth{worker=\"0\"}".into(), 3.0)],
            histograms: vec![("lat_ns{class=\"write\"}".into(), HistogramStats::from(&h))],
        }
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("ops_total{worker=\"1\"}"), Some(9));
        assert_eq!(s.gauge("queue_depth{worker=\"0\"}"), Some(3.0));
        assert!(s.histogram("lat_ns{class=\"write\"}").unwrap().count == 1000);
        assert_eq!(s.histograms_of("lat_ns").len(), 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn prometheus_render_shape() {
        let s = sample();
        let text = s.render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{worker=\"0\"} 7"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("# TYPE lat_ns summary"));
        assert!(text.contains("lat_ns{class=\"write\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_count{class=\"write\"} 1000"));
        assert!(text.contains("lat_ns_sum{class=\"write\"} 500500"));
    }

    #[test]
    fn renders_round_trip_the_same_values() {
        let s = sample();
        let parsed = MetricsSnapshot::parse_prometheus(&s.render_prometheus());
        let json = s.render_json();
        // Every counter/gauge appears in both renders with the same value.
        for (name, v) in &s.counters {
            let p = parsed.iter().find(|(n, _)| n == name).unwrap().1;
            assert_eq!(p as u64, *v);
            assert!(json.contains(&format!("\"{}\": {v}", json_escape(name))));
        }
        for (name, v) in &s.gauges {
            let p = parsed.iter().find(|(n, _)| n == name).unwrap().1;
            assert_eq!(p, *v);
            assert!(json.contains(&format!("\"{}\": {}", json_escape(name), fmt_f64(*v))));
        }
        // Histogram digests agree between renders.
        for (name, h) in &s.histograms {
            let find = |series: &str| parsed.iter().find(|(n, _)| n == series).unwrap().1;
            assert_eq!(find(&with_labels(name, "_count", "")) as u64, h.count);
            assert_eq!(find(&with_labels(name, "_sum", "")) as u128, h.sum);
            assert_eq!(
                find(&with_labels(name, "", "quantile=\"0.99\"")) as u64,
                h.p99
            );
            assert!(json.contains(&format!("\"count\": {}", h.count)));
            assert!(json.contains(&format!("\"p99\": {}", h.p99)));
        }
    }

    #[test]
    fn unlabeled_names_render_cleanly() {
        let s = MetricsSnapshot {
            counters: vec![("plain_total".into(), 1)],
            gauges: vec![],
            histograms: vec![("h_ns".into(), HistogramStats::from(&Histogram::new()))],
        };
        let text = s.render_prometheus();
        assert!(text.contains("plain_total 1"));
        assert!(text.contains("h_ns{quantile=\"0.5\"} 0"));
        assert!(text.contains("h_ns_count 0"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tx"), "tab\\u0009x");
    }

    #[test]
    fn f64_formatting_is_stable() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.0), "-2.0");
    }
}
