//! `p2kvs-obs`: the observability layer of the p2KVS reproduction.
//!
//! The paper's entire argument is *measured* — the Fig 6 write-latency
//! breakdown, Fig 13 tail latencies, the OBM batch-size dynamics — so
//! the framework carries first-class metrics rather than ad-hoc
//! counters:
//!
//! * [`metrics`] — lock-free [`Counter`]s and [`Gauge`]s, plus
//!   [`ConcurrentHistogram`], a sharded wrapper around
//!   [`p2kvs_util::Histogram`] that workers record into without
//!   contention.
//! * [`registry`] — [`MetricsRegistry`], get-or-create named metrics;
//!   handles are resolved once and recorded through afterwards, so the
//!   registry lock never sits on a hot path.
//! * [`trace`] — request-lifecycle tracing: [`WorkerLifecycle`] splits
//!   every request into *queue-wait* and *service* latency per
//!   `(worker, class)`, and [`TraceRing`] keeps a bounded ring of recent
//!   slow-request [`TraceEvent`]s for post-hoc inspection.
//! * [`snapshot`] — [`MetricsSnapshot`] with Prometheus-text and JSON
//!   renderers (the JSON form is the `repro` per-run artifact).
//! * [`reporter`] — [`PeriodicTask`], the optional stats-reporter thread.
//! * [`span`] — causal span tracing: the sampled [`TraceCtx`] that rides
//!   each request, fixed-capacity [`SpanRing`]s of completed
//!   [`SpanRecord`]s, and the Chrome-trace/Perfetto JSON export.
//! * [`journal`] — the system flight recorder: a bounded,
//!   gap-free-sequenced [`Journal`] of control-plane events (handoffs,
//!   balancer moves, compactions, fault firings) with a pluggable
//!   persistence sink so the history survives crashes.
//!
//! The crate is dependency-free (std + `p2kvs-util`) and knows nothing
//! about engines or the store; `p2kvs` threads it through the stack.

pub mod journal;
pub mod metrics;
pub mod registry;
pub mod reporter;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use journal::{parse_journal, sequence_gap, Journal, JournalKind, JournalRecord};
pub use metrics::{ConcurrentHistogram, Counter, Gauge};
pub use registry::{labeled, MetricsRegistry};
pub use reporter::PeriodicTask;
pub use snapshot::{HistogramStats, MetricsSnapshot};
pub use span::{export_chrome_trace, SpanKind, SpanRecord, SpanRing, TraceCtx};
pub use trace::{TraceEvent, TraceRing, WorkerLifecycle, CLASS_LABELS};
