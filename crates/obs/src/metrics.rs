//! Metric primitives: counters, gauges, and a sharded concurrent
//! histogram.
//!
//! Counters and gauges are single atomics — recording is one relaxed RMW,
//! cheap enough to sit on every request. Histograms wrap
//! [`p2kvs_util::Histogram`] (which needs `&mut self`) in per-thread
//! shards so concurrent workers never serialize on one lock; a snapshot
//! merges the shards into one histogram, which is exact because merging
//! log-bucketed counts is associative.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use p2kvs_util::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for mirroring an externally owned monotonic
    /// counter into the registry at snapshot time).
    #[inline]
    pub fn store(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a point-in-time `f64` that can go up and down.
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Shards per concurrent histogram. 8 keeps the footprint at a few tens
/// of KiB while making cross-worker collisions rare (each store has
/// dedicated per-worker histograms anyway; shards absorb user threads).
const HIST_SHARDS: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard hint: threads get round-robin slots on
    /// first use, so two threads only contend when more than
    /// `HIST_SHARDS` of them record into the same histogram at once.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A histogram that can be recorded into from many threads.
pub struct ConcurrentHistogram {
    shards: Vec<Mutex<Histogram>>,
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentHistogram {
    /// Creates an empty histogram.
    pub fn new() -> ConcurrentHistogram {
        ConcurrentHistogram {
            shards: (0..HIST_SHARDS).map(|_| Mutex::new(Histogram::new())).collect(),
        }
    }

    /// Records one observation (e.g. nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        let slot = THREAD_SLOT.with(|s| *s) % self.shards.len();
        // The home shard is almost always uncontended; fall through to the
        // neighbouring shards rather than block behind another recorder.
        for i in 0..self.shards.len() {
            let idx = (slot + i) % self.shards.len();
            if let Ok(mut h) = self.shards[idx].try_lock() {
                h.record(value);
                return;
            }
        }
        self.shards[slot]
            .lock()
            .expect("histogram shard poisoned")
            .record(value);
    }

    /// Merges all shards into one point-in-time histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.shards {
            out.merge(&shard.lock().expect("histogram shard poisoned"));
        }
        out
    }

    /// Total observations across shards.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("histogram shard poisoned").count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(3);
        assert_eq!(c.get(), 3);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn concurrent_histogram_counts_all_records() {
        let h = Arc::new(ConcurrentHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        let merged = h.snapshot();
        assert_eq!(merged.count(), 8000);
        assert_eq!(merged.min(), 0);
        // 7999 quantizes within the histogram's relative error bound.
        assert!(merged.max() >= 7900);
    }

    #[test]
    fn snapshot_of_empty_is_empty() {
        let h = ConcurrentHistogram::new();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        // The sharded snapshot depends on merging log-bucketed counts
        // being order-independent; check digests across groupings.
        use crate::snapshot::HistogramStats;
        let fill = |seed: u64, n: u64| {
            let mut h = Histogram::new();
            for i in 0..n {
                h.record(seed.wrapping_mul(2654435761).wrapping_add(i * 37) % 1_000_000);
            }
            h
        };
        let (a, b, c) = (fill(1, 500), fill(2, 300), fill(3, 700));
        // (a ⊕ b) ⊕ c
        let mut left = Histogram::new();
        left.merge(&a);
        left.merge(&b);
        let mut left_then_c = left;
        left_then_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = Histogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut right = Histogram::new();
        right.merge(&a);
        right.merge(&bc);
        // c ⊕ b ⊕ a (commuted)
        let mut rev = Histogram::new();
        rev.merge(&c);
        rev.merge(&b);
        rev.merge(&a);
        let digest = |h: &Histogram| HistogramStats::from(h);
        assert_eq!(digest(&left_then_c), digest(&right));
        assert_eq!(digest(&left_then_c), digest(&rev));
        assert_eq!(left_then_c.count(), 1500);
    }
}
