//! A small periodic background task, used for the optional stats
//! reporter thread on `P2Kvs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A background thread running a closure every `interval` until dropped.
///
/// The thread wakes every few tens of milliseconds to check the stop
/// flag, so dropping the task never blocks for a full interval.
pub struct PeriodicTask {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Poll granularity for the stop flag.
const POLL: Duration = Duration::from_millis(25);

impl PeriodicTask {
    /// Spawns the task; `tick` runs once per `interval` (first run after
    /// one full interval).
    pub fn spawn(
        name: &str,
        interval: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> PeriodicTask {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                loop {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let now = Instant::now();
                    if now >= next {
                        tick();
                        next = now + interval;
                    }
                    std::thread::sleep(POLL.min(next.saturating_duration_since(now)).max(
                        Duration::from_millis(1),
                    ));
                }
            })
            .expect("spawn periodic task");
        PeriodicTask {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PeriodicTask {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_and_stops() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let mut task = PeriodicTask::spawn("test-reporter", Duration::from_millis(30), move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(200));
        task.stop();
        let after_stop = hits.load(Ordering::Relaxed);
        assert!(after_stop >= 2, "expected a few ticks, got {after_stop}");
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(hits.load(Ordering::Relaxed), after_stop, "no ticks after stop");
    }

    #[test]
    fn drop_joins_quickly() {
        let start = Instant::now();
        {
            let _task = PeriodicTask::spawn("t", Duration::from_secs(3600), || {});
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(start.elapsed() < Duration::from_secs(2), "drop must not wait an interval");
    }
}
