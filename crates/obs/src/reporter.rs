//! A small periodic background task, used for the optional stats
//! reporter thread on `P2Kvs`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A background thread running a closure every `interval` until dropped.
///
/// The thread wakes every few tens of milliseconds to check the stop
/// flag, so dropping the task never blocks for a full interval.
pub struct PeriodicTask {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Poll granularity for the stop flag.
const POLL: Duration = Duration::from_millis(25);

impl PeriodicTask {
    /// Spawns the task; `tick` runs once per `interval` (first run after
    /// one full interval).
    pub fn spawn(
        name: &str,
        interval: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> PeriodicTask {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                loop {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let now = Instant::now();
                    if now >= next {
                        tick();
                        next = now + interval;
                    }
                    std::thread::sleep(POLL.min(next.saturating_duration_since(now)).max(
                        Duration::from_millis(1),
                    ));
                }
            })
            .expect("spawn periodic task");
        PeriodicTask {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PeriodicTask {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_and_stops() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let mut task = PeriodicTask::spawn("test-reporter", Duration::from_millis(30), move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(200));
        task.stop();
        let after_stop = hits.load(Ordering::Relaxed);
        assert!(after_stop >= 2, "expected a few ticks, got {after_stop}");
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(hits.load(Ordering::Relaxed), after_stop, "no ticks after stop");
    }

    #[test]
    fn ticks_snapshot_a_registry_under_concurrent_mutation() {
        use crate::registry::{labeled, MetricsRegistry};
        let registry = Arc::new(MetricsRegistry::new());
        let ticks = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        // Mutators: register fresh series and hammer existing handles
        // while the reporter snapshots — the get-or-create lock and the
        // snapshot path must coexist without deadlock or panic.
        let mutators: Vec<_> = (0..3)
            .map(|t| {
                let reg = registry.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let w = (i % 17).to_string();
                        reg.counter(&labeled("rep_ops_total", &[("worker", &w)])).inc();
                        reg.histogram(&labeled("rep_lat_ns", &[("worker", &w)]))
                            .record(t * 1000 + i);
                        reg.set_gauge(&labeled("rep_depth", &[("worker", &w)]), i as f64);
                        i += 1;
                    }
                    i
                })
            })
            .collect();
        let mut task = {
            let reg = registry.clone();
            let ticks = ticks.clone();
            PeriodicTask::spawn("test-snap", Duration::from_millis(5), move || {
                let snap = reg.snapshot();
                // Sorted output and internally consistent counts.
                assert!(snap.counters.windows(2).all(|w| w[0].0 <= w[1].0));
                for (_, h) in &snap.histograms {
                    assert!(h.min <= h.max || h.count == 0);
                }
                ticks.fetch_add(1, Ordering::Relaxed);
            })
        };
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        let recorded: u64 = mutators.into_iter().map(|m| m.join().unwrap()).sum();
        task.stop();
        assert!(ticks.load(Ordering::Relaxed) >= 3, "reporter ticked while mutated");
        assert!(recorded > 0);
        // Post-quiesce, the registry totals match what the mutators did.
        let snap = registry.snapshot();
        let total: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("rep_ops_total"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, recorded);
    }

    #[test]
    fn drop_joins_quickly() {
        let start = Instant::now();
        {
            let _task = PeriodicTask::spawn("t", Duration::from_secs(3600), || {});
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(start.elapsed() < Duration::from_secs(2), "drop must not wait an interval");
    }
}
