//! Request-lifecycle tracing: per-request latency split and a bounded
//! ring of recent slow-request events.
//!
//! Every completed request yields two numbers — *queue wait* (enqueue →
//! dequeue) and *service* (dequeue → completion). [`WorkerLifecycle`]
//! records both into per-`(worker, class)` histograms, and requests whose
//! end-to-end latency crosses a threshold leave a [`TraceEvent`] in a
//! shared ring buffer so a slow tail can be inspected post hoc (which op
//! class, which worker, how big the OBM batch was, where the time went).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::ConcurrentHistogram;
use crate::registry::{labeled, MetricsRegistry};

/// Human-readable labels for the three OBM request classes, indexable by
/// the class' integer id (write = 0, read = 1, solo = 2).
pub const CLASS_LABELS: [&str; 3] = ["write", "read", "solo"];

/// One slow request, as seen by the worker that executed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Executing worker.
    pub worker: usize,
    /// Request class id (index into [`CLASS_LABELS`]).
    pub class: usize,
    /// Nanoseconds spent waiting in the worker queue.
    pub queue_wait_ns: u64,
    /// Nanoseconds from dequeue to completion.
    pub service_ns: u64,
    /// Number of requests in the OBM batch this request rode in.
    pub batch_size: usize,
}

impl TraceEvent {
    /// End-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns.saturating_add(self.service_ns)
    }

    /// The class label.
    pub fn class_label(&self) -> &'static str {
        CLASS_LABELS.get(self.class).copied().unwrap_or("unknown")
    }
}

/// Bounded ring of recent [`TraceEvent`]s; the oldest event is evicted
/// when full.
pub struct TraceRing {
    cap: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    recorded: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> TraceRing {
        let cap = cap.max(1);
        TraceRing {
            cap,
            events: Mutex::new(VecDeque::with_capacity(cap)),
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends `event`, evicting the oldest if the ring is full.
    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() == self.cap {
            events.pop_front();
        }
        events.push_back(event);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let events = self.events.lock().expect("trace ring poisoned");
        let skip = events.len().saturating_sub(n);
        events.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace ring poisoned").len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker lifecycle recorder: queue-wait and service histograms per
/// request class, plus the shared slow-request ring.
pub struct WorkerLifecycle {
    worker: usize,
    queue_wait: [Arc<ConcurrentHistogram>; 3],
    service: [Arc<ConcurrentHistogram>; 3],
    point_during_scan: Arc<ConcurrentHistogram>,
    trace: Arc<TraceRing>,
    slow_ns: u64,
}

impl WorkerLifecycle {
    /// Creates the recorder for `worker`, registering its histograms as
    /// `p2kvs_queue_wait_ns{worker,class}` / `p2kvs_service_ns{worker,
    /// class}`. Requests slower end-to-end than `slow_ns` are pushed into
    /// `trace`.
    pub fn new(
        registry: &MetricsRegistry,
        worker: usize,
        slow_ns: u64,
        trace: Arc<TraceRing>,
    ) -> WorkerLifecycle {
        let w = worker.to_string();
        let hist = |base: &str, class: &str| {
            registry.histogram(&labeled(base, &[("worker", &w), ("class", class)]))
        };
        let per_class = |base: &str| {
            [
                hist(base, CLASS_LABELS[0]),
                hist(base, CLASS_LABELS[1]),
                hist(base, CLASS_LABELS[2]),
            ]
        };
        WorkerLifecycle {
            worker,
            queue_wait: per_class("p2kvs_queue_wait_ns"),
            service: per_class("p2kvs_service_ns"),
            point_during_scan: registry
                .histogram(&labeled("p2kvs_point_during_scan_service_ns", &[("worker", &w)])),
            trace,
            slow_ns,
        }
    }

    /// Records one executed OBM batch: each request in it waited
    /// `queue_waits_ns[i]` and the whole batch took `service_ns` from
    /// dequeue to completion (all requests in a batch complete together).
    pub fn observe(&self, class: usize, queue_waits_ns: &[u64], service_ns: u64) {
        if queue_waits_ns.is_empty() {
            return;
        }
        let class = class.min(CLASS_LABELS.len() - 1);
        let qh = &self.queue_wait[class];
        let sh = &self.service[class];
        let mut slowest = 0u64;
        for &wait in queue_waits_ns {
            qh.record(wait);
            sh.record(service_ns);
            slowest = slowest.max(wait);
        }
        if slowest.saturating_add(service_ns) >= self.slow_ns {
            self.trace.push(TraceEvent {
                worker: self.worker,
                class,
                queue_wait_ns: slowest,
                service_ns,
                batch_size: queue_waits_ns.len(),
            });
        }
    }

    /// Records a point-op batch that was served while a streaming scan
    /// had a cursor parked on this worker — the latency a blocking scan
    /// would have wrecked. `n` requests shared one `service_ns` batch.
    pub fn observe_point_during_scan(&self, n: usize, service_ns: u64) {
        for _ in 0..n {
            self.point_during_scan.record(service_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                worker: 0,
                class: 0,
                queue_wait_ns: i,
                service_ns: 0,
                batch_size: 1,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let recent = ring.recent(10);
        assert_eq!(
            recent.iter().map(|e| e.queue_wait_ns).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.recent(2).len(), 2);
    }

    #[test]
    fn ring_at_capacity_keeps_newest_in_push_order() {
        // Fill exactly to capacity, then keep pushing: every eviction
        // must drop the oldest and the survivors stay in push order.
        let ring = TraceRing::new(4);
        for i in 0..4u64 {
            ring.push(TraceEvent {
                worker: 0,
                class: 0,
                queue_wait_ns: i,
                service_ns: 0,
                batch_size: 1,
            });
        }
        for i in 4..20u64 {
            ring.push(TraceEvent {
                worker: 0,
                class: 0,
                queue_wait_ns: i,
                service_ns: 0,
                batch_size: 1,
            });
            let ids: Vec<u64> = ring.recent(4).iter().map(|e| e.queue_wait_ns).collect();
            assert_eq!(ids, vec![i - 3, i - 2, i - 1, i], "after push {i}");
            assert_eq!(ring.len(), 4);
        }
        assert_eq!(ring.total_recorded(), 20);
        // `recent(n)` with n < len returns the newest n, still oldest
        // first.
        assert_eq!(
            ring.recent(2).iter().map(|e| e.queue_wait_ns).collect::<Vec<_>>(),
            vec![18, 19]
        );
    }

    #[test]
    fn ring_stays_bounded_under_concurrent_pushes() {
        let ring = Arc::new(TraceRing::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        ring.push(TraceEvent {
                            worker: t,
                            class: 0,
                            queue_wait_ns: i,
                            service_ns: 0,
                            batch_size: 1,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.total_recorded(), 2000);
    }

    #[test]
    fn lifecycle_records_per_class_and_traces_slow() {
        let registry = MetricsRegistry::new();
        let ring = Arc::new(TraceRing::new(8));
        let lc = WorkerLifecycle::new(&registry, 2, 1_000, ring.clone());
        // Fast batch of 3 writes: histograms fill, no trace event.
        lc.observe(0, &[10, 20, 30], 100);
        assert!(ring.is_empty());
        // Slow solo read crosses the 1µs threshold.
        lc.observe(1, &[900], 500);
        assert_eq!(ring.len(), 1);
        let ev = &ring.recent(1)[0];
        assert_eq!(ev.worker, 2);
        assert_eq!(ev.class_label(), "read");
        assert_eq!(ev.total_ns(), 1_400);
        assert_eq!(ev.batch_size, 1);

        let snap = registry.snapshot();
        let writes = snap
            .histogram("p2kvs_queue_wait_ns{worker=\"2\",class=\"write\"}")
            .unwrap();
        assert_eq!(writes.count, 3);
        assert_eq!(writes.max, 30);
        let service = snap
            .histogram("p2kvs_service_ns{worker=\"2\",class=\"write\"}")
            .unwrap();
        assert_eq!(service.count, 3, "service recorded once per request");
    }

    #[test]
    fn point_during_scan_histogram_counts_per_request() {
        let registry = MetricsRegistry::new();
        let ring = Arc::new(TraceRing::new(2));
        let lc = WorkerLifecycle::new(&registry, 3, u64::MAX, ring);
        lc.observe_point_during_scan(4, 700);
        lc.observe_point_during_scan(0, 9_999);
        let snap = registry.snapshot();
        let h = snap
            .histogram("p2kvs_point_during_scan_service_ns{worker=\"3\"}")
            .unwrap();
        assert_eq!(h.count, 4, "one sample per request, none for empty batches");
        assert_eq!(h.max, 700);
    }

    #[test]
    fn empty_batch_records_nothing() {
        let registry = MetricsRegistry::new();
        let ring = Arc::new(TraceRing::new(2));
        let lc = WorkerLifecycle::new(&registry, 0, 0, ring.clone());
        lc.observe(0, &[], 50);
        assert!(ring.is_empty(), "no requests, no trace event");
    }
}
