//! The system flight recorder: a bounded, monotonically-sequenced
//! journal of control-plane events.
//!
//! Request-level history lives in histograms and span rings; the journal
//! answers the *other* question — "what was the system doing when X
//! happened?" It records shard handoffs, balancer decisions (with their
//! busy-ns evidence), engine compactions and flushes, injected fault
//! firings, scan open/close, and store lifecycle, each stamped with a
//! gap-free sequence number from one atomic counter and a microsecond
//! timestamp. Recent records stay in a bounded in-memory ring; an
//! optional sink (installed by the store) appends every record to a
//! journal file so the history survives a crash — the crash-recovery
//! matrix asserts that the recovered file is a contiguous,
//! gap-free prefix of the sequence.
//!
//! The crate knows nothing about storage; persistence is a callback so
//! the dependency points the right way (core installs an `Env`-backed
//! sink).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What kind of control-plane event a record describes, with the
/// meaning of the generic `a`/`b`/`c` payload fields per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// Store opened (`a` = workers, `b` = shards, `c` = recovered
    /// journal records found on disk).
    StoreOpen,
    /// Store closed cleanly.
    StoreClose,
    /// A worker packaged a shard for migration (`a` = shard, `b` =
    /// source worker, `c` = parked scan cursors deposited).
    HandoffOut,
    /// A worker installed a migrated shard (`a` = shard, `b` = target
    /// worker, `c` = stashed requests replayed).
    ShardInstall,
    /// The balancer decided to move a shard (`a` = shard, `b` = target
    /// worker, `c` = busiest worker's busy-ns delta over the window —
    /// the evidence the decision was made on).
    BalanceMove,
    /// An engine memtable flush started (`a` = engine instance, `b` =
    /// approximate bytes).
    FlushStart,
    /// An engine memtable flush finished (`a` = instance, `b` = bytes).
    FlushFinish,
    /// An engine compaction started (`a` = instance, `b` = source
    /// level, `c` = input bytes).
    CompactionStart,
    /// An engine compaction finished (`a` = instance, `b` = source
    /// level, `c` = output bytes).
    CompactionFinish,
    /// An injected fault fired (`a` = fault discriminant: 1 append,
    /// 2 sync, 3 read, 4 crash; `b` = the fault's global op number).
    FaultFired,
    /// A streaming scan opened a cursor (`a` = worker, `b` = cursor id,
    /// `c` = shard).
    ScanOpen,
    /// A cursor was closed or exhausted (`a` = worker, `b` = cursor id,
    /// `c` = shard).
    ScanClose,
    /// A cross-shard transaction committed; `gsn` carries its Global
    /// Sequence Number (`a` = shards touched).
    TxnCommit,
    /// The read cache dropped a shard's entries, or reset cold at open
    /// (`a` = shard, or `u64::MAX` for a full open-time reset; `b` =
    /// entries dropped; `c` = bytes dropped, or the configured capacity
    /// for an open-time reset).
    CacheFlush,
    /// An online backup chose its GSN horizon (`a` = shards, `b` = shard
    /// map epoch frozen into the manifest; `gsn` = the horizon).
    BackupBegin,
    /// A worker forked a shard's engine snapshot for an in-flight backup
    /// (`a` = shard, `b` = worker, `c` = snapshot fidelity: 0
    /// point-in-time, 1 materialized at freeze; `gsn` = the horizon).
    ShardFrozen,
    /// A backup finished streaming and its manifest is durable (`a` =
    /// shards streamed, `b` = total entries, `c` = total payload bytes;
    /// `gsn` = the horizon).
    BackupComplete,
    /// The pool spawned a worker — at open or a runtime scale-up (`a` =
    /// worker id, `b` = live workers after the spawn, `c` = home device
    /// queue + 1, or 0 when affinity is off).
    WorkerSpawn,
    /// The pool drained and retired a worker (`a` = worker id, `b` =
    /// live workers after the retire, `c` = shards migrated off it
    /// during the drain).
    WorkerRetire,
}

impl JournalKind {
    /// Stable wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::StoreOpen => "store_open",
            JournalKind::StoreClose => "store_close",
            JournalKind::HandoffOut => "handoff_out",
            JournalKind::ShardInstall => "shard_install",
            JournalKind::BalanceMove => "balance_move",
            JournalKind::FlushStart => "flush_start",
            JournalKind::FlushFinish => "flush_finish",
            JournalKind::CompactionStart => "compaction_start",
            JournalKind::CompactionFinish => "compaction_finish",
            JournalKind::FaultFired => "fault_fired",
            JournalKind::ScanOpen => "scan_open",
            JournalKind::ScanClose => "scan_close",
            JournalKind::TxnCommit => "txn_commit",
            JournalKind::CacheFlush => "cache_flush",
            JournalKind::BackupBegin => "backup_begin",
            JournalKind::ShardFrozen => "shard_frozen",
            JournalKind::BackupComplete => "backup_complete",
            JournalKind::WorkerSpawn => "worker_spawn",
            JournalKind::WorkerRetire => "worker_retire",
        }
    }

    /// Inverse of [`JournalKind::name`], for parsing persisted journals.
    pub fn parse(name: &str) -> Option<JournalKind> {
        Some(match name {
            "store_open" => JournalKind::StoreOpen,
            "store_close" => JournalKind::StoreClose,
            "handoff_out" => JournalKind::HandoffOut,
            "shard_install" => JournalKind::ShardInstall,
            "balance_move" => JournalKind::BalanceMove,
            "flush_start" => JournalKind::FlushStart,
            "flush_finish" => JournalKind::FlushFinish,
            "compaction_start" => JournalKind::CompactionStart,
            "compaction_finish" => JournalKind::CompactionFinish,
            "fault_fired" => JournalKind::FaultFired,
            "scan_open" => JournalKind::ScanOpen,
            "scan_close" => JournalKind::ScanClose,
            "txn_commit" => JournalKind::TxnCommit,
            "cache_flush" => JournalKind::CacheFlush,
            "backup_begin" => JournalKind::BackupBegin,
            "shard_frozen" => JournalKind::ShardFrozen,
            "backup_complete" => JournalKind::BackupComplete,
            "worker_spawn" => JournalKind::WorkerSpawn,
            "worker_retire" => JournalKind::WorkerRetire,
            _ => return None,
        })
    }

    /// Whether a record of this kind is worth a durability barrier on
    /// the persistence sink. Rare control-plane transitions are synced
    /// so they survive a crash; high-rate kinds (scans) are appended
    /// only and ride on the next synced record.
    pub fn durable(self) -> bool {
        !matches!(
            self,
            JournalKind::ScanOpen
                | JournalKind::ScanClose
                | JournalKind::TxnCommit
                | JournalKind::CacheFlush
        )
    }
}

/// One flight-recorder record. Fixed-size; `a`/`b`/`c` are interpreted
/// per [`JournalKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Gap-free, 1-based sequence number.
    pub seq: u64,
    /// Microseconds since the journal's epoch (store open).
    pub ts_us: u64,
    /// Event kind.
    pub kind: JournalKind,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
    /// Kind-specific payload.
    pub c: u64,
    /// Global Sequence Number when the event is transactional, else 0.
    pub gsn: u64,
}

impl JournalRecord {
    /// One-line wire form: `seq ts_us kind a b c gsn`.
    pub fn encode(&self) -> String {
        format!(
            "{} {} {} {} {} {} {}\n",
            self.seq,
            self.ts_us,
            self.kind.name(),
            self.a,
            self.b,
            self.c,
            self.gsn
        )
    }

    /// Parses one line of the wire form; `None` for malformed (e.g.
    /// torn) lines.
    pub fn decode(line: &str) -> Option<JournalRecord> {
        let mut it = line.split_ascii_whitespace();
        let seq = it.next()?.parse().ok()?;
        let ts_us = it.next()?.parse().ok()?;
        let kind = JournalKind::parse(it.next()?)?;
        let a = it.next()?.parse().ok()?;
        let b = it.next()?.parse().ok()?;
        let c = it.next()?.parse().ok()?;
        let gsn = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(JournalRecord { seq, ts_us, kind, a, b, c, gsn })
    }
}

/// Receives every record as it is sequenced; `durable` asks the sink
/// for a barrier after this record (see [`JournalKind::durable`]).
pub type JournalSink = Box<dyn Fn(&JournalRecord, bool) + Send + Sync>;

/// The flight recorder proper: an atomic sequence, a bounded ring of
/// recent records, and the optional persistence sink.
pub struct Journal {
    cap: usize,
    seq: AtomicU64,
    epoch: Instant,
    recent: Mutex<VecDeque<JournalRecord>>,
    sink: Mutex<Option<JournalSink>>,
}

impl Journal {
    /// Creates a journal keeping the most recent `cap` records (min 16)
    /// in memory, with the sequence starting after `last_seq` (0 for a
    /// fresh store; the recovered maximum when reopening so numbering
    /// stays gap-free across restarts).
    pub fn new(cap: usize, last_seq: u64) -> Journal {
        Journal {
            cap: cap.max(16),
            seq: AtomicU64::new(last_seq),
            epoch: Instant::now(),
            recent: Mutex::new(VecDeque::new()),
            sink: Mutex::new(None),
        }
    }

    /// Installs the persistence sink (at most one; replaces any prior).
    pub fn set_sink(&self, sink: JournalSink) {
        *self.sink.lock().expect("journal sink lock") = Some(sink);
    }

    /// Drops the persistence sink (store close: the file is finalized).
    pub fn clear_sink(&self) {
        *self.sink.lock().expect("journal sink lock") = None;
    }

    /// Seeds the in-memory ring with records recovered from disk so
    /// `recent()` spans the crash boundary.
    pub fn seed(&self, recovered: &[JournalRecord]) {
        let mut recent = self.recent.lock().expect("journal ring lock");
        for r in recovered.iter().rev().take(self.cap).rev() {
            recent.push_back(*r);
        }
    }

    /// Records one event, assigning the next sequence number. Returns
    /// the stamped record.
    ///
    /// The sequence number is assigned while the sink lock is held:
    /// concurrent recorders (workers, flush/compaction threads, fault
    /// hooks) would otherwise be able to reach the sink out of sequence
    /// order, and a crash landing between the two appends would leave a
    /// *hole* in the persisted journal — which recovery asserts never
    /// happens. A torn tail may cost suffix records, never interior
    /// ones.
    pub fn record(&self, kind: JournalKind, a: u64, b: u64, c: u64, gsn: u64) -> JournalRecord {
        let sink = self.sink.lock().expect("journal sink lock");
        let rec = JournalRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            ts_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            a,
            b,
            c,
            gsn,
        };
        {
            let mut recent = self.recent.lock().expect("journal ring lock");
            if recent.len() == self.cap {
                recent.pop_front();
            }
            recent.push_back(rec);
        }
        if let Some(sink) = sink.as_ref() {
            sink(&rec, kind.durable());
        }
        rec
    }

    /// The highest sequence number assigned so far.
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The most recent records (up to the ring capacity), oldest first.
    pub fn recent(&self, n: usize) -> Vec<JournalRecord> {
        let recent = self.recent.lock().expect("journal ring lock");
        let skip = recent.len().saturating_sub(n);
        recent.iter().skip(skip).copied().collect()
    }
}

/// Parses a persisted journal image into its longest valid prefix of
/// records. Parsing stops at the first malformed line (a torn tail from
/// a crash) — everything before it is returned.
pub fn parse_journal(data: &[u8]) -> Vec<JournalRecord> {
    let text = String::from_utf8_lossy(data);
    let mut out = Vec::new();
    for line in text.split('\n') {
        if line.is_empty() {
            continue;
        }
        match JournalRecord::decode(line) {
            Some(rec) => out.push(rec),
            None => break,
        }
    }
    out
}

/// Checks that `records` form a gap-free ascending sequence (each seq =
/// predecessor + 1). Returns the first violation as a message, `None`
/// when contiguous. An empty journal is contiguous.
pub fn sequence_gap(records: &[JournalRecord]) -> Option<String> {
    for pair in records.windows(2) {
        if pair[1].seq != pair[0].seq + 1 {
            return Some(format!(
                "journal gap: seq {} followed by {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced_gap_free() {
        let j = Journal::new(64, 0);
        for i in 0..10 {
            let r = j.record(JournalKind::ScanOpen, i, 0, 0, 0);
            assert_eq!(r.seq, i + 1);
        }
        assert_eq!(j.last_seq(), 10);
        let recent = j.recent(100);
        assert_eq!(recent.len(), 10);
        assert!(sequence_gap(&recent).is_none());
    }

    #[test]
    fn ring_is_bounded_but_sequence_keeps_counting() {
        let j = Journal::new(16, 0);
        for _ in 0..50 {
            j.record(JournalKind::FlushStart, 0, 0, 0, 0);
        }
        assert_eq!(j.last_seq(), 50);
        let recent = j.recent(100);
        assert_eq!(recent.len(), 16);
        assert_eq!(recent.first().unwrap().seq, 35);
        assert!(sequence_gap(&recent).is_none());
    }

    #[test]
    fn encode_decode_round_trip() {
        let j = Journal::new(16, 7);
        let rec = j.record(JournalKind::BalanceMove, 3, 1, 987654321, 0);
        assert_eq!(rec.seq, 8, "sequence continues after the recovered max");
        let line = rec.encode();
        let back = JournalRecord::decode(line.trim_end()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn decode_rejects_torn_lines() {
        assert!(JournalRecord::decode("3 12 balance_move 1 2").is_none());
        assert!(JournalRecord::decode("3 12 balance_move 1 2 3 0 extra").is_none());
        assert!(JournalRecord::decode("x 12 balance_move 1 2 3 0").is_none());
        assert!(JournalRecord::decode("3 12 not_a_kind 1 2 3 0").is_none());
    }

    #[test]
    fn parse_journal_stops_at_torn_tail() {
        let mut img = String::new();
        for i in 1..=5u64 {
            img.push_str(
                &JournalRecord {
                    seq: i,
                    ts_us: i * 10,
                    kind: JournalKind::HandoffOut,
                    a: i,
                    b: 0,
                    c: 0,
                    gsn: 0,
                }
                .encode(),
            );
        }
        img.push_str("6 60 shard_ins"); // torn mid-record by the crash
        let recs = parse_journal(img.as_bytes());
        assert_eq!(recs.len(), 5);
        assert!(sequence_gap(&recs).is_none());
        assert_eq!(recs.last().unwrap().seq, 5);
    }

    #[test]
    fn sequence_gap_detects_holes() {
        let mk = |seq| JournalRecord {
            seq,
            ts_us: 0,
            kind: JournalKind::StoreOpen,
            a: 0,
            b: 0,
            c: 0,
            gsn: 0,
        };
        assert!(sequence_gap(&[mk(1), mk(2), mk(3)]).is_none());
        assert!(sequence_gap(&[mk(1), mk(3)]).is_some());
        assert!(sequence_gap(&[]).is_none());
    }

    #[test]
    fn sink_sees_every_record_with_durability_hint() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let j = Journal::new(16, 0);
        let synced = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let (s, t) = (synced.clone(), total.clone());
        j.set_sink(Box::new(move |_rec, durable| {
            t.fetch_add(1, Ordering::Relaxed);
            if durable {
                s.fetch_add(1, Ordering::Relaxed);
            }
        }));
        j.record(JournalKind::ScanOpen, 0, 0, 0, 0); // append-only
        j.record(JournalKind::HandoffOut, 1, 0, 0, 0); // synced
        j.record(JournalKind::TxnCommit, 1, 0, 0, 42); // append-only
        assert_eq!(total.load(Ordering::Relaxed), 3);
        assert_eq!(synced.load(Ordering::Relaxed), 1);
        j.clear_sink();
        j.record(JournalKind::StoreClose, 0, 0, 0, 0);
        assert_eq!(total.load(Ordering::Relaxed), 3, "sink detached");
    }

    #[test]
    fn sink_sees_records_in_sequence_order_under_concurrency() {
        use std::sync::Arc;
        let j = Arc::new(Journal::new(16, 0));
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        let s = seen.clone();
        j.set_sink(Box::new(move |rec, _| {
            s.lock().unwrap().push(rec.seq);
        }));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        j.record(JournalKind::ScanOpen, t, i, 0, 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2000);
        // The persisted order IS the sequence order — a reordering here
        // would let a crash punch an interior hole in FLIGHT.log.
        for (i, w) in seen.windows(2).enumerate() {
            assert!(w[0] < w[1], "sink saw seq {} before {} (index {i})", w[0], w[1]);
        }
    }

    #[test]
    fn seed_respects_ring_capacity() {
        let j = Journal::new(16, 100);
        let recovered: Vec<JournalRecord> = (1..=100)
            .map(|seq| JournalRecord {
                seq,
                ts_us: 0,
                kind: JournalKind::ScanClose,
                a: 0,
                b: 0,
                c: 0,
                gsn: 0,
            })
            .collect();
        j.seed(&recovered);
        let recent = j.recent(1000);
        assert_eq!(recent.len(), 16);
        assert_eq!(recent.first().unwrap().seq, 85);
        assert!(sequence_gap(&recent).is_none());
        // New records continue the recovered numbering.
        let r = j.record(JournalKind::StoreOpen, 0, 0, 0, 0);
        assert_eq!(r.seq, 101);
    }
}
