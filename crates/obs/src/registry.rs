//! The metrics registry: named counters, gauges, and histograms.
//!
//! Names follow the Prometheus convention and may carry baked-in labels:
//! `p2kvs_queue_wait_ns{worker="0",class="write"}`. The registry is only
//! locked to *look up or create* a metric; recording goes through the
//! returned `Arc` handle and never touches the registry lock, so hot
//! paths resolve their metrics once at startup and then record with a
//! single atomic op.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{ConcurrentHistogram, Counter, Gauge};
use crate::snapshot::{HistogramStats, MetricsSnapshot};

/// Formats `base{k1="v1",k2="v2"}`; returns `base` alone when `labels` is
/// empty.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{base}{{{}}}", body.join(","))
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<ConcurrentHistogram>>,
}

/// A registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (creating if absent) the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Returns (creating if absent) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Returns (creating if absent) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<ConcurrentHistogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(ConcurrentHistogram::new()))
            .clone()
    }

    /// Convenience: set gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), HistogramStats::from(&h.snapshot())))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_formatting() {
        assert_eq!(labeled("ops", &[]), "ops");
        assert_eq!(
            labeled("ops", &[("worker", "3"), ("class", "read")]),
            "ops{worker=\"3\",class=\"read\"}"
        );
    }

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        r.set_gauge("g", 1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        r.histogram("h").record(42);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_lists_everything_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").add(1);
        r.set_gauge("depth", 4.0);
        r.histogram("lat_ns").record(100);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a_total".to_string(), 1), ("b_total".to_string(), 2)]
        );
        assert_eq!(s.gauges, vec![("depth".to_string(), 4.0)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count, 1);
    }
}
