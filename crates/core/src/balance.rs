//! Skew-aware rebalancing policy.
//!
//! The balancer closes the gap the paper's static `Hash(key) % N` layout
//! leaves open: under zipfian skew (YCSB-B, θ=0.99) a handful of shards
//! carry most of the load, and whichever workers own them saturate while
//! the rest idle. Because shards outnumber workers (default `4×`), load
//! can be evened out by **moving shard ownership** — pure queue
//! redirection, no data movement — which this module decides and
//! `P2Kvs::rebalance_once` executes via the epoch-fenced handoff.
//!
//! The policy is deliberately simple and allocation-light: per tick it
//! compares the busiest and idlest workers by accumulated per-shard
//! service time and, when the ratio between them exceeds
//! [`BalancePolicy::min_ratio`], proposes moving the hottest shard whose
//! transfer strictly reduces the pair's maximum. Proposals that cannot
//! help (the busiest worker owns a single shard, or its hottest shard is
//! larger than the gap) are skipped — oscillation is structurally
//! impossible because every accepted move lowers `max(busiest, idlest)`.

use crate::shard::ShardMap;

/// Tunables for the rebalancing decision.
#[derive(Debug, Clone, Copy)]
pub struct BalancePolicy {
    /// Trigger threshold: rebalance only when the busiest worker's load
    /// exceeds `min_ratio ×` the idlest worker's. 1.25 tolerates normal
    /// jitter; 1.0 chases noise.
    pub min_ratio: f64,
    /// Migrations proposed per tick. Handoffs are serialized and cheap
    /// (no data moves), but each quiesces the submit path once — keep
    /// this small.
    pub max_moves: usize,
}

impl Default for BalancePolicy {
    fn default() -> Self {
        BalancePolicy {
            min_ratio: 1.25,
            max_moves: 2,
        }
    }
}

/// Plans up to [`BalancePolicy::max_moves`] ownership migrations given
/// the current map, the worker count, and the per-shard load observed
/// since the last tick (`load[s]` in any consistent unit — the store
/// feeds service-time nanoseconds). Returns `(shard, target_worker)`
/// pairs; later pairs assume earlier ones applied.
pub(crate) fn plan_moves(
    map: &ShardMap,
    workers: usize,
    load: &[u64],
    policy: &BalancePolicy,
) -> Vec<(usize, usize)> {
    debug_assert_eq!(load.len(), map.shards());
    let workers = workers.max(1);
    let mut owner: Vec<usize> = (0..map.shards()).map(|s| map.owner(s)).collect();
    let mut per_worker = vec![0u64; workers];
    for (s, o) in owner.iter().enumerate() {
        per_worker[*o] += load[s];
    }
    let mut moves = Vec::new();
    for _ in 0..policy.max_moves {
        let busiest = match (0..workers).max_by_key(|w| per_worker[*w]) {
            Some(w) => w,
            None => break,
        };
        let idlest = match (0..workers).min_by_key(|w| per_worker[*w]) {
            Some(w) => w,
            None => break,
        };
        if busiest == idlest {
            break;
        }
        let hot = per_worker[busiest] as f64;
        let cold = per_worker[idlest] as f64;
        if hot < policy.min_ratio * cold.max(1.0) {
            break;
        }
        // The hottest shard on the busiest worker whose move strictly
        // reduces max(busiest, idlest): receiving it must leave the
        // idlest below the busiest's current load.
        let candidate = owner
            .iter()
            .enumerate()
            .filter(|(s, o)| {
                **o == busiest
                    && load[*s] > 0
                    && per_worker[idlest] + load[*s] < per_worker[busiest]
            })
            .max_by_key(|(s, _)| load[*s])
            .map(|(s, _)| s);
        let Some(shard) = candidate else { break };
        owner[shard] = idlest;
        per_worker[busiest] -= load[shard];
        per_worker[idlest] += load[shard];
        moves.push((shard, idlest));
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, workers: usize) -> ShardMap {
        ShardMap::initial(shards, workers)
    }

    #[test]
    fn balanced_load_plans_nothing() {
        // 8 shards, 2 workers, uniform load.
        let m = map(8, 2);
        let load = vec![100u64; 8];
        assert!(plan_moves(&m, 2, &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn skewed_load_moves_the_hot_shard_to_the_idle_worker() {
        // Worker 0 owns shards {0,2,4,6}; shard 0 is scorching.
        let m = map(8, 2);
        let mut load = vec![10u64; 8];
        load[0] = 1000;
        load[2] = 400;
        let moves = plan_moves(
            &m,
            2,
            &load,
            &BalancePolicy {
                min_ratio: 1.25,
                max_moves: 1,
            },
        );
        // Worker 0 carries 1420 vs worker 1's 40; receiving shard 0
        // leaves worker 1 at 1040 < 1420, so the hottest shard itself
        // is movable and the greedy policy takes it.
        assert_eq!(moves, vec![(0, 1)]);
    }

    #[test]
    fn movable_hot_shard_goes_to_idlest() {
        // 4 workers; worker 0 carries two hot shards, everyone else idle.
        let m = map(8, 4);
        let mut load = vec![0u64; 8];
        load[0] = 500; // worker 0
        load[4] = 450; // worker 0
        load[1] = 10; // worker 1
        let moves = plan_moves(&m, 4, &load, &BalancePolicy::default());
        assert!(!moves.is_empty());
        let (shard, target) = moves[0];
        assert!(shard == 0 || shard == 4, "a hot shard moves");
        assert_ne!(target, 0, "away from the hot worker");
    }

    #[test]
    fn single_hot_shard_larger_than_gap_stays_put() {
        // Worker 0's only loaded shard is so hot that moving it would
        // just swap which worker saturates — no move.
        let m = map(2, 2);
        let load = vec![1000u64, 10];
        assert!(plan_moves(&m, 2, &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn below_threshold_imbalance_is_tolerated() {
        let m = map(4, 2);
        // Worker 0: 110, worker 1: 100 — inside the 1.25 dead band.
        let load = vec![60u64, 50, 50, 50];
        assert!(plan_moves(&m, 2, &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn successive_moves_account_for_earlier_ones() {
        // Two hot shards on worker 0 and max_moves 2: the second move
        // must see the first one applied (both must not dogpile onto the
        // same target blindly).
        let m = map(8, 4);
        let mut load = vec![1u64; 8];
        load[0] = 300;
        load[4] = 300;
        let moves = plan_moves(
            &m,
            4,
            &load,
            &BalancePolicy {
                min_ratio: 1.1,
                max_moves: 2,
            },
        );
        assert_eq!(moves.len(), 2);
        assert_ne!(moves[0].1, moves[1].1, "hot shards spread to different workers");
    }
}
