//! Skew-aware rebalancing policy.
//!
//! The balancer closes the gap the paper's static `Hash(key) % N` layout
//! leaves open: under zipfian skew (YCSB-B, θ=0.99) a handful of shards
//! carry most of the load, and whichever workers own them saturate while
//! the rest idle. Because shards outnumber workers (default `4×`), load
//! can be evened out by **moving shard ownership** — pure queue
//! redirection, no data movement — which this module decides and
//! `P2Kvs::rebalance_once` executes via the epoch-fenced handoff.
//!
//! The policy is deliberately simple and allocation-light: per tick it
//! compares the busiest and idlest workers by accumulated per-shard
//! service time and, when the ratio between them exceeds
//! [`BalancePolicy::min_ratio`], proposes moving the hottest shard whose
//! transfer strictly reduces the pair's maximum. Proposals that cannot
//! help (the busiest worker owns a single shard, or its hottest shard is
//! larger than the gap) are skipped — oscillation is structurally
//! impossible because every accepted move lowers `max(busiest, idlest)`.

use crate::shard::ShardMap;

/// Tunables for the rebalancing decision.
#[derive(Debug, Clone, Copy)]
pub struct BalancePolicy {
    /// Trigger threshold: rebalance only when the busiest worker's load
    /// exceeds `min_ratio ×` the idlest worker's. 1.25 tolerates normal
    /// jitter; 1.0 chases noise.
    pub min_ratio: f64,
    /// Migrations proposed per tick. Handoffs are serialized and cheap
    /// (no data moves), but each quiesces the submit path once — keep
    /// this small.
    pub max_moves: usize,
}

impl Default for BalancePolicy {
    fn default() -> Self {
        BalancePolicy {
            min_ratio: 1.25,
            max_moves: 2,
        }
    }
}

/// Tunables for utilization-driven pool scaling (DESIGN.md §14). When
/// [`crate::store::P2KvsOptions::scale`] carries one, each balancer tick
/// also compares the interval's aggregate busy time against what the
/// live workers *should* absorb at `target_util`, and scales the pool
/// one worker per tick toward the derived size — retiring via the
/// epoch-fenced drain, spawning with fresh rings.
#[derive(Debug, Clone, Copy)]
pub struct ScalePolicy {
    /// Per-worker busy fraction the pool aims for. The desired size is
    /// `ceil(busy_time / (target_util × interval))`: 0.6 keeps workers
    /// ~60% busy, leaving headroom for bursts.
    pub target_util: f64,
    /// Never retire below this many workers.
    pub min_workers: usize,
    /// Never spawn above this many workers.
    pub max_workers: usize,
    /// Ticks to sit out after a scale operation before the next one —
    /// the pool must not thrash on one interval's noise (migration
    /// costs are small but not free: each drain quiesces the submit
    /// path once per shard moved).
    pub cooldown: u32,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            target_util: 0.6,
            min_workers: 1,
            max_workers: 8,
            cooldown: 2,
        }
    }
}

impl ScalePolicy {
    /// The pool size that would absorb `busy_ns` of aggregate service
    /// time over an `interval_ns` window at `target_util` per worker,
    /// clamped to `[min_workers, max_workers]`.
    pub fn desired_workers(&self, busy_ns: u64, interval_ns: u64) -> usize {
        let per_worker = (interval_ns as f64 * self.target_util).max(1.0);
        let want = (busy_ns as f64 / per_worker).ceil() as usize;
        let floor = self.min_workers.max(1);
        want.clamp(floor, self.max_workers.max(floor))
    }
}

/// Plans up to [`BalancePolicy::max_moves`] ownership migrations given
/// the current map, the **live** worker ids (the elastic pool may have
/// retired slots), and the per-shard load observed since the last tick
/// (`load[s]` in any consistent unit — the store feeds service-time
/// nanoseconds). Returns `(shard, target_worker)` pairs; later pairs
/// assume earlier ones applied.
pub(crate) fn plan_moves(
    map: &ShardMap,
    live: &[usize],
    load: &[u64],
    policy: &BalancePolicy,
) -> Vec<(usize, usize)> {
    debug_assert_eq!(load.len(), map.shards());
    if live.is_empty() {
        return Vec::new();
    }
    let slots = live.iter().max().unwrap() + 1;
    let mut owner: Vec<usize> = (0..map.shards()).map(|s| map.owner(s)).collect();
    let mut per_worker = vec![0u64; slots];
    for (s, o) in owner.iter().enumerate() {
        if *o < slots {
            per_worker[*o] += load[s];
        }
    }
    let mut moves = Vec::new();
    for _ in 0..policy.max_moves {
        let busiest = match live.iter().copied().max_by_key(|w| per_worker[*w]) {
            Some(w) => w,
            None => break,
        };
        let idlest = match live.iter().copied().min_by_key(|w| per_worker[*w]) {
            Some(w) => w,
            None => break,
        };
        if busiest == idlest {
            break;
        }
        let hot = per_worker[busiest] as f64;
        let cold = per_worker[idlest] as f64;
        if hot < policy.min_ratio * cold.max(1.0) {
            break;
        }
        // The hottest shard on the busiest worker whose move strictly
        // reduces max(busiest, idlest): receiving it must leave the
        // idlest below the busiest's current load.
        let candidate = owner
            .iter()
            .enumerate()
            .filter(|(s, o)| {
                **o == busiest
                    && load[*s] > 0
                    && per_worker[idlest] + load[*s] < per_worker[busiest]
            })
            .max_by_key(|(s, _)| load[*s])
            .map(|(s, _)| s);
        let Some(shard) = candidate else { break };
        owner[shard] = idlest;
        per_worker[busiest] -= load[shard];
        per_worker[idlest] += load[shard];
        moves.push((shard, idlest));
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, workers: usize) -> ShardMap {
        ShardMap::initial(shards, workers)
    }

    #[test]
    fn balanced_load_plans_nothing() {
        // 8 shards, 2 workers, uniform load.
        let m = map(8, 2);
        let load = vec![100u64; 8];
        assert!(plan_moves(&m, &[0, 1], &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn skewed_load_moves_the_hot_shard_to_the_idle_worker() {
        // Worker 0 owns shards {0,2,4,6}; shard 0 is scorching.
        let m = map(8, 2);
        let mut load = vec![10u64; 8];
        load[0] = 1000;
        load[2] = 400;
        let moves = plan_moves(
            &m,
            &[0, 1],
            &load,
            &BalancePolicy {
                min_ratio: 1.25,
                max_moves: 1,
            },
        );
        // Worker 0 carries 1420 vs worker 1's 40; receiving shard 0
        // leaves worker 1 at 1040 < 1420, so the hottest shard itself
        // is movable and the greedy policy takes it.
        assert_eq!(moves, vec![(0, 1)]);
    }

    #[test]
    fn movable_hot_shard_goes_to_idlest() {
        // 4 workers; worker 0 carries two hot shards, everyone else idle.
        let m = map(8, 4);
        let mut load = vec![0u64; 8];
        load[0] = 500; // worker 0
        load[4] = 450; // worker 0
        load[1] = 10; // worker 1
        let moves = plan_moves(&m, &[0, 1, 2, 3], &load, &BalancePolicy::default());
        assert!(!moves.is_empty());
        let (shard, target) = moves[0];
        assert!(shard == 0 || shard == 4, "a hot shard moves");
        assert_ne!(target, 0, "away from the hot worker");
    }

    #[test]
    fn single_hot_shard_larger_than_gap_stays_put() {
        // Worker 0's only loaded shard is so hot that moving it would
        // just swap which worker saturates — no move.
        let m = map(2, 2);
        let load = vec![1000u64, 10];
        assert!(plan_moves(&m, &[0, 1], &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn below_threshold_imbalance_is_tolerated() {
        let m = map(4, 2);
        // Worker 0: 110, worker 1: 100 — inside the 1.25 dead band.
        let load = vec![60u64, 50, 50, 50];
        assert!(plan_moves(&m, &[0, 1], &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn successive_moves_account_for_earlier_ones() {
        // Two hot shards on worker 0 and max_moves 2: the second move
        // must see the first one applied (both must not dogpile onto the
        // same target blindly).
        let m = map(8, 4);
        let mut load = vec![1u64; 8];
        load[0] = 300;
        load[4] = 300;
        let moves = plan_moves(
            &m,
            &[0, 1, 2, 3],
            &load,
            &BalancePolicy {
                min_ratio: 1.1,
                max_moves: 2,
            },
        );
        assert_eq!(moves.len(), 2);
        assert_ne!(moves[0].1, moves[1].1, "hot shards spread to different workers");
    }

    #[test]
    fn retired_slots_never_receive_moves() {
        // The elastic pool retired worker 1: the live set is {0, 2}.
        // Every shard worker 1 used to own has already been drained, so
        // the plan must only ever target live ids.
        let m = map(8, 4);
        let mut load = vec![1u64; 8];
        load[0] = 500; // worker 0
        load[4] = 400; // worker 0
        let moves = plan_moves(
            &m,
            &[0, 2, 3],
            &load,
            &BalancePolicy {
                min_ratio: 1.1,
                max_moves: 2,
            },
        );
        assert!(!moves.is_empty());
        for (_, target) in &moves {
            assert_ne!(*target, 1, "retired slot 1 must not be a target");
        }
    }

    #[test]
    fn empty_and_single_live_sets_plan_nothing() {
        let m = map(4, 2);
        let load = vec![1000u64, 0, 0, 0];
        assert!(plan_moves(&m, &[], &load, &BalancePolicy::default()).is_empty());
        assert!(plan_moves(&m, &[0], &load, &BalancePolicy::default()).is_empty());
    }

    #[test]
    fn desired_workers_tracks_aggregate_busy_time() {
        let p = ScalePolicy {
            target_util: 0.5,
            min_workers: 1,
            max_workers: 8,
            cooldown: 0,
        };
        // 2s busy over a 1s window at 50% target → 4 workers.
        assert_eq!(p.desired_workers(2_000_000_000, 1_000_000_000), 4);
        // Idle window collapses to the floor.
        assert_eq!(p.desired_workers(0, 1_000_000_000), 1);
        // Saturation clamps at the ceiling.
        assert_eq!(p.desired_workers(100_000_000_000, 1_000_000_000), 8);
    }

    #[test]
    fn desired_workers_respects_min_floor() {
        let p = ScalePolicy {
            target_util: 0.6,
            min_workers: 2,
            max_workers: 6,
            cooldown: 1,
        };
        assert_eq!(p.desired_workers(0, 1_000_000_000), 2);
        // Fractional demand rounds up: 0.7s busy at 0.6 target = 1.16…
        // workers → 2 (already the floor), 1.3s → 3.
        assert_eq!(p.desired_workers(1_300_000_000, 1_000_000_000), 3);
    }
}
