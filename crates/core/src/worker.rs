//! Worker threads: a dynamic set of owned shards each, drained with OBM.
//!
//! A worker is pinned to one core (§4.1) and owns a *set of virtual
//! shards* — engine instances reached through the shared directory in
//! [`ShardRuntime`]. Its loop is Algorithm 1 generalized to many shards:
//! dequeue a run of consecutive same-type requests, peel it into
//! per-shard groups (a stable split — per-key order is per-shard, so
//! regrouping across shards is invisible to callers), then execute each
//! group as one engine call — `write_batch` for writes, `multiget` for
//! reads — falling back to per-request calls when the engine lacks the
//! capability or the group has a single element. With one shard per
//! worker this is exactly the paper's layout.
//!
//! **Ownership migration** (DESIGN.md §9): two control markers ride the
//! queues. `Op::HandoffOut` tells the old owner to package a shard —
//! the epoch fence guarantees every request routed under the old map is
//! already ahead of the marker in its FIFO, so by the time the marker is
//! dequeued the shard's old-epoch work has fully executed. The source
//! deposits the shard's parked scan cursors in the [`HandoffDepot`] and
//! forwards `Op::ShardInstall` to the new owner, which collects the
//! parcel, installs the shard, and replays any requests it had *stashed*
//! (new-epoch requests that arrived before the install marker). The
//! engine handle itself never moves — only the right to execute against
//! it does.
//!
//! The steady-state loop performs **no per-iteration heap allocation**:
//! the batch `Vec`, the lifecycle queue-wait scratch, and the merged-call
//! scratch buffers all live across iterations (only the engine-owned
//! key/value copies inside a merged call allocate, and those belong to
//! the engine API, not the loop). The queue side is a lock-free ring with
//! a spin-then-park idle loop — see [`crate::queue`].
//!
//! **Scans are cooperative**: a worker never runs a scan longer than one
//! bounded chunk per dequeue. `Op::ScanOpen` opens an engine cursor,
//! serves the first chunk and parks the cursor in a worker-local table;
//! each `Op::ScanNext` serves one more chunk. Because every chunk is a
//! separate queue round-trip, point ops enqueued while a scan is in
//! flight are drained (and OBM-merged) between chunks instead of waiting
//! for the whole scan — the queue itself is the yield point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use p2kvs_obs::{Journal, JournalKind, SpanKind, SpanRecord, SpanRing, WorkerLifecycle};
use p2kvs_util::timing::BusyClock;

use crate::engine::{EnginePhases, KvsEngine, ScanCursor};
use crate::error::Error;
use crate::queue::{RequestQueue, DEFAULT_QUEUE_CAPACITY};
use crate::shard::{HandoffDepot, MapCell, Parcel, ShardMap, ShardStats};
use crate::types::{Op, OpClass, Request, Response, WriteOp};

/// Counters published by one worker.
#[derive(Default)]
pub struct WorkerStats {
    /// Useful processing time.
    pub busy: BusyClock,
    /// Requests completed.
    pub ops: AtomicU64,
    /// Engine calls issued (batched or not).
    pub batches: AtomicU64,
    /// Requests that were merged into multi-request batches.
    pub merged_ops: AtomicU64,
    /// Streaming scans opened (`ScanOpen` requests served).
    pub scans_opened: AtomicU64,
    /// Scan chunks served (first chunks plus resumes).
    pub scan_chunks: AtomicU64,
    /// Cursor resumptions (`ScanNext` chunks served).
    pub scan_resumes: AtomicU64,
    /// Cursors currently parked in the worker's table.
    pub scans_active: AtomicU64,
    /// Shards currently owned (gauge).
    pub shards_owned: AtomicU64,
    /// Shards handed away (migrations where this worker was the source).
    pub handoffs_out: AtomicU64,
    /// Shards installed (migrations where this worker was the target).
    pub handoffs_in: AtomicU64,
    /// Requests held for a shard whose install marker had not yet
    /// arrived, then replayed at install.
    pub stashed: AtomicU64,
    /// Stale-epoch requests forwarded to the current owner. The quiesce
    /// fence makes this path unreachable from the store's own submit
    /// paths; a nonzero value flags an external caller holding a map pin
    /// across a migration.
    pub rerouted: AtomicU64,
}

impl WorkerStats {
    /// Mean requests per engine call.
    pub fn avg_batch_size(&self) -> f64 {
        let b = self.batches.load(Ordering::Relaxed);
        if b == 0 {
            0.0
        } else {
            self.ops.load(Ordering::Relaxed) as f64 / b as f64
        }
    }
}

/// Per-worker configuration (split out of the spawn signature).
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// OBM batch bound `M` (1 disables merging).
    pub batch_max: usize,
    /// Request ring capacity (rounded up to a power of two; full queues
    /// apply backpressure to producers — see [`crate::queue`]).
    pub queue_capacity: usize,
    /// Bind the worker thread to core `id`.
    pub pin: bool,
    /// Hard cap on entries per scan chunk. Requests asking for more are
    /// clamped, so no single dequeue can head-of-line-block the queue
    /// behind a long scan. `usize::MAX` restores the old blocking
    /// behavior (used by the interference benchmark's baseline).
    pub scan_chunk_entries: usize,
    /// Hard cap on payload bytes per scan chunk (same clamping).
    pub scan_chunk_bytes: usize,
    /// Device submission queue this worker's engine I/O should ride.
    /// Installed as the thread's ambient queue at spawn (see
    /// `p2kvs_storage::ioqueue`), so WAL appends and flushes issued
    /// from the worker land on its queue without per-file plumbing.
    /// `None` leaves placement to file-hash striping.
    pub io_queue: Option<usize>,
}

/// Default per-chunk entry bound.
pub const DEFAULT_SCAN_CHUNK_ENTRIES: usize = 256;
/// Default per-chunk payload-byte bound (1 MiB).
pub const DEFAULT_SCAN_CHUNK_BYTES: usize = 1 << 20;

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            batch_max: 32,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            pin: false,
            scan_chunk_entries: DEFAULT_SCAN_CHUNK_ENTRIES,
            scan_chunk_bytes: DEFAULT_SCAN_CHUNK_BYTES,
            io_queue: None,
        }
    }
}

/// Shared routing state every worker in a store references: the
/// per-shard engine directory, every worker's queue, the live shard map,
/// the handoff side-channel, and per-shard service gauges. Engines are
/// reachable from every worker — "ownership" of a shard is the exclusive
/// right to execute against its engine, tracked by the map and the
/// workers' owned sets, never by which thread holds the handle.
pub(crate) struct ShardRuntime<E> {
    /// Engine instances, indexed by shard.
    pub engines: Vec<Arc<E>>,
    /// Every worker's queue, indexed by worker id (re-route and the
    /// install half of a handoff need to address peers). A dynamic
    /// table since the elastic pool (DESIGN.md §14): slots are
    /// installed at spawn and cleared at retire, so pushes to a
    /// vanished worker bounce like pushes to a closed ring.
    pub queues: Arc<crate::pool::QueueTable>,
    /// The live, versioned `shard → worker` map.
    pub map: Arc<MapCell>,
    /// Ferries non-clonable per-shard state (parked scan cursors)
    /// between the two workers of a handoff.
    pub depot: Arc<HandoffDepot>,
    /// Per-shard counters the balancer reads, indexed by shard.
    pub shard_stats: Vec<Arc<ShardStats>>,
    /// Causal-trace span sink shared by every worker. `None` disables
    /// tracing entirely (workers skip even the sampling check's
    /// bookkeeping beyond one branch per batch).
    pub spans: Option<Arc<SpanRing>>,
    /// The store's flight recorder: workers journal handoffs, installs
    /// and scan lifecycle events into it.
    pub journal: Option<Arc<Journal>>,
    /// The lock-free hot-record read cache, when enabled. Workers keep
    /// it coherent: writes invalidate before the ack, the read path
    /// fills with a version check, and migrations flush the moving
    /// shard (DESIGN.md §11).
    pub cache: Option<Arc<crate::cache::ReadCache>>,
    /// The storage env backing every engine instance, used to attribute
    /// device I/O deltas to traced batches. Device counters are
    /// env-global, so with concurrent workers the delta is an upper
    /// bound on the batch's own I/O — good enough for a flame view.
    pub env: Option<p2kvs_storage::EnvRef>,
    /// Rendezvous for online backups: workers deposit forked engine
    /// snapshots here as `Op::BackupFreeze` markers execute
    /// (DESIGN.md §12).
    pub backup: Arc<crate::backup::BackupHub>,
}

/// A running worker.
pub struct WorkerHandle {
    /// The worker's request queue.
    pub queue: Arc<RequestQueue>,
    /// The worker's counters.
    pub stats: Arc<WorkerStats>,
    handle: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns a standalone worker `id` over a single engine — the
    /// one-instance-per-worker special case (a private one-shard
    /// runtime). The store uses [`WorkerHandle::spawn_in`]; this wrapper
    /// serves tests and embedders that want one queue over one engine.
    pub fn spawn<E: KvsEngine>(
        id: usize,
        engine: Arc<E>,
        config: WorkerConfig,
        lifecycle: Option<WorkerLifecycle>,
    ) -> WorkerHandle {
        let queue = Arc::new(RequestQueue::with_capacity(config.queue_capacity));
        let runtime = Arc::new(ShardRuntime {
            engines: vec![engine],
            queues: Arc::new(crate::pool::QueueTable::new(vec![queue.clone()])),
            map: Arc::new(MapCell::new(ShardMap::initial(1, 1))),
            depot: Arc::new(HandoffDepot::new()),
            shard_stats: vec![Arc::new(ShardStats::default())],
            spans: None,
            journal: None,
            cache: None,
            env: None,
            backup: Arc::new(crate::backup::BackupHub::default()),
        });
        WorkerHandle::spawn_inner(id, 0, runtime, queue, config, lifecycle)
    }

    /// Spawns worker `id` inside a shared [`ShardRuntime`]. The worker
    /// drains the ring installed in the runtime's queue table at slot
    /// `id` (the pool installs it before spawning) and initially owns
    /// the shards the runtime's map assigns to `id`.
    ///
    /// When `lifecycle` is present the worker stamps every batch at
    /// dequeue and completion, publishing queue-wait and service latency
    /// histograms plus slow-request trace events.
    pub(crate) fn spawn_in<E: KvsEngine>(
        id: usize,
        runtime: Arc<ShardRuntime<E>>,
        config: WorkerConfig,
        lifecycle: Option<WorkerLifecycle>,
    ) -> WorkerHandle {
        let queue = runtime
            .queues
            .get(id)
            .expect("ring installed in the queue table before spawn");
        WorkerHandle::spawn_inner(id, id, runtime, queue, config, lifecycle)
    }

    fn spawn_inner<E: KvsEngine>(
        name_id: usize,
        windex: usize,
        rt: Arc<ShardRuntime<E>>,
        queue: Arc<RequestQueue>,
        config: WorkerConfig,
        lifecycle: Option<WorkerLifecycle>,
    ) -> WorkerHandle {
        let stats = Arc::new(WorkerStats::default());
        let q = queue.clone();
        let s = stats.clone();
        let handle = std::thread::Builder::new()
            .name(format!("p2kvs-worker-{name_id}"))
            .spawn(move || {
                if config.pin {
                    p2kvs_util::affinity::pin_to_core(name_id);
                }
                if config.io_queue.is_some() {
                    p2kvs_storage::set_thread_io_queue(config.io_queue);
                }
                let max = config.batch_max.max(1);
                // All loop state is allocated once and reused: the
                // steady-state iteration touches no allocator.
                let mut batch: Vec<Request> = Vec::with_capacity(max);
                let mut group: Vec<Request> = Vec::with_capacity(max);
                let mut spill: Vec<Request> = Vec::with_capacity(max);
                let mut waits: Vec<u64> = Vec::with_capacity(max);
                // Sampled (trace_id, enqueue_us) pairs of the current
                // group — preallocated so tracing stays off the
                // allocator in steady state.
                let mut traced: Vec<(u64, u64)> = Vec::with_capacity(max);
                let mut batch_seq: u64 = 0;
                let mut scratch = BatchScratch::default();
                // Shards this worker owns, each carrying its own parked
                // scan cursors (the table travels with the shard).
                let mut owned: HashMap<u64, ScanTable> = rt
                    .map
                    .pin()
                    .shards_of(windex)
                    .into_iter()
                    .map(|sh| (sh as u64, ScanTable::default()))
                    .collect();
                s.shards_owned.store(owned.len() as u64, Ordering::Relaxed);
                for sh in owned.keys() {
                    rt.shard_stats[*sh as usize].owner.store(windex, Ordering::Relaxed);
                }
                // New-epoch requests for a shard whose install marker has
                // not arrived yet, replayed FIFO at install.
                let mut stash: HashMap<u64, Vec<Request>> = HashMap::new();
                while q.pop_batch_into(max, &mut batch) {
                    // Control markers are Solo-class: always a batch of 1.
                    match batch[0].op {
                        Op::HandoffOut { shard } => {
                            let req = batch.pop().expect("solo batch");
                            handoff_out(windex, &rt, &mut owned, &mut stash, &s, &config, shard);
                            req.finish(Ok(Response::Done));
                            continue;
                        }
                        Op::ShardInstall { shard } => {
                            let req = batch.pop().expect("solo batch");
                            install_shard(windex, &rt, &mut owned, &mut stash, &s, &config, shard);
                            req.finish(Ok(Response::Done));
                            continue;
                        }
                        _ => {}
                    }
                    // The drained run is same-class but may interleave
                    // this worker's shards; peel it into per-shard
                    // groups (a stable split, so per-key order — which
                    // is per-shard — is untouched) and execute each as
                    // one engine call. Without the split a worker owning
                    // several shards would see alternating-shard runs
                    // and OBM would degrade to singleton batches.
                    while !batch.is_empty() {
                        let shard = batch[0].shard;
                        group.clear();
                        if batch.iter().all(|r| r.shard == shard) {
                            std::mem::swap(&mut group, &mut batch);
                        } else {
                            spill.clear();
                            for req in batch.drain(..) {
                                if req.shard == shard {
                                    group.push(req);
                                } else {
                                    spill.push(req);
                                }
                            }
                            std::mem::swap(&mut batch, &mut spill);
                        }
                        if !owned.contains_key(&shard) {
                            // Not ours (anymore / yet): stash or forward.
                            for req in group.drain(..) {
                                reroute_or_stash(windex, &rt, &mut stash, &s, req);
                            }
                            continue;
                        }
                        // The backup freeze marker rides the ordinary
                        // ownership check above (unlike the handoff
                        // markers): if the shard migrated, the marker is
                        // stashed or forwarded like any request and the
                        // snapshot forks on whichever worker owns the
                        // shard when it finally executes.
                        if matches!(group[0].op, Op::BackupFreeze { .. }) {
                            let req = group.pop().expect("solo batch");
                            freeze_shard(windex, &rt, shard, req);
                            continue;
                        }
                        // Lifecycle stamps: queue wait ends at dequeue,
                        // service covers dequeue -> completion (requests
                        // in one OBM batch complete together).
                        let dequeued = Instant::now();
                        let class = group[0].op.class();
                        let n = group.len() as u64;
                        // "Scan active" means a parked cursor exists
                        // *before* this batch: these are the point ops
                        // whose latency a concurrent scan could have
                        // wrecked.
                        let scan_active = owned.values().any(|t| !t.is_empty());
                        if lifecycle.is_some() {
                            waits.clear();
                            waits.extend(group.iter().map(|r| {
                                dequeued.saturating_duration_since(r.enqueued).as_nanos() as u64
                            }));
                        }
                        let engine = &rt.engines[shard as usize];
                        let scans = owned.get_mut(&shard).expect("ownership checked above");
                        // Collect the group's sampled requests. The
                        // pre-call engine/device clocks are read only
                        // when a sampled request is actually present,
                        // so unsampled batches pay one branch.
                        batch_seq += 1;
                        traced.clear();
                        let mut pre: Option<(EnginePhases, _)> = None;
                        if let Some(ring) = rt.spans.as_deref() {
                            for r in group.iter() {
                                if r.trace.is_sampled() {
                                    traced.push((r.trace.id, ring.stamp(r.enqueued)));
                                }
                            }
                            if !traced.is_empty() {
                                pre = Some((
                                    engine.phase_clocks(),
                                    rt.env.as_ref().map(|e| e.io_stats()),
                                ));
                            }
                        }
                        let t_call = Instant::now();
                        s.busy.time(|| {
                            execute_batch(
                                &**engine,
                                &mut group,
                                &s,
                                &mut scratch,
                                scans,
                                &config,
                                rt.journal.as_deref(),
                                rt.cache.as_deref(),
                            )
                        });
                        if let (Some(ring), Some((pre_ph, pre_io))) = (rt.spans.as_deref(), pre) {
                            let t_end = Instant::now();
                            let io = pre_io
                                .map(|p| (p, rt.env.as_ref().expect("pre_io implies env").io_stats()));
                            record_batch_spans(
                                ring,
                                windex as u32,
                                shard as u32,
                                &traced,
                                ring.stamp(dequeued),
                                ring.stamp(t_call),
                                ring.stamp(t_end),
                                batch_seq,
                                n as u32,
                                class,
                                (pre_ph, engine.phase_clocks()),
                                io,
                            );
                        }
                        rt.shard_stats[shard as usize].record(n, dequeued.elapsed());
                        if let Some(lc) = &lifecycle {
                            let service_ns = dequeued.elapsed().as_nanos() as u64;
                            lc.observe(class.index(), &waits, service_ns);
                            if scan_active && class != OpClass::Solo {
                                lc.observe_point_during_scan(waits.len(), service_ns);
                            }
                        }
                    }
                }
                // Queue closed and drained: an install marker can no
                // longer arrive. If the parcel is already in the depot,
                // finish the stashed requests ourselves; otherwise fail
                // them — their store is shutting down.
                for (shard, reqs) in stash.drain() {
                    if let Some(parcel) = rt.depot.take(shard) {
                        let mut scans = parcel.scans;
                        // The source debited its scans_active gauge at
                        // handoff; credit the parked cursors here before
                        // executing, so a stashed ScanClose decrements a
                        // gauge that was actually incremented instead of
                        // underflowing to u64::MAX.
                        s.scans_active.fetch_add(scans.len() as u64, Ordering::Relaxed);
                        s.ops.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                        s.batches.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                        for req in reqs {
                            execute_one(
                                &*rt.engines[shard as usize],
                                req,
                                &s,
                                &mut scans,
                                &config,
                                rt.journal.as_deref(),
                                rt.cache.as_deref(),
                            );
                        }
                        // Whatever is still parked dies with the store.
                        s.scans_active.fetch_sub(scans.len() as u64, Ordering::Relaxed);
                        rt.depot.complete(shard);
                    } else {
                        for req in reqs {
                            req.finish_err(&Error::Closed);
                        }
                        rt.depot.abort(shard);
                    }
                }
            })
            .expect("spawn p2kvs worker");
        WorkerHandle {
            queue,
            stats,
            handle: Some(handle),
        }
    }

    /// Closes the queue and joins the thread (drains pending requests).
    pub fn shutdown(&mut self) {
        self.queue.close();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Source half of a migration: package `shard` and signal the target.
/// Runs when the `HandoffOut` marker is dequeued — the epoch fence
/// guarantees every old-epoch request for the shard is already executed.
fn handoff_out<E: KvsEngine>(
    windex: usize,
    rt: &ShardRuntime<E>,
    owned: &mut HashMap<u64, ScanTable>,
    stash: &mut HashMap<u64, Vec<Request>>,
    stats: &WorkerStats,
    config: &WorkerConfig,
    shard: u64,
) {
    let Some(scans) = owned.remove(&shard) else {
        // Duplicate / stale marker for a shard we no longer own: settle
        // so the migrator is not left waiting on a phase that will never
        // advance.
        rt.depot.abort(shard);
        return;
    };
    stats.handoffs_out.fetch_add(1, Ordering::Relaxed);
    stats.shards_owned.store(owned.len() as u64, Ordering::Relaxed);
    stats.scans_active.fetch_sub(scans.len() as u64, Ordering::Relaxed);
    if let Some(j) = rt.journal.as_deref() {
        j.record(JournalKind::HandoffOut, shard, windex as u64, scans.len() as u64, 0);
    }
    flush_cache_shard(rt, shard);
    rt.depot.deposit(shard, Parcel { scans });
    let target = rt.map.owner(shard as usize);
    if target == windex {
        // The map points back at us (no-op migration): reinstall locally
        // instead of a push-to-self, which could deadlock the consumer
        // against its own full ring.
        install_shard(windex, rt, owned, stash, stats, config, shard);
        return;
    }
    let req = Request::asynchronous(Op::ShardInstall { shard }, Box::new(|_| {})).on_shard(shard);
    if rt.queues.push_to(target, req).is_err() {
        // Target queue closed or retired (shutdown): drop the parcel —
        // parked cursors release their snapshots — and settle the
        // handoff.
        rt.depot.abort(shard);
    }
}

/// Target half of a migration: collect the parcel, own the shard, and
/// replay stashed requests in arrival order.
fn install_shard<E: KvsEngine>(
    windex: usize,
    rt: &ShardRuntime<E>,
    owned: &mut HashMap<u64, ScanTable>,
    stash: &mut HashMap<u64, Vec<Request>>,
    stats: &WorkerStats,
    config: &WorkerConfig,
    shard: u64,
) {
    let scans = rt.depot.take(shard).map(|p| p.scans).unwrap_or_default();
    stats.handoffs_in.fetch_add(1, Ordering::Relaxed);
    stats.scans_active.fetch_add(scans.len() as u64, Ordering::Relaxed);
    if let Some(j) = rt.journal.as_deref() {
        j.record(JournalKind::ShardInstall, shard, windex as u64, scans.len() as u64, 0);
    }
    // Flushed on both halves of the migration (belt and braces): any
    // fill that raced the handoff — on either worker — is dropped
    // before the new owner serves traffic for the shard.
    flush_cache_shard(rt, shard);
    owned.insert(shard, scans);
    stats.shards_owned.store(owned.len() as u64, Ordering::Relaxed);
    rt.shard_stats[shard as usize].owner.store(windex, Ordering::Relaxed);
    rt.depot.complete(shard);
    if let Some(reqs) = stash.remove(&shard) {
        let started = Instant::now();
        let n = reqs.len() as u64;
        stats.ops.fetch_add(n, Ordering::Relaxed);
        stats.batches.fetch_add(n, Ordering::Relaxed);
        let engine = &rt.engines[shard as usize];
        let scans = owned.get_mut(&shard).expect("just installed");
        for req in reqs {
            // A backup freeze marker stashed during the migration forks
            // its snapshot here, after the replayed writes ahead of it —
            // arrival order is preserved across the handoff.
            if matches!(req.op, Op::BackupFreeze { .. }) {
                freeze_shard(windex, rt, shard, req);
                continue;
            }
            execute_one(
                &**engine,
                req,
                stats,
                scans,
                config,
                rt.journal.as_deref(),
                rt.cache.as_deref(),
            );
        }
        rt.shard_stats[shard as usize].record(n, started.elapsed());
    }
}

/// Executes a `BackupFreeze` marker: forks the shard's engine-level
/// snapshot, deposits it in the backup hub, journals the freeze, and
/// acks the coordinator. Runs on whichever worker owns the shard when
/// the marker is dequeued (or replayed from a migration stash) — by
/// queue FIFO order the snapshot contains exactly the writes enqueued
/// ahead of the marker, which the coordinator's freeze protocol pins to
/// the GSN horizon. The fork itself is quick (a pinned LSM snapshot, an
/// index clone, or an eager in-memory dump); the expensive streaming
/// happens later, off the worker, from the deposited cursor.
fn freeze_shard<E: KvsEngine>(windex: usize, rt: &ShardRuntime<E>, shard: u64, req: Request) {
    match rt.engines[shard as usize].snapshot_for_backup() {
        Ok(source) => {
            let fidelity = source.fidelity;
            if let Some(horizon) = rt.backup.deposit(shard as u32, source) {
                if let Some(j) = rt.journal.as_deref() {
                    j.record(
                        JournalKind::ShardFrozen,
                        shard,
                        windex as u64,
                        fidelity.code(),
                        horizon,
                    );
                }
            }
            // A deposit with no open session is a stray marker from a
            // failed coordinator: the snapshot is dropped, the ack
            // still flows so nothing waits forever.
            req.finish(Ok(Response::Done));
        }
        Err(e) => req.finish_err(&e),
    }
}

/// Drops `shard`'s read-cache entries and journals the flush. Called on
/// both halves of a migration so cached values can never outlive the
/// ownership epoch they were filled under.
fn flush_cache_shard<E>(rt: &ShardRuntime<E>, shard: u64) {
    if let Some(c) = rt.cache.as_deref() {
        let (entries, bytes) = c.flush_shard(shard as u32);
        if let Some(j) = rt.journal.as_deref() {
            j.record(JournalKind::CacheFlush, shard, entries, bytes, 0);
        }
    }
}

/// Handles a request for a shard this worker does not own: stash it if
/// the map says the shard is migrating *to* us, else forward it to the
/// current owner.
fn reroute_or_stash<E: KvsEngine>(
    windex: usize,
    rt: &ShardRuntime<E>,
    stash: &mut HashMap<u64, Vec<Request>>,
    stats: &WorkerStats,
    req: Request,
) {
    let owner = rt.map.owner(req.shard as usize);
    if owner == windex {
        // We are the incoming owner; the install marker is still in
        // flight. Holding the request (replayed FIFO at install)
        // preserves arrival order.
        stats.stashed.fetch_add(1, Ordering::Relaxed);
        stash.entry(req.shard).or_default().push(req);
    } else {
        // Stale-epoch request — defensive only: the store's submit paths
        // hold a map pin across their pushes, and the migrator publishes
        // the HandoffOut marker only after those pins quiesce, so its
        // own traffic can never land here.
        stats.rerouted.fetch_add(1, Ordering::Relaxed);
        if let Err(r) = rt.queues.push_to(owner, req) {
            r.finish_err(&Error::Closed);
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Parked streaming-scan cursors of **one shard**, keyed by the id
/// handed to the client in [`Response::Chunk`]. Lives on the owning
/// worker's thread and travels with the shard during a handoff (ids are
/// scoped per shard, so merged tables never collide); dropped cursors
/// release their engine snapshots.
#[derive(Default)]
pub(crate) struct ScanTable {
    next_id: u64,
    cursors: HashMap<u64, ScanCursor>,
}

impl ScanTable {
    fn insert(&mut self, cursor: ScanCursor) -> u64 {
        self.next_id += 1;
        self.cursors.insert(self.next_id, cursor);
        self.next_id
    }

    fn is_empty(&self) -> bool {
        self.cursors.is_empty()
    }

    fn len(&self) -> usize {
        self.cursors.len()
    }
}

/// Reusable buffers for merged engine calls, allocated once per worker.
#[derive(Default)]
struct BatchScratch {
    ops: Vec<WriteOp>,
    keys: Vec<Vec<u8>>,
}

/// Executes one OBM batch against the engine, draining `batch` (its
/// allocation is the caller's and is reused across calls). `scans` is
/// the target shard's cursor table.
#[allow(clippy::too_many_arguments)]
fn execute_batch<E: KvsEngine>(
    engine: &E,
    batch: &mut Vec<Request>,
    stats: &WorkerStats,
    scratch: &mut BatchScratch,
    scans: &mut ScanTable,
    config: &WorkerConfig,
    journal: Option<&Journal>,
    cache: Option<&crate::cache::ReadCache>,
) {
    let n = batch.len() as u64;
    stats.ops.fetch_add(n, Ordering::Relaxed);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    let shard = batch[0].shard as u32;
    let caps = engine.capabilities();
    match batch[0].op.class() {
        OpClass::Write if batch.len() > 1 && caps.batch_write => {
            // Only requests that actually ride a merged engine call count
            // as merged; engines without the fast path fall through to
            // per-request execution below and must not inflate the OBM
            // merge ratio.
            stats.merged_ops.fetch_add(n, Ordering::Relaxed);
            // Merge the run into one WriteBatch (Fig 10a).
            scratch.ops.clear();
            scratch.ops.extend(batch.iter().map(|r| match &r.op {
                Op::Put { key, value } => WriteOp::Put {
                    key: key.clone(),
                    value: value.clone(),
                },
                Op::Delete { key } => WriteOp::Delete { key: key.clone() },
                other => unreachable!("non-write op {other:?} in write batch"),
            }));
            let outcome = engine.write_batch(&scratch.ops, 0);
            scratch.ops.clear();
            // Coherence: invalidate after the engine write but before
            // any ack, so an acked writer can never re-read its old
            // value from the cache. A failed batch invalidates too —
            // the engine's state is uncertain, the cache must not be.
            if let Some(c) = cache {
                for req in batch.iter() {
                    match &req.op {
                        Op::Put { key, .. } | Op::Delete { key } => c.invalidate(shard, key),
                        other => unreachable!("non-write op {other:?} in write batch"),
                    }
                }
            }
            match outcome {
                Ok(()) => {
                    for req in batch.drain(..) {
                        req.finish(Ok(Response::Done));
                    }
                }
                Err(e) => {
                    for req in batch.drain(..) {
                        req.finish_err(&e);
                    }
                }
            }
        }
        OpClass::Read if batch.len() > 1 && caps.multiget => {
            stats.merged_ops.fetch_add(n, Ordering::Relaxed);
            // Merge the run into one multiget (Fig 10b).
            scratch.keys.clear();
            scratch.keys.extend(batch.iter().map(|r| match &r.op {
                Op::Get { key } => key.clone(),
                other => unreachable!("non-read op {other:?} in read batch"),
            }));
            // Fill-on-miss version snapshot: taken before the engine
            // read so any write that lands in between bumps it and the
            // fill self-evicts instead of installing stale data.
            let seen_version = cache.map(|c| c.version(shard));
            let outcome = engine.multiget(&scratch.keys);
            match outcome {
                Ok(values) => {
                    for (req, v) in batch.drain(..).zip(values) {
                        if let (Some(c), Some(val)) = (cache, &v) {
                            if let Op::Get { key } = &req.op {
                                if c.admit(shard, key) {
                                    c.fill(shard, key, val, seen_version.unwrap_or(0));
                                }
                            }
                        }
                        req.finish(Ok(Response::Value(v)));
                    }
                }
                Err(e) => {
                    for req in batch.drain(..) {
                        req.finish_err(&e);
                    }
                }
            }
            scratch.keys.clear();
        }
        _ => {
            // Single request, or the engine lacks the batched fast path.
            for req in batch.drain(..) {
                execute_one(engine, req, stats, scans, config, journal, cache);
            }
        }
    }
}

/// Serves one bounded chunk, opening the cursor first for `ScanOpen`.
/// The cursor parks in `scans` between chunks; it is removed on
/// exhaustion, on error (a failed cursor must not leak its snapshot),
/// and on explicit close.
fn execute_scan<E: KvsEngine>(
    engine: &E,
    op: Op,
    shard: u64,
    stats: &WorkerStats,
    scans: &mut ScanTable,
    config: &WorkerConfig,
    journal: Option<&Journal>,
) -> crate::error::Result<Response> {
    // Flight-recorder shorthand: a = shard, b = cursor id.
    let jrec = |kind: JournalKind, id: u64| {
        if let Some(j) = journal {
            j.record(kind, shard, id, 0, 0);
        }
    };
    let clamp = |limit: usize, max_bytes: usize| {
        (
            limit.min(config.scan_chunk_entries).max(1),
            max_bytes.min(config.scan_chunk_bytes).max(1),
        )
    };
    match op {
        Op::ScanOpen {
            start,
            end,
            limit,
            max_bytes,
        } => {
            let (limit, max_bytes) = clamp(limit, max_bytes);
            let mut cursor = engine.open_cursor(&start, end.as_deref())?;
            let chunk = engine.scan_chunk(&mut cursor, limit, max_bytes)?;
            stats.scans_opened.fetch_add(1, Ordering::Relaxed);
            stats.scan_chunks.fetch_add(1, Ordering::Relaxed);
            let cursor = if chunk.done {
                None
            } else {
                stats.scans_active.fetch_add(1, Ordering::Relaxed);
                let id = scans.insert(cursor);
                jrec(JournalKind::ScanOpen, id);
                Some(id)
            };
            Ok(Response::Chunk {
                entries: chunk.entries,
                cursor,
            })
        }
        Op::ScanNext {
            cursor: id,
            limit,
            max_bytes,
        } => {
            let (limit, max_bytes) = clamp(limit, max_bytes);
            let cursor = scans
                .cursors
                .get_mut(&id)
                .ok_or_else(|| crate::error::Error::Engine(format!("unknown scan cursor {id}")))?;
            match engine.scan_chunk(cursor, limit, max_bytes) {
                Ok(chunk) => {
                    stats.scan_chunks.fetch_add(1, Ordering::Relaxed);
                    stats.scan_resumes.fetch_add(1, Ordering::Relaxed);
                    let cursor = if chunk.done {
                        scans.cursors.remove(&id);
                        stats.scans_active.fetch_sub(1, Ordering::Relaxed);
                        jrec(JournalKind::ScanClose, id);
                        None
                    } else {
                        Some(id)
                    };
                    Ok(Response::Chunk {
                        entries: chunk.entries,
                        cursor,
                    })
                }
                Err(e) => {
                    scans.cursors.remove(&id);
                    stats.scans_active.fetch_sub(1, Ordering::Relaxed);
                    jrec(JournalKind::ScanClose, id);
                    Err(e)
                }
            }
        }
        Op::ScanClose { cursor } => {
            if scans.cursors.remove(&cursor).is_some() {
                stats.scans_active.fetch_sub(1, Ordering::Relaxed);
                jrec(JournalKind::ScanClose, cursor);
            }
            Ok(Response::Done)
        }
        other => unreachable!("non-scan op {other:?} in execute_scan"),
    }
}

/// Executes one request without batching.
fn execute_one<E: KvsEngine>(
    engine: &E,
    req: Request,
    stats: &WorkerStats,
    scans: &mut ScanTable,
    config: &WorkerConfig,
    journal: Option<&Journal>,
    cache: Option<&crate::cache::ReadCache>,
) {
    let Request { op, completion, shard, .. } = req;
    let result = match op {
        Op::Put { key, value } => {
            let r = engine.put(&key, &value).map(|()| Response::Done);
            if let Some(c) = cache {
                c.invalidate(shard as u32, &key);
            }
            r
        }
        Op::Delete { key } => {
            let r = engine.delete(&key).map(|()| Response::Done);
            if let Some(c) = cache {
                c.invalidate(shard as u32, &key);
            }
            r
        }
        Op::Get { key } => {
            let seen_version = cache.map(|c| c.version(shard as u32));
            let r = engine.get(&key);
            if let (Some(c), Ok(Some(v))) = (cache, &r) {
                if c.admit(shard as u32, &key) {
                    c.fill(shard as u32, &key, v, seen_version.unwrap_or(0));
                }
            }
            r.map(Response::Value)
        }
        op @ (Op::ScanOpen { .. } | Op::ScanNext { .. } | Op::ScanClose { .. }) => {
            execute_scan(engine, op, shard, stats, scans, config, journal)
        }
        Op::TxnBatch { ops, gsn } => {
            let r = engine.write_batch(&ops, gsn).map(|()| Response::Done);
            if let Some(c) = cache {
                for w in &ops {
                    c.invalidate(shard as u32, w.key());
                }
            }
            r
        }
        // Control markers are intercepted by the worker loop (handoff
        // markers before the routing decision, the backup freeze after
        // it); reaching this point means either a caller injected one
        // through a non-worker execution path, or a freeze marker was
        // still stashed when the store shut down — the backup fails
        // cleanly instead of forking a snapshot nobody will stream.
        Op::HandoffOut { .. } | Op::ShardInstall { .. } | Op::BackupFreeze { .. } => {
            Err(Error::Unsupported("control markers outside a worker loop"))
        }
    };
    match completion {
        crate::types::Completion::Sync(c) => c.fulfill(result),
        crate::types::Completion::Async(cb) => cb(result),
    }
}

/// Records the span tree of one traced OBM batch: per sampled request a
/// `queue_wait` span (enqueue → dequeue), an `obm_batch` span covering
/// the whole merged call, an `engine` span for the engine call proper,
/// engine-phase child spans synthesized from the instance's cumulative
/// WAL/MemTable/read clocks (laid out sequentially from the call start
/// and clamped into the engine window — the phases really do run in
/// that order for a write group), and a `device_io` span from the env's
/// busy/byte deltas.
#[allow(clippy::too_many_arguments)]
fn record_batch_spans(
    ring: &SpanRing,
    worker: u32,
    shard: u32,
    traced: &[(u64, u64)],
    dequeued_us: u64,
    call_us: u64,
    end_us: u64,
    batch_id: u64,
    batch_size: u32,
    class: OpClass,
    phases: (EnginePhases, EnginePhases),
    io: Option<(
        p2kvs_storage::IoStatsSnapshot,
        p2kvs_storage::IoStatsSnapshot,
    )>,
) {
    let engine_dur = end_us.saturating_sub(call_us).max(1);
    let (pre, post) = phases;
    let phase_deltas = [
        (SpanKind::PhaseWal, post.wal_ns.saturating_sub(pre.wal_ns)),
        (
            SpanKind::PhaseMemtable,
            post.memtable_ns.saturating_sub(pre.memtable_ns),
        ),
        (SpanKind::PhaseRead, post.read_ns.saturating_sub(pre.read_ns)),
    ];
    let device = io.as_ref().map(|(pre_io, post_io)| {
        (
            post_io.busy_ns.saturating_sub(pre_io.busy_ns),
            post_io.total_bytes().saturating_sub(pre_io.total_bytes()),
        )
    });
    for &(trace_id, enq_us) in traced {
        let base = SpanRecord {
            trace_id,
            kind: SpanKind::QueueWait,
            worker,
            shard,
            start_us: enq_us,
            dur_us: dequeued_us.saturating_sub(enq_us),
            batch_id,
            batch_size,
            aux: 0,
        };
        ring.record(base);
        ring.record(SpanRecord {
            kind: SpanKind::Batch,
            start_us: dequeued_us,
            dur_us: end_us.saturating_sub(dequeued_us),
            aux: class.index() as u64,
            ..base
        });
        ring.record(SpanRecord {
            kind: SpanKind::Engine,
            start_us: call_us,
            dur_us: engine_dur,
            ..base
        });
        let mut offset = 0u64;
        for (kind, delta_ns) in phase_deltas {
            if delta_ns == 0 {
                continue;
            }
            let remaining = engine_dur.saturating_sub(offset);
            if remaining == 0 {
                break;
            }
            let dur = (delta_ns / 1_000).clamp(1, remaining);
            ring.record(SpanRecord {
                kind,
                start_us: call_us + offset,
                dur_us: dur,
                ..base
            });
            offset += dur;
        }
        if let Some((busy_ns, bytes)) = device {
            if busy_ns > 0 || bytes > 0 {
                ring.record(SpanRecord {
                    kind: SpanKind::DeviceIo,
                    start_us: call_us,
                    dur_us: (busy_ns / 1_000).clamp(1, engine_dur),
                    aux: bytes,
                    ..base
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineFactory, LsmFactory};
    use std::path::Path;

    fn test_config() -> WorkerConfig {
        WorkerConfig {
            batch_max: 32,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            pin: false,
            ..WorkerConfig::default()
        }
    }

    fn worker() -> (WorkerHandle, Arc<lsmkv::Db>) {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = Arc::new(factory.open(Path::new("w0"), None).unwrap());
        (
            WorkerHandle::spawn(0, engine.clone(), test_config(), None),
            engine,
        )
    }

    /// A minimal engine with neither `batch_write` nor `multiget`: OBM
    /// must fall back to per-request execution and count no merges.
    struct NoCapsEngine {
        map: std::sync::Mutex<std::collections::BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl NoCapsEngine {
        fn new() -> NoCapsEngine {
            NoCapsEngine {
                map: std::sync::Mutex::new(std::collections::BTreeMap::new()),
            }
        }
    }

    impl KvsEngine for NoCapsEngine {
        fn put(&self, key: &[u8], value: &[u8]) -> crate::error::Result<()> {
            self.map
                .lock()
                .unwrap()
                .insert(key.to_vec(), value.to_vec());
            Ok(())
        }

        fn delete(&self, key: &[u8]) -> crate::error::Result<()> {
            self.map.lock().unwrap().remove(key);
            Ok(())
        }

        fn write_batch(&self, ops: &[WriteOp], _gsn: u64) -> crate::error::Result<()> {
            for op in ops {
                match op {
                    WriteOp::Put { key, value } => self.put(key, value)?,
                    WriteOp::Delete { key } => self.delete(key)?,
                }
            }
            Ok(())
        }

        fn get(&self, key: &[u8]) -> crate::error::Result<Option<Vec<u8>>> {
            Ok(self.map.lock().unwrap().get(key).cloned())
        }

        fn scan(
            &self,
            start: &[u8],
            count: usize,
        ) -> crate::error::Result<Vec<(Vec<u8>, Vec<u8>)>> {
            Ok(self
                .map
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(count)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }

        fn range(&self, begin: &[u8], end: &[u8]) -> crate::error::Result<Vec<(Vec<u8>, Vec<u8>)>> {
            Ok(self
                .map
                .lock()
                .unwrap()
                .range(begin.to_vec()..end.to_vec())
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect())
        }

        fn capabilities(&self) -> crate::engine::Capabilities {
            crate::engine::Capabilities {
                batch_write: false,
                multiget: false,
                native_cursor: false,
            }
        }

        fn sync(&self) -> crate::error::Result<()> {
            Ok(())
        }

        fn mem_usage(&self) -> usize {
            0
        }
    }

    fn put_batch(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| {
                Request::sync(Op::Put {
                    key: format!("k{i}").into_bytes(),
                    value: b"v".to_vec(),
                })
                .0
            })
            .collect()
    }

    #[test]
    fn merged_ops_not_counted_without_batch_capability() {
        // Regression: merged_ops used to be bumped before the capability
        // check, so engines without batch_write/multiget still reported
        // merged requests.
        let engine = NoCapsEngine::new();
        let stats = WorkerStats::default();
        let mut scratch = BatchScratch::default();
        let mut scans = ScanTable::default();
        execute_batch(&engine, &mut put_batch(8), &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert_eq!(stats.ops.load(Ordering::Relaxed), 8);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 1);
        assert_eq!(
            stats.merged_ops.load(Ordering::Relaxed),
            0,
            "no-caps engine executes per request; nothing merged"
        );
        let mut reads: Vec<Request> = (0..4)
            .map(|i| {
                Request::sync(Op::Get {
                    key: format!("k{i}").into_bytes(),
                })
                .0
            })
            .collect();
        execute_batch(&engine, &mut reads, &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert_eq!(stats.merged_ops.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn merged_ops_counted_with_batch_capability() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = factory.open(Path::new("w-merged"), None).unwrap();
        let stats = WorkerStats::default();
        let mut scratch = BatchScratch::default();
        let mut scans = ScanTable::default();
        execute_batch(&engine, &mut put_batch(5), &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert_eq!(stats.ops.load(Ordering::Relaxed), 5);
        assert_eq!(
            stats.merged_ops.load(Ordering::Relaxed),
            5,
            "batch-write engine merges the whole run"
        );
        // A single-request batch is never a merge.
        execute_batch(&engine, &mut put_batch(1), &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert_eq!(stats.merged_ops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn merged_batch_engine_error_completes_every_request_with_the_error() {
        // An engine write_batch failure on an OBM-merged batch must fan
        // the error out to *every* rider: no hung waiters, no request
        // acked Ok for data the engine never applied.
        let faulty = std::sync::Arc::new(p2kvs_storage::FaultyEnv::over_mem());
        let mut opts = lsmkv::Options::for_test();
        opts.env = faulty.clone();
        opts.sync = lsmkv::SyncPolicy::Always;
        let factory = LsmFactory::new(opts);
        let engine = factory.open(Path::new("w-fault"), None).unwrap();
        faulty.set_plan(p2kvs_storage::FaultPlan {
            fail_sync: Some(faulty.sync_points() + 1),
            ..Default::default()
        });
        let stats = WorkerStats::default();
        let mut scratch = BatchScratch::default();
        let mut scans = ScanTable::default();
        let (mut batch, waiters): (Vec<_>, Vec<_>) = (0..8)
            .map(|i| {
                Request::sync(Op::Put {
                    key: format!("k{i}").into_bytes(),
                    value: b"v".to_vec(),
                })
            })
            .unzip();
        execute_batch(&engine, &mut batch, &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert!(batch.is_empty(), "every request was completed");
        for (i, w) in waiters.into_iter().enumerate() {
            let err = w.wait().expect_err("every merged request must observe the engine error");
            assert!(err.to_string().contains("injected fault"), "request {i}: {err}");
        }
        assert_eq!(stats.merged_ops.load(Ordering::Relaxed), 8, "the batch was merged");
    }

    #[test]
    fn worker_thread_survives_engine_error_and_keeps_serving() {
        // End-to-end through the ring: a transient injected sync error
        // fails some requests, but the worker neither hangs nor dies, and
        // later requests succeed.
        let faulty = std::sync::Arc::new(p2kvs_storage::FaultyEnv::over_mem());
        let mut opts = lsmkv::Options::for_test();
        opts.env = faulty.clone();
        opts.sync = lsmkv::SyncPolicy::Always;
        let engine = LsmFactory::new(opts).open(Path::new("w-fault-e2e"), None).unwrap();
        let mut worker = WorkerHandle::spawn(0, std::sync::Arc::new(engine), WorkerConfig::default(), None);

        faulty.set_plan(p2kvs_storage::FaultPlan {
            fail_sync: Some(faulty.sync_points() + 1),
            ..Default::default()
        });
        let mut waiters = Vec::new();
        for i in 0..16 {
            let (req, w) = Request::sync(Op::Put {
                key: format!("k{i}").into_bytes(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req);
            waiters.push(w);
        }
        // Bounded wait: a hung waiter must fail the test, not wedge it.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let outcomes: Vec<bool> = waiters.into_iter().map(|w| w.wait().is_ok()).collect();
            let _ = tx.send(outcomes);
        });
        let outcomes = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("all requests must complete after an engine error");
        let failed = outcomes.iter().filter(|ok| !**ok).count();
        assert!(failed >= 1, "the injected sync error must fail at least one request");

        // The fault was one-shot: the worker still serves traffic.
        let (req, w) = Request::sync(Op::Put { key: b"after".to_vec(), value: b"v".to_vec() });
        worker.queue.push(req);
        assert_eq!(w.wait().unwrap(), Response::Done);
        worker.shutdown();
    }

    #[test]
    fn execute_batch_drains_and_reuses_the_vec() {
        let engine = NoCapsEngine::new();
        let stats = WorkerStats::default();
        let mut scratch = BatchScratch::default();
        let mut scans = ScanTable::default();
        let mut batch = put_batch(8);
        let cap_before = batch.capacity();
        execute_batch(&engine, &mut batch, &stats, &mut scratch, &mut scans, &test_config(), None, None);
        assert!(batch.is_empty(), "batch is drained, not consumed");
        assert_eq!(batch.capacity(), cap_before, "allocation is retained");
    }

    #[test]
    fn lifecycle_histograms_fill_and_trace_slow_requests() {
        let registry = p2kvs_obs::MetricsRegistry::new();
        let ring = Arc::new(p2kvs_obs::TraceRing::new(16));
        // Threshold 0: every request is "slow", so the ring must fill.
        let lc = WorkerLifecycle::new(&registry, 0, 0, ring.clone());
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = Arc::new(factory.open(Path::new("w-obs"), None).unwrap());
        let worker = WorkerHandle::spawn(0, engine, test_config(), Some(lc));
        let mut completions = Vec::new();
        for i in 0..40 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("k{i:02}").into_bytes(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            completions.push(c);
        }
        let (req, c) = Request::sync(Op::Get {
            key: b"k00".to_vec(),
        });
        worker.queue.push(req).ok().unwrap();
        completions.push(c);
        for c in completions {
            c.wait().unwrap();
        }
        let snap = registry.snapshot();
        let writes = snap
            .histogram("p2kvs_queue_wait_ns{worker=\"0\",class=\"write\"}")
            .unwrap();
        assert_eq!(writes.count, 40);
        let services = snap
            .histogram("p2kvs_service_ns{worker=\"0\",class=\"write\"}")
            .unwrap();
        assert_eq!(services.count, 40);
        let reads = snap
            .histogram("p2kvs_queue_wait_ns{worker=\"0\",class=\"read\"}")
            .unwrap();
        assert_eq!(reads.count, 1);
        assert!(ring.total_recorded() > 0, "threshold 0 traces every batch");
    }

    #[test]
    fn processes_sync_requests() {
        let (worker, _) = worker();
        let (req, done) = Request::sync(Op::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        });
        worker.queue.push(req).ok().unwrap();
        assert_eq!(done.wait().unwrap(), Response::Done);
        let (req, got) = Request::sync(Op::Get { key: b"k".to_vec() });
        worker.queue.push(req).ok().unwrap();
        assert_eq!(got.wait().unwrap(), Response::Value(Some(b"v".to_vec())));
    }

    #[test]
    fn batches_are_merged_and_all_complete() {
        let (worker, _) = worker();
        let mut completions = Vec::new();
        for i in 0..100 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("k{i:03}").as_bytes().to_vec(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            completions.push(c);
        }
        for c in completions {
            assert_eq!(c.wait().unwrap(), Response::Done);
        }
        let stats = &worker.stats;
        assert_eq!(stats.ops.load(Ordering::Relaxed), 100);
        assert!(
            stats.batches.load(Ordering::Relaxed) <= 100,
            "some batching expected"
        );
        assert!(stats.avg_batch_size() >= 1.0);
    }

    /// Drives one chunk through the worker queue, returning the entries
    /// and the continuation cursor (if any).
    fn pull_chunk(worker: &WorkerHandle, op: Op) -> (Vec<(Vec<u8>, Vec<u8>)>, Option<u64>) {
        let (req, c) = Request::sync(op);
        worker.queue.push(req).ok().unwrap();
        match c.wait().unwrap() {
            Response::Chunk { entries, cursor } => (entries, cursor),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_streams_in_chunks_through_the_queue() {
        let (worker, _) = worker();
        for i in 0..10 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("k{i}").as_bytes().to_vec(),
                value: format!("{i}").as_bytes().to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            c.wait().unwrap();
        }
        let (first, cursor) = pull_chunk(
            &worker,
            Op::ScanOpen {
                start: b"k3".to_vec(),
                end: None,
                limit: 3,
                max_bytes: usize::MAX,
            },
        );
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].0, b"k3");
        let mut cursor = cursor.expect("7 keys remain past k5");
        assert_eq!(worker.stats.scans_active.load(Ordering::Relaxed), 1);

        // Point ops are served while the cursor is parked: the scan does
        // not block the queue between chunks.
        let (req, c) = Request::sync(Op::Get { key: b"k0".to_vec() });
        worker.queue.push(req).ok().unwrap();
        assert_eq!(c.wait().unwrap(), Response::Value(Some(b"0".to_vec())));

        let mut all = first;
        loop {
            let (entries, next) = pull_chunk(
                &worker,
                Op::ScanNext {
                    cursor,
                    limit: 3,
                    max_bytes: usize::MAX,
                },
            );
            all.extend(entries);
            match next {
                Some(id) => cursor = id,
                None => break,
            }
        }
        let keys: Vec<_> = all.iter().map(|(k, _)| k.clone()).collect();
        let want: Vec<Vec<u8>> = (3..10).map(|i| format!("k{i}").into_bytes()).collect();
        assert_eq!(keys, want, "chunked scan covers the full suffix in order");
        assert_eq!(worker.stats.scans_active.load(Ordering::Relaxed), 0);
        assert!(worker.stats.scan_resumes.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn scan_chunk_sizes_are_clamped_by_worker_config() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = Arc::new(factory.open(Path::new("w-clamp"), None).unwrap());
        let config = WorkerConfig {
            scan_chunk_entries: 2,
            ..WorkerConfig::default()
        };
        let worker = WorkerHandle::spawn(0, engine, config, None);
        for i in 0..6 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("c{i}").into_bytes(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            c.wait().unwrap();
        }
        // The client asks for everything in one chunk; the worker caps it.
        let (entries, cursor) = pull_chunk(
            &worker,
            Op::ScanOpen {
                start: Vec::new(),
                end: None,
                limit: usize::MAX,
                max_bytes: usize::MAX,
            },
        );
        assert_eq!(entries.len(), 2, "chunk clamped to scan_chunk_entries");
        assert!(cursor.is_some(), "scan must continue past the clamp");
    }

    #[test]
    fn scan_next_on_unknown_cursor_is_an_error_and_close_is_idempotent() {
        let (worker, _) = worker();
        let (req, c) = Request::sync(Op::ScanNext {
            cursor: 99,
            limit: 1,
            max_bytes: usize::MAX,
        });
        worker.queue.push(req).ok().unwrap();
        let err = c.wait().expect_err("unknown cursor must not hang or panic");
        assert!(err.to_string().contains("unknown scan cursor"), "{err}");

        for i in 0..8 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("x{i}").into_bytes(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            c.wait().unwrap();
        }
        let (_, cursor) = pull_chunk(
            &worker,
            Op::ScanOpen {
                start: Vec::new(),
                end: None,
                limit: 2,
                max_bytes: usize::MAX,
            },
        );
        let cursor = cursor.unwrap();
        for _ in 0..2 {
            let (req, c) = Request::sync(Op::ScanClose { cursor });
            worker.queue.push(req).ok().unwrap();
            assert_eq!(c.wait().unwrap(), Response::Done, "close is idempotent");
        }
        assert_eq!(worker.stats.scans_active.load(Ordering::Relaxed), 0);
        let (req, c) = Request::sync(Op::ScanNext {
            cursor,
            limit: 1,
            max_bytes: usize::MAX,
        });
        worker.queue.push(req).ok().unwrap();
        assert!(c.wait().is_err(), "a closed cursor cannot be resumed");
    }

    #[test]
    fn txn_batch_carries_gsn() {
        let (worker, engine) = worker();
        let (req, c) = Request::sync(Op::TxnBatch {
            ops: vec![WriteOp::Put {
                key: b"t".to_vec(),
                value: b"1".to_vec(),
            }],
            gsn: 42,
        });
        worker.queue.push(req).ok().unwrap();
        c.wait().unwrap();
        assert_eq!(engine.get(b"t").unwrap().unwrap(), b"1");
    }

    #[test]
    fn async_requests_invoke_callback() {
        let (worker, _) = worker();
        let (tx, rx) = std::sync::mpsc::channel();
        let req = Request::asynchronous(
            Op::Put {
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            },
            Box::new(move |r| {
                tx.send(r.is_ok()).unwrap();
            }),
        );
        worker.queue.push(req).ok().unwrap();
        assert!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap());
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let (mut worker, _) = worker();
        let mut completions = Vec::new();
        for i in 0..50 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("d{i}").as_bytes().to_vec(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            completions.push(c);
        }
        worker.shutdown();
        for c in completions {
            assert!(c.wait().is_ok(), "pending requests must complete");
        }
    }

    #[test]
    fn shutdown_drain_credits_parcel_cursors_before_executing_stashed_closes() {
        // Regression (scan-gauge audit): the shutdown drain used to
        // execute stashed requests against a parcel's cursor table
        // without crediting scans_active for the parked cursors it had
        // just taken, so a stashed ScanClose racing a shard handoff
        // drove the gauge to u64::MAX.
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = Arc::new(factory.open(Path::new("w-drain-gauge"), None).unwrap());
        for i in 0..8 {
            KvsEngine::put(&*engine, format!("g{i}").as_bytes(), b"v").unwrap();
        }
        let queues: Vec<_> = (0..2)
            .map(|_| Arc::new(RequestQueue::with_capacity(DEFAULT_QUEUE_CAPACITY)))
            .collect();
        let map = Arc::new(MapCell::new(ShardMap::initial(1, 2)));
        let rt = Arc::new(ShardRuntime {
            engines: vec![engine.clone()],
            queues: Arc::new(crate::pool::QueueTable::new(queues.clone())),
            map: map.clone(),
            depot: Arc::new(HandoffDepot::new()),
            shard_stats: vec![Arc::new(ShardStats::default())],
            spans: None,
            journal: None,
            cache: None,
            env: None,
            backup: Arc::new(crate::backup::BackupHub::default()),
        });
        // Worker 1 owns nothing under the initial map (shard 0 -> worker 0).
        let mut w1 = WorkerHandle::spawn_in(1, rt.clone(), test_config(), None);
        // Prove w1 is running under the old map: a request it does not
        // own is rerouted to worker 0's queue, which the test drains by
        // hand (there is no worker 0 thread).
        let dummy = Request::asynchronous(
            Op::Put {
                key: b"dummy".to_vec(),
                value: b"v".to_vec(),
            },
            Box::new(|_| {}),
        )
        .on_shard(0);
        queues[1].push(dummy).ok().unwrap();
        let mut rerouted = Vec::new();
        assert!(
            queues[0].pop_batch_into(1, &mut rerouted),
            "w1 must reroute under the old map"
        );
        rerouted.remove(0).finish(Ok(Response::Done));
        // Source half of a migration, by hand: park one cursor, deposit
        // it, then point the map at worker 1. The install marker is
        // never sent — exactly the window the shutdown drain covers.
        let mut parked = ScanTable::default();
        let cursor = engine.open_cursor(b"", None).unwrap();
        let id = parked.insert(cursor);
        rt.depot.begin(0).unwrap();
        rt.depot.deposit(0, Parcel { scans: parked });
        map.publish(Arc::new(map.pin().with_owner(0, 1)));
        // w1 stashes the close (the map says w1, but no install arrived)…
        let (req, done) = Request::sync(Op::ScanClose { cursor: id });
        queues[1].push(req.on_shard(0)).ok().unwrap();
        // …and the shutdown drain executes it against the parcel.
        w1.shutdown();
        assert_eq!(done.wait().unwrap(), Response::Done);
        assert_eq!(
            w1.stats.scans_active.load(Ordering::Relaxed),
            0,
            "a stashed ScanClose executed at drain must balance, not underflow, the gauge"
        );
    }

    #[test]
    fn small_queue_capacity_applies_backpressure_but_completes() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let engine = Arc::new(factory.open(Path::new("w-bp"), None).unwrap());
        let config = WorkerConfig {
            batch_max: 4,
            queue_capacity: 4,
            pin: false,
            ..WorkerConfig::default()
        };
        let worker = WorkerHandle::spawn(0, engine, config, None);
        assert_eq!(worker.queue.capacity(), 4);
        let mut completions = Vec::new();
        for i in 0..200 {
            let (req, c) = Request::sync(Op::Put {
                key: format!("bp{i:03}").into_bytes(),
                value: b"v".to_vec(),
            });
            worker.queue.push(req).ok().unwrap();
            completions.push(c);
        }
        for c in completions {
            assert_eq!(c.wait().unwrap(), Response::Done);
        }
        assert_eq!(worker.stats.ops.load(Ordering::Relaxed), 200);
    }
}
