//! Request and response types flowing through the accessing layer.
//!
//! The synchronous interface's completion slots are the second half of
//! the hot path (the first is the queue): every blocking `put`/`get`
//! hands a slot to the worker and parks on it. Instead of allocating a
//! fresh `Mutex` + `Condvar` pair per request (the original
//! `SyncCompletion`, deleted in favour of this), a [`CompletionSlot`] is
//! a single atomic state word plus a parked-thread cell, **recycled
//! through a thread-local freelist** — the steady-state submission path
//! allocates nothing, and fulfilling a request wakes the waiter only if
//! it actually parked (a spinning waiter costs the worker zero
//! syscalls).

use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use crate::error::{Error, Result};

/// One update inside a (possibly transactional) write batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert `key -> value`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Delete `key`.
    Delete { key: Vec<u8> },
}

impl WriteOp {
    /// The key this update targets.
    pub fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }

    /// Approximate payload bytes.
    pub fn size(&self) -> usize {
        match self {
            WriteOp::Put { key, value } => key.len() + value.len(),
            WriteOp::Delete { key } => key.len(),
        }
    }
}

/// An operation submitted to a worker queue.
#[derive(Debug, Clone)]
pub enum Op {
    /// Insert one pair.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Delete one key.
    Delete { key: Vec<u8> },
    /// Point lookup.
    Get { key: Vec<u8> },
    /// Opens a streaming scan over keys in `[start, end)` (`end = None`
    /// leaves it open-ended) and returns the first chunk of at most
    /// `limit` entries / `max_bytes` payload bytes. The reply is
    /// [`Response::Chunk`]; a `Some(cursor)` in it means more data is
    /// available via [`Op::ScanNext`]. Replaces the old blocking
    /// `Scan`/`Range` ops: a worker never runs a scan longer than one
    /// chunk per dequeue, so queued point ops interleave between chunks.
    ScanOpen {
        start: Vec<u8>,
        end: Option<Vec<u8>>,
        limit: usize,
        max_bytes: usize,
    },
    /// Pulls the next chunk from a cursor returned by a previous
    /// [`Response::Chunk`] on the same worker.
    ScanNext {
        cursor: u64,
        limit: usize,
        max_bytes: usize,
    },
    /// Releases a cursor early (the consumer stopped before exhaustion).
    /// Idempotent: closing an unknown or already-exhausted cursor is Ok.
    ScanClose { cursor: u64 },
    /// A transaction sub-batch carrying a Global Sequence Number. Never
    /// merged with other requests by OBM.
    TxnBatch { ops: Vec<WriteOp>, gsn: u64 },
    /// Handoff marker (migration protocol, DESIGN.md §9): tells the
    /// owning worker to package `shard` — flush what the FIFO guarantees
    /// is the last old-epoch work, deposit the shard's parked scan
    /// cursors in the handoff depot, and forward a [`Op::ShardInstall`]
    /// to the new owner. Internal: never produced by the public API.
    HandoffOut { shard: u64 },
    /// Second half of a handoff: the target worker collects the parcel
    /// from the depot, installs the shard, and replays any requests it
    /// stashed while the shard was in flight. Internal.
    ShardInstall { shard: u64 },
    /// Online-backup freeze marker: the owning worker forks `shard`'s
    /// engine snapshot and deposits it in the backup hub. Unlike the
    /// handoff markers this flows through the normal ownership check, so
    /// a shard mid-migration stashes or reroutes it like any other
    /// request and the freeze executes exactly once, after the install
    /// replay. Internal: never produced by the public API.
    BackupFreeze { shard: u64 },
}

/// OBM request classes (Algorithm 1 merges only same-class neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Mergeable writes (PUT/UPDATE/DELETE).
    Write,
    /// Mergeable reads (GET).
    Read,
    /// Never merged: SCAN/RANGE and GSN-tagged batches.
    Solo,
}

impl OpClass {
    /// Stable integer id (index into `p2kvs_obs::CLASS_LABELS`).
    pub fn index(self) -> usize {
        match self {
            OpClass::Write => 0,
            OpClass::Read => 1,
            OpClass::Solo => 2,
        }
    }

    /// Metric label for this class.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Read => "read",
            OpClass::Solo => "solo",
        }
    }
}

impl Op {
    /// The request's OBM class.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Put { .. } | Op::Delete { .. } => OpClass::Write,
            Op::Get { .. } => OpClass::Read,
            Op::ScanOpen { .. }
            | Op::ScanNext { .. }
            | Op::ScanClose { .. }
            | Op::TxnBatch { .. }
            | Op::HandoffOut { .. }
            | Op::ShardInstall { .. }
            | Op::BackupFreeze { .. } => OpClass::Solo,
        }
    }
}

/// Result payload of a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Write acknowledged.
    Done,
    /// GET result.
    Value(Option<Vec<u8>>),
    /// One chunk of a streaming scan. `cursor` names the worker-side
    /// cursor to pass to [`Op::ScanNext`] for more data; `None` means the
    /// scan is exhausted (or fit entirely in this chunk).
    Chunk {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        cursor: Option<u64>,
    },
}

/// How a finished request reports back.
pub enum Completion {
    /// A waiting user thread (synchronous interface): it spins briefly
    /// then parks on the slot until the worker stores the result.
    Sync(Arc<CompletionSlot>),
    /// Fire-and-forget callback (asynchronous interface, §4.1).
    Async(Box<dyn FnOnce(Result<Response>) + Send>),
}

/// Slot states. EMPTY → (PARKED →) DONE, then recycled back to EMPTY.
const SLOT_EMPTY: u32 = 0;
const SLOT_PARKED: u32 = 1;
const SLOT_DONE: u32 = 2;

/// Iterations a waiter spins before parking. Round-trips through an
/// unloaded worker complete well inside this budget, so the common case
/// pays neither park nor unpark.
const WAITER_SPIN: usize = 512;

/// Bound on the per-thread freelist (slots, ~100 B each).
const POOL_LIMIT: usize = 64;

thread_local! {
    /// Per-thread completion-slot freelist. `Request::sync` pops from it,
    /// `SyncWaiter::wait` pushes back — zero cross-thread traffic, zero
    /// allocation in steady state.
    static SLOT_POOL: RefCell<Vec<Arc<CompletionSlot>>> = const { RefCell::new(Vec::new()) };
}

/// Shared one-shot completion slot: one atomic state word, a result
/// cell, and the parked waiter's thread handle. All cell accesses are
/// ordered by the state word; see the safety notes on each method.
pub struct CompletionSlot {
    state: AtomicU32,
    result: UnsafeCell<Option<Result<Response>>>,
    waiter: UnsafeCell<Option<Thread>>,
}

// SAFETY: the state machine gives each cell a single writer at a time —
// `result` is written by the (sole) fulfiller before the DONE transition
// and read by the (sole) waiter after observing DONE; `waiter` is
// written by the waiter before its EMPTY→PARKED transition and consumed
// by the fulfiller only after observing PARKED.
unsafe impl Send for CompletionSlot {}
unsafe impl Sync for CompletionSlot {}

impl Default for CompletionSlot {
    fn default() -> Self {
        CompletionSlot {
            state: AtomicU32::new(SLOT_EMPTY),
            result: UnsafeCell::new(None),
            waiter: UnsafeCell::new(None),
        }
    }
}

impl CompletionSlot {
    /// Stores the result and wakes the waiter **iff it parked**. Consumes
    /// the worker's reference *before* the unpark so the woken waiter
    /// usually observes itself as the sole owner and can recycle the
    /// slot.
    pub fn fulfill(self: Arc<Self>, result: Result<Response>) {
        // SAFETY: sole fulfiller (a Request is finished once), and the
        // waiter reads `result` only after the Release swap below.
        unsafe { *self.result.get() = Some(result) };
        let prev = self.state.swap(SLOT_DONE, Ordering::AcqRel);
        debug_assert_ne!(prev, SLOT_DONE, "completion fulfilled twice");
        // SAFETY: PARKED was set after the waiter wrote its handle
        // (release CAS); the Acquire swap above makes that write visible,
        // and the waiter never touches the cell again before DONE.
        let waiter = if prev == SLOT_PARKED {
            unsafe { (*self.waiter.get()).take() }
        } else {
            None
        };
        drop(self);
        if let Some(t) = waiter {
            t.unpark();
        }
    }

    /// Spins briefly (multiprocessors only), then parks until the result
    /// arrives.
    fn wait_result(&self) -> Result<Response> {
        let spin_limit = crate::queue::adaptive_spin(WAITER_SPIN);
        let mut spins = 0;
        while self.state.load(Ordering::Acquire) != SLOT_DONE {
            spins += 1;
            if spins > spin_limit {
                // Register for the wakeup. SAFETY: the fulfiller reads
                // `waiter` only after observing PARKED, which this
                // release CAS publishes after the write.
                unsafe { *self.waiter.get() = Some(std::thread::current()) };
                if self
                    .state
                    .compare_exchange(SLOT_EMPTY, SLOT_PARKED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    while self.state.load(Ordering::Acquire) != SLOT_DONE {
                        std::thread::park();
                    }
                }
                break;
            }
            std::hint::spin_loop();
        }
        // SAFETY: state is DONE (Acquire): the fulfiller's write to
        // `result` is visible and it will never touch the cell again.
        unsafe { (*self.result.get()).take() }.expect("completed slot holds a result")
    }

    /// Resets a slot for reuse. Caller must hold the only reference.
    fn reset(&self) {
        // SAFETY: sole owner (checked by the caller via strong_count == 1
        // plus an Acquire fence pairing with the fulfiller's Arc drop).
        unsafe {
            *self.result.get() = None;
            *self.waiter.get() = None;
        }
        self.state.store(SLOT_EMPTY, Ordering::Relaxed);
    }
}

/// The user-thread half of a synchronous request: wait once, get the
/// result, and the slot goes back to the submitting thread's pool.
pub struct SyncWaiter {
    slot: Arc<CompletionSlot>,
}

impl SyncWaiter {
    /// Blocks (spin, then park) until the worker fulfills the request.
    pub fn wait(self) -> Result<Response> {
        let SyncWaiter { slot } = self;
        let result = slot.wait_result();
        // Recycle if the worker has already dropped its reference —
        // `fulfill` drops before unparking, so a parked waiter almost
        // always recycles; a spin-woken one occasionally races the drop
        // and simply lets the slot free instead.
        if Arc::strong_count(&slot) == 1 {
            // Pairs with the Release decrement of the fulfiller's Arc
            // drop: everything it did to the slot happens-before reset.
            fence(Ordering::Acquire);
            slot.reset();
            let _ = SLOT_POOL.try_with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < POOL_LIMIT {
                    pool.push(slot);
                }
            });
        }
        result
    }
}

/// A queued request: the operation plus its completion.
pub struct Request {
    pub op: Op,
    pub completion: Completion,
    /// The virtual shard this request targets (0 for ops that are not
    /// keyed, e.g. scans fanned out per shard set it to their shard).
    /// Workers use it to route between owned engines, OBM merges only
    /// same-shard neighbours, and a worker that no longer owns the shard
    /// re-routes by it.
    pub shard: u64,
    /// Nanosecond timestamp when the request entered the queue (for queue
    /// wait accounting).
    pub enqueued: std::time::Instant,
    /// Trace identity ([`TraceCtx::NONE`] for the unsampled majority).
    /// A single `Copy` word, so carrying it keeps the submit and consume
    /// paths allocation-free.
    pub trace: p2kvs_obs::TraceCtx,
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("op", &self.op)
            .field(
                "completion",
                &match self.completion {
                    Completion::Sync(_) => "sync",
                    Completion::Async(_) => "async",
                },
            )
            .finish_non_exhaustive()
    }
}

impl Request {
    /// Builds a synchronous request, returning it with the waiter half of
    /// its (pooled) completion slot.
    pub fn sync(op: Op) -> (Request, SyncWaiter) {
        let slot = SLOT_POOL
            .try_with(|pool| pool.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        (
            Request {
                op,
                completion: Completion::Sync(slot.clone()),
                shard: 0,
                enqueued: std::time::Instant::now(),
                trace: p2kvs_obs::TraceCtx::NONE,
            },
            SyncWaiter { slot },
        )
    }

    /// Builds an asynchronous request.
    pub fn asynchronous(op: Op, cb: Box<dyn FnOnce(Result<Response>) + Send>) -> Request {
        Request {
            op,
            completion: Completion::Async(cb),
            shard: 0,
            enqueued: std::time::Instant::now(),
            trace: p2kvs_obs::TraceCtx::NONE,
        }
    }

    /// Sets the target shard (builder style).
    pub fn on_shard(mut self, shard: u64) -> Request {
        self.shard = shard;
        self
    }

    /// Sets the trace context (builder style).
    pub fn traced(mut self, trace: p2kvs_obs::TraceCtx) -> Request {
        self.trace = trace;
        self
    }

    /// Completes the request with `result`.
    pub fn finish(self, result: Result<Response>) {
        match self.completion {
            Completion::Sync(c) => c.fulfill(result),
            Completion::Async(cb) => cb(result),
        }
    }

    /// Completes the request with a cloned error.
    pub fn finish_err(self, err: &Error) {
        self.finish(Err(err.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_matches_obs_labels() {
        for class in [OpClass::Write, OpClass::Read, OpClass::Solo] {
            assert_eq!(p2kvs_obs::CLASS_LABELS[class.index()], class.label());
        }
    }

    #[test]
    fn op_classes() {
        assert_eq!(
            Op::Put {
                key: vec![],
                value: vec![]
            }
            .class(),
            OpClass::Write
        );
        assert_eq!(Op::Delete { key: vec![] }.class(), OpClass::Write);
        assert_eq!(Op::Get { key: vec![] }.class(), OpClass::Read);
        assert_eq!(
            Op::ScanOpen {
                start: vec![],
                end: None,
                limit: 1,
                max_bytes: 1,
            }
            .class(),
            OpClass::Solo
        );
        assert_eq!(
            Op::ScanNext {
                cursor: 1,
                limit: 1,
                max_bytes: 1,
            }
            .class(),
            OpClass::Solo
        );
        assert_eq!(Op::ScanClose { cursor: 1 }.class(), OpClass::Solo);
        assert_eq!(
            Op::TxnBatch {
                ops: vec![],
                gsn: 1
            }
            .class(),
            OpClass::Solo
        );
        assert_eq!(Op::BackupFreeze { shard: 0 }.class(), OpClass::Solo);
    }

    #[test]
    fn sync_completion_wakes_waiter() {
        let (req, completion) = Request::sync(Op::Get { key: b"k".to_vec() });
        let waiter = std::thread::spawn(move || completion.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        req.finish(Ok(Response::Value(Some(b"v".to_vec()))));
        assert_eq!(
            waiter.join().unwrap().unwrap(),
            Response::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn sync_completion_parked_waiter_wakes() {
        // Force the park path: fulfill long after the waiter's spin
        // budget is exhausted.
        let (req, completion) = Request::sync(Op::Get { key: b"k".to_vec() });
        let waiter = std::thread::spawn(move || completion.wait());
        std::thread::sleep(std::time::Duration::from_millis(150));
        req.finish(Ok(Response::Done));
        assert_eq!(waiter.join().unwrap().unwrap(), Response::Done);
    }

    #[test]
    fn fulfilled_before_wait_returns_immediately() {
        let (req, completion) = Request::sync(Op::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        });
        req.finish(Ok(Response::Done));
        assert_eq!(completion.wait().unwrap(), Response::Done);
    }

    #[test]
    fn completion_slots_recycle_through_thread_pool() {
        // Fulfill from this thread: the worker-side Arc is dropped inside
        // `fulfill`, so `wait` observes sole ownership and recycles.
        let (req, waiter) = Request::sync(Op::Get { key: b"a".to_vec() });
        let first = Arc::as_ptr(match &req.completion {
            Completion::Sync(c) => c,
            _ => unreachable!(),
        });
        req.finish(Ok(Response::Done));
        waiter.wait().unwrap();
        let (req2, waiter2) = Request::sync(Op::Get { key: b"b".to_vec() });
        let second = Arc::as_ptr(match &req2.completion {
            Completion::Sync(c) => c,
            _ => unreachable!(),
        });
        assert_eq!(first, second, "slot came back from the freelist");
        req2.finish(Ok(Response::Done));
        waiter2.wait().unwrap();
    }

    #[test]
    fn recycled_slot_carries_no_stale_state() {
        let (req, waiter) = Request::sync(Op::Get { key: b"x".to_vec() });
        req.finish(Ok(Response::Value(Some(b"old".to_vec()))));
        assert_eq!(
            waiter.wait().unwrap(),
            Response::Value(Some(b"old".to_vec()))
        );
        // Reuse the slot for a request with a different result.
        let (req, waiter) = Request::sync(Op::Get { key: b"y".to_vec() });
        req.finish(Ok(Response::Value(None)));
        assert_eq!(waiter.wait().unwrap(), Response::Value(None));
    }

    #[test]
    fn async_completion_invokes_callback() {
        let (tx, rx) = std::sync::mpsc::channel();
        let req = Request::asynchronous(
            Op::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            Box::new(move |r| tx.send(r.is_ok()).unwrap()),
        );
        req.finish(Ok(Response::Done));
        assert!(rx.recv().unwrap());
    }

    #[test]
    fn write_op_accessors() {
        let p = WriteOp::Put {
            key: b"k".to_vec(),
            value: b"vvv".to_vec(),
        };
        assert_eq!(p.key(), b"k");
        assert_eq!(p.size(), 4);
        let d = WriteOp::Delete {
            key: b"kk".to_vec(),
        };
        assert_eq!(d.size(), 2);
    }
}
