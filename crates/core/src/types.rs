//! Request and response types flowing through the accessing layer.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};

/// One update inside a (possibly transactional) write batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert `key -> value`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Delete `key`.
    Delete { key: Vec<u8> },
}

impl WriteOp {
    /// The key this update targets.
    pub fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }

    /// Approximate payload bytes.
    pub fn size(&self) -> usize {
        match self {
            WriteOp::Put { key, value } => key.len() + value.len(),
            WriteOp::Delete { key } => key.len(),
        }
    }
}

/// An operation submitted to a worker queue.
#[derive(Debug, Clone)]
pub enum Op {
    /// Insert one pair.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Delete one key.
    Delete { key: Vec<u8> },
    /// Point lookup.
    Get { key: Vec<u8> },
    /// Read up to `count` entries starting at `start`.
    Scan { start: Vec<u8>, count: usize },
    /// Read entries in `[begin, end)`.
    Range { begin: Vec<u8>, end: Vec<u8> },
    /// A transaction sub-batch carrying a Global Sequence Number. Never
    /// merged with other requests by OBM.
    TxnBatch { ops: Vec<WriteOp>, gsn: u64 },
}

/// OBM request classes (Algorithm 1 merges only same-class neighbours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Mergeable writes (PUT/UPDATE/DELETE).
    Write,
    /// Mergeable reads (GET).
    Read,
    /// Never merged: SCAN/RANGE and GSN-tagged batches.
    Solo,
}

impl OpClass {
    /// Stable integer id (index into `p2kvs_obs::CLASS_LABELS`).
    pub fn index(self) -> usize {
        match self {
            OpClass::Write => 0,
            OpClass::Read => 1,
            OpClass::Solo => 2,
        }
    }

    /// Metric label for this class.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Read => "read",
            OpClass::Solo => "solo",
        }
    }
}

impl Op {
    /// The request's OBM class.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Put { .. } | Op::Delete { .. } => OpClass::Write,
            Op::Get { .. } => OpClass::Read,
            Op::Scan { .. } | Op::Range { .. } | Op::TxnBatch { .. } => OpClass::Solo,
        }
    }
}

/// Result payload of a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Write acknowledged.
    Done,
    /// GET result.
    Value(Option<Vec<u8>>),
    /// SCAN/RANGE result.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
}

/// How a finished request reports back.
pub enum Completion {
    /// A waiting user thread (synchronous interface): it sleeps on the
    /// condvar until the worker stores the result.
    Sync(Arc<SyncCompletion>),
    /// Fire-and-forget callback (asynchronous interface, §4.1).
    Async(Box<dyn FnOnce(Result<Response>) + Send>),
}

/// Shared slot a synchronous caller parks on.
#[derive(Default)]
pub struct SyncCompletion {
    slot: Mutex<Option<Result<Response>>>,
    cv: Condvar,
}

impl SyncCompletion {
    /// Creates an empty completion.
    pub fn new() -> Arc<SyncCompletion> {
        Arc::new(SyncCompletion::default())
    }

    /// Stores the result and wakes the waiter.
    pub fn fulfill(&self, result: Result<Response>) {
        let mut slot = self.slot.lock();
        *slot = Some(result);
        drop(slot);
        self.cv.notify_all();
    }

    /// Blocks until the result arrives.
    pub fn wait(&self) -> Result<Response> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.cv.wait(&mut slot);
        }
    }
}

/// A queued request: the operation plus its completion.
pub struct Request {
    pub op: Op,
    pub completion: Completion,
    /// Nanosecond timestamp when the request entered the queue (for queue
    /// wait accounting).
    pub enqueued: std::time::Instant,
}

impl Request {
    /// Builds a synchronous request, returning it with its completion.
    pub fn sync(op: Op) -> (Request, Arc<SyncCompletion>) {
        let completion = SyncCompletion::new();
        (
            Request {
                op,
                completion: Completion::Sync(completion.clone()),
                enqueued: std::time::Instant::now(),
            },
            completion,
        )
    }

    /// Builds an asynchronous request.
    pub fn asynchronous(op: Op, cb: Box<dyn FnOnce(Result<Response>) + Send>) -> Request {
        Request {
            op,
            completion: Completion::Async(cb),
            enqueued: std::time::Instant::now(),
        }
    }

    /// Completes the request with `result`.
    pub fn finish(self, result: Result<Response>) {
        match self.completion {
            Completion::Sync(c) => c.fulfill(result),
            Completion::Async(cb) => cb(result),
        }
    }

    /// Completes the request with a cloned error.
    pub fn finish_err(self, err: &Error) {
        self.finish(Err(err.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_matches_obs_labels() {
        for class in [OpClass::Write, OpClass::Read, OpClass::Solo] {
            assert_eq!(p2kvs_obs::CLASS_LABELS[class.index()], class.label());
        }
    }

    #[test]
    fn op_classes() {
        assert_eq!(Op::Put { key: vec![], value: vec![] }.class(), OpClass::Write);
        assert_eq!(Op::Delete { key: vec![] }.class(), OpClass::Write);
        assert_eq!(Op::Get { key: vec![] }.class(), OpClass::Read);
        assert_eq!(Op::Scan { start: vec![], count: 1 }.class(), OpClass::Solo);
        assert_eq!(
            Op::TxnBatch { ops: vec![], gsn: 1 }.class(),
            OpClass::Solo
        );
    }

    #[test]
    fn sync_completion_wakes_waiter() {
        let (req, completion) = Request::sync(Op::Get { key: b"k".to_vec() });
        let waiter = std::thread::spawn(move || completion.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        req.finish(Ok(Response::Value(Some(b"v".to_vec()))));
        assert_eq!(
            waiter.join().unwrap().unwrap(),
            Response::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn async_completion_invokes_callback() {
        let (tx, rx) = std::sync::mpsc::channel();
        let req = Request::asynchronous(
            Op::Put { key: b"k".to_vec(), value: b"v".to_vec() },
            Box::new(move |r| tx.send(r.is_ok()).unwrap()),
        );
        req.finish(Ok(Response::Done));
        assert!(rx.recv().unwrap());
    }

    #[test]
    fn write_op_accessors() {
        let p = WriteOp::Put { key: b"k".to_vec(), value: b"vvv".to_vec() };
        assert_eq!(p.key(), b"k");
        assert_eq!(p.size(), 4);
        let d = WriteOp::Delete { key: b"kk".to_vec() };
        assert_eq!(d.size(), 2);
    }
}
