//! Aggregated framework statistics.

use std::time::Duration;

/// Snapshot of one worker's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Requests completed.
    pub ops: u64,
    /// Engine calls issued.
    pub batches: u64,
    /// Requests that rode in multi-request batches.
    pub merged_ops: u64,
    /// Streaming scans opened.
    pub scans: u64,
    /// Scan chunks served (first chunks plus resumes).
    pub scan_chunks: u64,
    /// Cursor resumptions served.
    pub scan_resumes: u64,
    /// Cursors currently parked on the worker.
    pub active_scans: u64,
    /// Useful processing time.
    pub busy: Duration,
    /// Current queue depth.
    pub queue_depth: usize,
}

/// Snapshot of the whole store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot {
    /// Per-worker counters.
    pub workers: Vec<WorkerSnapshot>,
    /// Wall time since open.
    pub uptime: Duration,
    /// Approximate resident memory across engines.
    pub mem_usage: usize,
}

impl StoreSnapshot {
    /// Total requests completed.
    pub fn total_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.ops).sum()
    }

    /// Mean requests per engine call across workers.
    pub fn avg_batch_size(&self) -> f64 {
        let ops: u64 = self.workers.iter().map(|w| w.ops).sum();
        let batches: u64 = self.workers.iter().map(|w| w.batches).sum();
        if batches == 0 {
            0.0
        } else {
            ops as f64 / batches as f64
        }
    }

    /// Fraction of requests that were merged by OBM.
    pub fn merge_ratio(&self) -> f64 {
        let ops: u64 = self.workers.iter().map(|w| w.ops).sum();
        let merged: u64 = self.workers.iter().map(|w| w.merged_ops).sum();
        if ops == 0 {
            0.0
        } else {
            merged as f64 / ops as f64
        }
    }

    /// Per-worker CPU utilization (busy / uptime), one entry per worker.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let wall = self.uptime.as_secs_f64().max(1e-9);
        self.workers
            .iter()
            .map(|w| (w.busy.as_secs_f64() / wall).min(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> StoreSnapshot {
        StoreSnapshot {
            workers: vec![
                WorkerSnapshot {
                    ops: 100,
                    batches: 25,
                    merged_ops: 80,
                    scans: 2,
                    scan_chunks: 6,
                    scan_resumes: 4,
                    active_scans: 1,
                    busy: Duration::from_millis(500),
                    queue_depth: 0,
                },
                WorkerSnapshot {
                    ops: 60,
                    batches: 15,
                    merged_ops: 40,
                    scans: 0,
                    scan_chunks: 0,
                    scan_resumes: 0,
                    active_scans: 0,
                    busy: Duration::from_millis(250),
                    queue_depth: 3,
                },
            ],
            uptime: Duration::from_secs(1),
            mem_usage: 1024,
        }
    }

    #[test]
    fn aggregates() {
        let s = snap();
        assert_eq!(s.total_ops(), 160);
        assert!((s.avg_batch_size() - 4.0).abs() < 1e-9);
        assert!((s.merge_ratio() - 0.75).abs() < 1e-9);
        let util = s.worker_utilization();
        assert!((util[0] - 0.5).abs() < 1e-9);
        assert!((util[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = StoreSnapshot {
            workers: vec![],
            uptime: Duration::from_secs(1),
            mem_usage: 0,
        };
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.avg_batch_size(), 0.0);
        assert_eq!(s.merge_ratio(), 0.0);
    }
}
