//! Aggregated framework statistics.

use std::time::Duration;

/// Snapshot of one worker's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    /// Requests completed.
    pub ops: u64,
    /// Engine calls issued.
    pub batches: u64,
    /// Requests that rode in multi-request batches.
    pub merged_ops: u64,
    /// Streaming scans opened.
    pub scans: u64,
    /// Scan chunks served (first chunks plus resumes).
    pub scan_chunks: u64,
    /// Cursor resumptions served.
    pub scan_resumes: u64,
    /// Cursors currently parked on the worker.
    pub active_scans: u64,
    /// Shards this worker currently owns.
    pub shards_owned: u64,
    /// Shards handed away (this worker was a migration source).
    pub handoffs_out: u64,
    /// Shards installed (this worker was a migration target).
    pub handoffs_in: u64,
    /// Requests held for a shard whose install marker had not yet
    /// arrived, then replayed at install.
    pub stashed: u64,
    /// Stale-epoch requests forwarded to the current owner (should stay
    /// zero unless an external caller parks a map pin across a
    /// migration).
    pub rerouted: u64,
    /// Useful processing time.
    pub busy: Duration,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Whether the slot currently runs a worker thread. Retired slots
    /// stay in the snapshot with their final counters (and zero
    /// `shards_owned`/`active_scans`/`queue_depth` — the drain zeroes
    /// them before the thread exits).
    pub live: bool,
}

/// Snapshot of one shard's cumulative load and current placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Requests executed against this shard.
    pub ops: u64,
    /// Worker service time spent on this shard.
    pub busy: Duration,
    /// The worker currently owning the shard.
    pub owner: usize,
}

/// Snapshot of the whole store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot {
    /// Per-worker counters.
    pub workers: Vec<WorkerSnapshot>,
    /// Per-shard load and ownership.
    pub shards: Vec<ShardSnapshot>,
    /// Completed shard-ownership migrations since open.
    pub migrations: u64,
    /// Wall time since open.
    pub uptime: Duration,
    /// Approximate resident memory across engines.
    pub mem_usage: usize,
}

impl StoreSnapshot {
    /// Total requests completed.
    pub fn total_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.ops).sum()
    }

    /// Mean requests per engine call across workers.
    pub fn avg_batch_size(&self) -> f64 {
        let ops: u64 = self.workers.iter().map(|w| w.ops).sum();
        let batches: u64 = self.workers.iter().map(|w| w.batches).sum();
        if batches == 0 {
            0.0
        } else {
            ops as f64 / batches as f64
        }
    }

    /// Fraction of requests that were merged by OBM.
    pub fn merge_ratio(&self) -> f64 {
        let ops: u64 = self.workers.iter().map(|w| w.ops).sum();
        let merged: u64 = self.workers.iter().map(|w| w.merged_ops).sum();
        if ops == 0 {
            0.0
        } else {
            merged as f64 / ops as f64
        }
    }

    /// Per-worker CPU utilization (busy / uptime), one entry per worker.
    pub fn worker_utilization(&self) -> Vec<f64> {
        let wall = self.uptime.as_secs_f64().max(1e-9);
        self.workers
            .iter()
            .map(|w| (w.busy.as_secs_f64() / wall).min(1.0))
            .collect()
    }

    /// Busiest-to-idlest worker ratio by busy time — the skew gauge the
    /// rebalancing benchmark reports. 1.0 is perfectly even; large
    /// values mean some workers saturate while others idle. Workers
    /// with (near-)zero busy time clamp to the measurement floor so an
    /// idle store reports 1.0, not infinity.
    pub fn busy_spread(&self) -> f64 {
        let floor = 1e-6;
        let busy: Vec<f64> = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64().max(floor))
            .collect();
        match (
            busy.iter().cloned().reduce(f64::max),
            busy.iter().cloned().reduce(f64::min),
        ) {
            (Some(max), Some(min)) => max / min,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(ops: u64, batches: u64, merged_ops: u64, busy: Duration) -> WorkerSnapshot {
        WorkerSnapshot {
            ops,
            batches,
            merged_ops,
            scans: 0,
            scan_chunks: 0,
            scan_resumes: 0,
            active_scans: 0,
            shards_owned: 1,
            handoffs_out: 0,
            handoffs_in: 0,
            stashed: 0,
            rerouted: 0,
            busy,
            queue_depth: 0,
            live: true,
        }
    }

    fn snap() -> StoreSnapshot {
        StoreSnapshot {
            workers: vec![
                WorkerSnapshot {
                    scans: 2,
                    scan_chunks: 6,
                    scan_resumes: 4,
                    active_scans: 1,
                    ..worker(100, 25, 80, Duration::from_millis(500))
                },
                WorkerSnapshot {
                    queue_depth: 3,
                    ..worker(60, 15, 40, Duration::from_millis(250))
                },
            ],
            shards: vec![
                ShardSnapshot {
                    ops: 100,
                    busy: Duration::from_millis(500),
                    owner: 0,
                },
                ShardSnapshot {
                    ops: 60,
                    busy: Duration::from_millis(250),
                    owner: 1,
                },
            ],
            migrations: 0,
            uptime: Duration::from_secs(1),
            mem_usage: 1024,
        }
    }

    #[test]
    fn aggregates() {
        let s = snap();
        assert_eq!(s.total_ops(), 160);
        assert!((s.avg_batch_size() - 4.0).abs() < 1e-9);
        assert!((s.merge_ratio() - 0.75).abs() < 1e-9);
        let util = s.worker_utilization();
        assert!((util[0] - 0.5).abs() < 1e-9);
        assert!((util[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn busy_spread_is_max_over_min() {
        let s = snap();
        assert!((s.busy_spread() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = StoreSnapshot {
            workers: vec![],
            shards: vec![],
            migrations: 0,
            uptime: Duration::from_secs(1),
            mem_usage: 0,
        };
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.avg_batch_size(), 0.0);
        assert_eq!(s.merge_ratio(), 0.0);
        assert_eq!(s.busy_spread(), 1.0);
    }
}
