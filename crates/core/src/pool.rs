//! The dynamic worker pool: runtime spawn/retire over a shared queue
//! table (DESIGN.md §14).
//!
//! Before this module the worker set was fixed at open: `P2Kvs::open`
//! spawned `N` threads over a `Vec` of rings and nothing could change
//! the count afterwards. The pool makes the first dimension of the 2D
//! framework *elastic*: every component that addresses a worker by index
//! (submit paths, re-route, handoff installs, scans, backup markers)
//! goes through the [`QueueTable`], whose slots can be installed and
//! cleared at runtime, while the pool itself owns the threads and their
//! lifecycle.
//!
//! Two invariants make resizing safe without a new fence:
//!
//! - **A ring is closed only after its worker owns nothing.** Retire
//!   drains the victim by migrating every shard it owns through the
//!   existing epoch-fenced handoff; each migration's publish+quiesce
//!   guarantees no submit path can still push to the victim under the
//!   old map (the store holds its map pin *across* the push). Once the
//!   last handoff settles, nothing new can target the ring, so closing
//!   it cannot fail a request.
//! - **A slot's ring is installed before its thread starts.** Scale-up
//!   puts a fresh ring in the table first, so by the time the balancer
//!   publishes a map that points at the new worker, pushes to it
//!   already land.
//!
//! Worker ids are *slot* indices and are reused: retiring worker 3 and
//! scaling back up revives slot 3 with a fresh ring and thread, keeping
//! per-worker metric labels dense. Retired slots keep their final
//! [`WorkerStats`] so counters stay visible (finalized, not frozen at a
//! stale gauge — the drain zeroes `shards_owned`/`scans_active` before
//! the thread exits).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use p2kvs_obs::{Journal, JournalKind, WorkerLifecycle};
use parking_lot::{Mutex, RwLock};

use crate::engine::KvsEngine;
use crate::error::{Error, Result};
use crate::queue::RequestQueue;
use crate::types::Request;
use crate::worker::{ShardRuntime, WorkerConfig, WorkerHandle, WorkerStats};

/// The live `worker id → request ring` directory. Every path that
/// pushes to a worker resolves the ring through here, so spawning and
/// retiring workers is a slot write — no component holds a stale ring
/// for a worker that no longer exists.
pub struct QueueTable {
    slots: RwLock<Vec<Option<Arc<RequestQueue>>>>,
}

impl QueueTable {
    /// A table whose slots are the given rings (the standalone-worker
    /// constructor; the store starts empty and lets the pool install).
    pub fn new(queues: Vec<Arc<RequestQueue>>) -> QueueTable {
        QueueTable {
            slots: RwLock::new(queues.into_iter().map(Some).collect()),
        }
    }

    /// The ring of worker `w`, if the slot is live.
    pub fn get(&self, w: usize) -> Option<Arc<RequestQueue>> {
        self.slots.read().get(w).and_then(|s| s.clone())
    }

    /// Pushes to worker `w`'s ring. Hands the request back (like
    /// [`RequestQueue::push`] on a closed ring) when the slot is
    /// retired, so callers treat a vanished worker exactly like a
    /// closed queue. The ring `Arc` is cloned out before the (possibly
    /// blocking, backpressured) push so a table write never waits on a
    /// full ring.
    pub fn push_to(&self, w: usize, req: Request) -> std::result::Result<(), Request> {
        match self.get(w) {
            Some(q) => q.push(req),
            None => Err(req),
        }
    }

    /// Queued requests on worker `w`'s ring (0 for retired slots).
    pub fn len_of(&self, w: usize) -> usize {
        self.get(w).map(|q| q.len()).unwrap_or(0)
    }

    /// Total queued requests across live slots.
    pub fn total_len(&self) -> usize {
        self.slots
            .read()
            .iter()
            .map(|s| s.as_ref().map(|q| q.len()).unwrap_or(0))
            .sum()
    }

    /// Number of slots ever provisioned (live + retired).
    pub fn slot_count(&self) -> usize {
        self.slots.read().len()
    }

    /// Installs `queue` as slot `w`'s ring, growing the table if needed.
    fn install(&self, w: usize, queue: Arc<RequestQueue>) {
        let mut slots = self.slots.write();
        if w >= slots.len() {
            slots.resize(w + 1, None);
        }
        slots[w] = Some(queue);
    }

    /// Clears slot `w` (retire): subsequent pushes hand the request
    /// back instead of reaching a ring that is about to close.
    fn clear(&self, w: usize) {
        let mut slots = self.slots.write();
        if w < slots.len() {
            slots[w] = None;
        }
    }
}

/// Everything needed to spawn one more worker after open: the base
/// config (per-worker `io_queue` is derived, not stored), the device
/// topology for home-queue assignment, and the lifecycle factory that
/// wires a new worker's latency histograms into the shared registry.
pub struct SpawnSpec {
    /// Base worker config; `io_queue` is recomputed per worker id.
    pub config: WorkerConfig,
    /// Submission queues the env exposes.
    pub device_queues: usize,
    /// Whether workers ride home device queues at all.
    pub queue_affinity: bool,
    /// Builds worker `w`'s metrics lifecycle (None when per-request
    /// metrics are off).
    pub lifecycle: Box<dyn Fn(usize) -> Option<WorkerLifecycle> + Send + Sync>,
}

impl SpawnSpec {
    /// Worker `w`'s home device submission queue — re-derived on every
    /// (re)spawn so the mapping stays `w % queues` as the pool resizes.
    pub fn io_queue(&self, w: usize) -> Option<usize> {
        (self.queue_affinity && self.device_queues > 1).then(|| w % self.device_queues)
    }
}

/// One pool slot: a running worker, or the final counters of a retired
/// one (kept so the metrics series is finalized rather than vanishing).
enum Slot {
    Live(WorkerHandle),
    Retired(Arc<WorkerStats>),
}

/// The dynamic worker pool. All scale operations are serialized by the
/// store's migration lock; the pool's own mutex only protects the slot
/// vector against concurrent metric/introspection readers.
pub struct WorkerPool {
    queues: Arc<QueueTable>,
    slots: Mutex<Vec<Slot>>,
    live: AtomicUsize,
    spec: SpawnSpec,
}

impl WorkerPool {
    pub fn new(queues: Arc<QueueTable>, spec: SpawnSpec) -> WorkerPool {
        WorkerPool {
            queues,
            slots: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            spec,
        }
    }

    /// Spawns one worker into `runtime`: picks the lowest retired slot
    /// (or appends a new one), installs a fresh ring in the queue table
    /// *before* the thread starts, assigns the home device queue
    /// `w % queues`, and journals the `worker_spawn` record. Returns
    /// the worker id.
    ///
    /// A revived slot inherits the retired incarnation's cumulative
    /// counters: the per-worker metric series stay monotonic across
    /// respawns (Prometheus counters never reset mid-series) and the
    /// store-wide sums conserve every op a dead thread completed. Only
    /// the gauges start from zero — the drain already zeroed
    /// `shards_owned`/`scans_active` before the old thread exited.
    pub(crate) fn spawn_into<E: KvsEngine>(&self, runtime: &Arc<ShardRuntime<E>>) -> usize {
        let mut slots = self.slots.lock();
        let w = slots
            .iter()
            .position(|s| matches!(s, Slot::Retired(_)))
            .unwrap_or(slots.len());
        let ring = Arc::new(RequestQueue::with_capacity(self.spec.config.queue_capacity));
        self.queues.install(w, ring);
        let config = WorkerConfig {
            io_queue: self.spec.io_queue(w),
            ..self.spec.config
        };
        let lifecycle = (self.spec.lifecycle)(w);
        let handle = WorkerHandle::spawn_in(w, runtime.clone(), config, lifecycle);
        if w == slots.len() {
            slots.push(Slot::Live(handle));
        } else {
            if let Slot::Retired(old) = &slots[w] {
                carry_counters(old, &handle.stats);
            }
            slots[w] = Slot::Live(handle);
        }
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(j) = runtime.journal.as_deref() {
            let homeq = self.spec.io_queue(w).map(|q| q as u64 + 1).unwrap_or(0);
            j.record(JournalKind::WorkerSpawn, w as u64, live as u64, homeq, 0);
        }
        w
    }

    /// Retires worker `w` after its drain: clears the table slot (new
    /// pushes bounce), closes the ring, joins the thread, and journals
    /// the `worker_retire` record with how many shards the drain
    /// migrated off it. The caller must already have migrated every
    /// shard away — the pool asserts nothing; an undrained retire would
    /// fail that worker's queued requests with `Closed` at join.
    pub fn retire(&self, w: usize, drained: u64, journal: Option<&Journal>) -> Result<()> {
        let mut slots = self.slots.lock();
        let stats = match slots.get(w) {
            Some(Slot::Live(h)) => h.stats.clone(),
            _ => {
                return Err(Error::Config(format!(
                    "worker {w} is not live and cannot be retired"
                )))
            }
        };
        let old = std::mem::replace(&mut slots[w], Slot::Retired(stats));
        // Joining can execute a drain's worth of requests; don't hold
        // the slot lock (metric readers sample it) across it.
        drop(slots);
        self.queues.clear(w);
        if let Slot::Live(mut h) = old {
            h.shutdown();
        }
        let live = self.live.fetch_sub(1, Ordering::Relaxed) - 1;
        if let Some(j) = journal {
            j.record(JournalKind::WorkerRetire, w as u64, live as u64, drained, 0);
        }
        Ok(())
    }

    /// Number of live workers.
    pub fn live_count(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Number of slots ever provisioned (live + retired).
    pub fn slot_count(&self) -> usize {
        self.slots.lock().len()
    }

    /// Live worker ids, ascending.
    pub fn live_ids(&self) -> Vec<usize> {
        self.slots
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Slot::Live(_)).then_some(i))
            .collect()
    }

    /// Whether slot `w` currently runs a worker.
    pub fn is_live(&self, w: usize) -> bool {
        matches!(self.slots.lock().get(w), Some(Slot::Live(_)))
    }

    /// Every slot's counters plus liveness, by slot index — the metrics
    /// and snapshot walk. Retired slots expose their final values.
    pub fn slots_view(&self) -> Vec<(Arc<WorkerStats>, bool)> {
        self.slots
            .lock()
            .iter()
            .map(|s| match s {
                Slot::Live(h) => (h.stats.clone(), true),
                Slot::Retired(stats) => (stats.clone(), false),
            })
            .collect()
    }

    /// Worker `w`'s counters, live or retired.
    pub fn stats_of(&self, w: usize) -> Option<Arc<WorkerStats>> {
        self.slots.lock().get(w).map(|s| match s {
            Slot::Live(h) => h.stats.clone(),
            Slot::Retired(stats) => stats.clone(),
        })
    }

    /// Store close: shuts every live worker down in slot order (close
    /// the ring, join the thread — each drains its pending requests).
    /// Slots stay `Live` so final counters remain readable; only the
    /// threads are gone.
    pub fn shutdown_all(&self) {
        let mut slots = self.slots.lock();
        for s in slots.iter_mut() {
            if let Slot::Live(h) = s {
                h.shutdown();
            }
        }
    }
}

/// Seeds a revived slot's stats with the retired incarnation's final
/// counters. The old thread is gone (no concurrent writers on `old`)
/// and the new thread may already be running, so each value rides in
/// via `fetch_add` on the live atomics. Gauges are excluded: ownership
/// and parked-cursor counts describe the new thread only.
fn carry_counters(old: &WorkerStats, new: &WorkerStats) {
    use std::sync::atomic::AtomicU64;
    let carry = |from: &AtomicU64, to: &AtomicU64| {
        to.fetch_add(from.load(Ordering::Relaxed), Ordering::Relaxed);
    };
    carry(&old.ops, &new.ops);
    carry(&old.batches, &new.batches);
    carry(&old.merged_ops, &new.merged_ops);
    carry(&old.scans_opened, &new.scans_opened);
    carry(&old.scan_chunks, &new.scan_chunks);
    carry(&old.scan_resumes, &new.scan_resumes);
    carry(&old.handoffs_out, &new.handoffs_out);
    carry(&old.handoffs_in, &new.handoffs_in);
    carry(&old.stashed, &new.stashed);
    carry(&old.rerouted, &new.rerouted);
    new.busy.add(old.busy.busy());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_table_slots_install_clear_and_grow() {
        let t = QueueTable::new(vec![Arc::new(RequestQueue::with_capacity(8))]);
        assert_eq!(t.slot_count(), 1);
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_none(), "out of range reads as retired");
        t.install(3, Arc::new(RequestQueue::with_capacity(8)));
        assert_eq!(t.slot_count(), 4, "install grows the table");
        assert!(t.get(1).is_none() && t.get(2).is_none());
        assert!(t.get(3).is_some());
        t.clear(3);
        assert!(t.get(3).is_none());
        assert_eq!(t.slot_count(), 4, "clear keeps the slot");
        assert_eq!(t.len_of(3), 0, "retired slot reads depth 0");
    }

    #[test]
    fn push_to_a_cleared_slot_hands_the_request_back() {
        let t = QueueTable::new(vec![Arc::new(RequestQueue::with_capacity(8))]);
        t.clear(0);
        let req = Request::asynchronous(crate::types::Op::Get { key: b"k".to_vec() }, Box::new(|_| {}));
        let back = t.push_to(0, req);
        assert!(back.is_err(), "cleared slot behaves like a closed ring");
        back.unwrap_err().finish_err(&Error::Closed);
    }
}
