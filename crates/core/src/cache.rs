//! Lock-free hot-record read cache in front of the shard map.
//!
//! BENCH_skew showed that migrating hot shards flattens per-worker load
//! but cannot make hot keys *cheaper* — every GET still pays the
//! queue→worker→engine round-trip (~tens of µs). This cache
//! short-circuits that path for the hot set, FASTER/F2-style: client
//! threads probe a concurrent hash index before any queue submit and, on
//! a hit, return the value with no lock, no queue, and no allocation
//! beyond the returned value bytes.
//!
//! # Structure
//!
//! A power-of-two array of 8-byte atomic slot words. Each non-zero word
//! packs a 48-bit pointer to an immutable, heap-allocated
//! [`CacheRecord`] with a 16-bit hash tag in the high bits; a probe
//! walks a fixed window of [`PROBE`] slots and dereferences only
//! tag-matching words. Records are published with a single CAS
//! (0 → word) and removed with a single CAS (word → 0); removed records
//! are handed to [`p2kvs_util::epoch`] and freed only after every pinned
//! reader has moved on, which is what makes the lockless dereference
//! sound (safety argument in `epoch.rs` and DESIGN.md §11).
//!
//! # Coherence protocol
//!
//! The cache is write-through-invalidate with versioned fills:
//!
//! * **Invalidation-on-write** — the owning worker invalidates a key
//!   *after* the engine write and *before* the request is acked, so a
//!   client that observed its own ack can never read the overwritten
//!   value (read-your-writes). A hit that races ahead of the
//!   invalidation linearizes before the not-yet-acked write.
//! * **Versioned fill** — fills happen on the worker read path. The
//!   filler snapshots the shard's version counter *before* the engine
//!   read; `fill` re-checks it after publishing and self-evicts if any
//!   invalidation bumped it in between, so a racing write can never
//!   leave stale data installed.
//! * **Migration flush** — `HandoffOut`/`ShardInstall` call
//!   [`ReadCache::flush_shard`], dropping every entry of the moving
//!   shard and bumping its version (journaled as `cache_flush`).
//!
//! Only present values are cached (no negative caching), and the cache
//! is volatile: recovery always comes up cold.
//!
//! # Admission
//!
//! Fills are gated by a doorkeeper sketch ([`ReadCache::admit`],
//! TinyLFU-style): a key is admitted only on its *second* miss, so
//! read-once traffic — scans, backfills, verification sweeps — never
//! pays the record allocation or churns resident entries, while
//! anything touched twice is cached from its second miss on. This is
//! what keeps the all-miss overhead of an enabled cache within the
//! miss-path budget (`cache_hitrate` gates it at 3%).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use p2kvs_util::epoch;
use p2kvs_util::hash::{fnv1a64, mix64};

/// Slots probed per key. Removals punch holes, so the probe never
/// early-exits on an empty slot; a fixed window keeps both lookup and
/// invalidation O(1).
pub const PROBE: usize = 8;

/// Fixed per-entry overhead charged against the byte budget (record
/// header, slot word, allocator slack).
pub const RECORD_OVERHEAD: u64 = 64;

/// Target bytes per slot when sizing the index: keeps occupancy low
/// enough that an 8-slot window almost always has room.
const BYTES_PER_SLOT: u64 = 64;

const TAG_SHIFT: u32 = 48;
const PTR_MASK: u64 = (1 << TAG_SHIFT) - 1;

/// One cached record. Immutable after publication except for the CLOCK
/// reference bit.
struct CacheRecord {
    shard: u32,
    /// CLOCK/second-chance reference bit: set on hit, cleared (then
    /// evicted on the next pass) by the eviction hand.
    referenced: AtomicBool,
    /// Bytes charged against the budget for this record.
    charge: u64,
    key: Box<[u8]>,
    value: Box<[u8]>,
}

/// Monotonic counters sampled into `metrics_snapshot` as
/// `p2kvs_cache_*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub fills: u64,
    pub evictions: u64,
    pub invalidations: u64,
    /// Current charged bytes (gauge, not a counter).
    pub bytes: u64,
}

/// The shared, lock-free hot-record read cache. See the module docs for
/// the structure and coherence protocol.
pub struct ReadCache {
    /// Packed `tag<<48 | ptr` words; 0 = empty.
    slots: Box<[AtomicU64]>,
    mask: usize,
    capacity: u64,
    bytes: AtomicU64,
    /// CLOCK eviction hand (slot index, free-running).
    hand: AtomicUsize,
    /// Per-shard invalidation versions backing the fill race check.
    versions: Box<[AtomicU64]>,
    /// First-touch admission sketch: one tag byte per bucket, written on
    /// every rejected miss. See [`ReadCache::admit`].
    doorkeeper: Box<[AtomicU8]>,
    dk_mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ReadCache {
    /// Creates a cache with a byte budget of `capacity` serving `shards`
    /// shards. `capacity` must be non-zero (a zero budget means "no
    /// cache" and the store simply doesn't construct one).
    pub fn new(capacity: u64, shards: usize) -> ReadCache {
        assert!(capacity > 0, "zero-capacity cache must not be constructed");
        let nslots = (capacity / BYTES_PER_SLOT)
            .next_power_of_two()
            .clamp(64, 1 << 24) as usize;
        let slots: Box<[AtomicU64]> = (0..nslots).map(|_| AtomicU64::new(0)).collect();
        let versions: Box<[AtomicU64]> = (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect();
        // One tag byte per slot (nslots is a power of two clamped
        // between powers of two, so the sketch size is one as well): a
        // smaller sketch overwrites tail keys' tags before their second
        // touch, visibly costing hit rate near full hot-set capacity.
        let dk = nslots.clamp(1 << 10, 1 << 20);
        let doorkeeper: Box<[AtomicU8]> = (0..dk).map(|_| AtomicU8::new(0)).collect();
        ReadCache {
            slots,
            mask: nslots - 1,
            doorkeeper,
            dk_mask: dk - 1,
            capacity,
            bytes: AtomicU64::new(0),
            hand: AtomicUsize::new(0),
            versions,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn hash(shard: u32, key: &[u8]) -> u64 {
        mix64(fnv1a64(key) ^ ((shard as u64) << 32 | 0x9E37_79B9))
    }

    fn tag_of(hash: u64) -> u16 {
        (hash >> TAG_SHIFT) as u16
    }

    fn pack(ptr: *const CacheRecord, tag: u16) -> Option<u64> {
        let p = ptr as u64;
        // Linux user-space addresses fit in 48 bits (57 with LA57); if a
        // pointer ever doesn't, skip caching rather than corrupt it.
        if p & !PTR_MASK != 0 {
            return None;
        }
        Some(p | ((tag as u64) << TAG_SHIFT))
    }

    fn ptr_of(word: u64) -> *const CacheRecord {
        (word & PTR_MASK) as *const CacheRecord
    }

    fn word_tag(word: u64) -> u16 {
        (word >> TAG_SHIFT) as u16
    }

    /// The shard's current invalidation version. Fillers snapshot this
    /// **before** the engine read and pass it to [`ReadCache::fill`].
    pub fn version(&self, shard: u32) -> u64 {
        self.versions[shard as usize].load(Ordering::SeqCst)
    }

    /// Probes for `key` in `shard`. Lock-free; allocates only the
    /// returned value bytes (plus, on a thread's very first call, its
    /// epoch registration).
    pub fn lookup(&self, shard: u32, key: &[u8]) -> Option<Vec<u8>> {
        let h = Self::hash(shard, key);
        let tag = Self::tag_of(h);
        let _guard = epoch::pin();
        for i in 0..PROBE {
            let word = self.slots[(h as usize).wrapping_add(i) & self.mask].load(Ordering::Acquire);
            if word == 0 || Self::word_tag(word) != tag {
                continue;
            }
            // The word was loaded under our epoch pin: even if it is
            // concurrently unlinked, the record is retired, not freed,
            // until we unpin.
            let rec = unsafe { &*Self::ptr_of(word) };
            if rec.shard == shard && rec.key.as_ref() == key {
                rec.referenced.store(true, Ordering::Relaxed);
                let value = rec.value.to_vec();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// First-touch admission filter (doorkeeper): returns whether a
    /// missed key has earned a [`ReadCache::fill`]. The first miss
    /// stamps the key's tag into a small sketch and is rejected; a
    /// second miss finds the tag and is admitted, so read-once traffic
    /// never allocates a record or evicts resident entries. The sketch
    /// is never cleared — colliding keys overwrite each other's tags,
    /// which ages it for free, and a key invalidated by a write keeps
    /// its tag so hot keys refill on their first post-write miss. A
    /// false positive (two keys sharing bucket *and* tag) merely admits
    /// an occasional single-touch key.
    pub fn admit(&self, shard: u32, key: &[u8]) -> bool {
        let h = Self::hash(shard, key);
        let idx = ((h >> 16) as usize) & self.dk_mask;
        // 0 means "empty bucket": remap so an untouched sketch never
        // admits.
        let tag = match (h >> 40) as u8 {
            0 => 1,
            t => t,
        };
        self.doorkeeper[idx].swap(tag, Ordering::Relaxed) == tag
    }

    /// Installs `key → value` read from `shard` at invalidation version
    /// `seen_version` (snapshotted via [`ReadCache::version`] before the
    /// engine read). Best-effort: a full window, an unsatisfiable
    /// budget, or a lost race simply skips the fill.
    pub fn fill(&self, shard: u32, key: &[u8], value: &[u8], seen_version: u64) {
        let charge = key.len() as u64 + value.len() as u64 + RECORD_OVERHEAD;
        if charge > self.capacity {
            return;
        }
        let h = Self::hash(shard, key);
        let tag = Self::tag_of(h);
        let _guard = epoch::pin();
        // Make room under the byte budget first (bounded scan).
        if self.bytes.load(Ordering::Relaxed) + charge > self.capacity {
            self.evict(charge);
            if self.bytes.load(Ordering::Relaxed) + charge > self.capacity {
                return;
            }
        }
        let rec = Box::new(CacheRecord {
            shard,
            referenced: AtomicBool::new(false),
            charge,
            key: key.into(),
            value: value.into(),
        });
        let ptr = Box::into_raw(rec);
        let Some(word) = Self::pack(ptr, tag) else {
            drop(unsafe { Box::from_raw(ptr) });
            return;
        };
        let mut installed_at = None;
        for i in 0..PROBE {
            let idx = (h as usize).wrapping_add(i) & self.mask;
            let cur = self.slots[idx].load(Ordering::Acquire);
            if cur != 0 && Self::word_tag(cur) == tag {
                let other = unsafe { &*Self::ptr_of(cur) };
                if other.shard == shard && other.key.as_ref() == key {
                    // A concurrent fill won; keep the incumbent.
                    drop(unsafe { Box::from_raw(ptr) });
                    return;
                }
            }
            if cur == 0
                && self.slots[idx]
                    .compare_exchange(0, word, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                installed_at = Some(idx);
                break;
            }
        }
        if installed_at.is_none() {
            // Window full: force a victim inside the window so hot
            // buckets still turn over.
            installed_at = self.displace_into_window(h, word);
        }
        let Some(idx) = installed_at else {
            drop(unsafe { Box::from_raw(ptr) });
            return;
        };
        self.bytes.fetch_add(charge, Ordering::Relaxed);
        self.fills.fetch_add(1, Ordering::Relaxed);
        // Fill race check: if any invalidation for this shard landed
        // between the caller's engine read and now, the value may be
        // stale — unpublish it ourselves.
        if self.versions[shard as usize].load(Ordering::SeqCst) != seen_version
            && self.remove_at(idx, word)
        {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evicts one record from the probe window of `h` and CASes `word`
    /// into the freed slot. Returns the slot index on success. Caller
    /// holds an epoch pin.
    fn displace_into_window(&self, h: u64, word: u64) -> Option<usize> {
        for pass in 0..2 {
            for i in 0..PROBE {
                let idx = (h as usize).wrapping_add(i) & self.mask;
                let cur = self.slots[idx].load(Ordering::Acquire);
                if cur == 0 {
                    if self.slots[idx]
                        .compare_exchange(0, word, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Some(idx);
                    }
                    continue;
                }
                let rec = unsafe { &*Self::ptr_of(cur) };
                // First pass honours the reference bit; second pass is
                // forced so a fully-hot window still admits new keys.
                if pass == 0 && rec.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                if self.remove_at(idx, cur) {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if self.slots[idx]
                        .compare_exchange(0, word, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Some(idx);
                    }
                }
            }
        }
        None
    }

    /// Unlinks `word` from `slot[idx]` and retires its record,
    /// subtracting its charge. Returns false if someone else removed it
    /// first. Caller holds an epoch pin.
    fn remove_at(&self, idx: usize, word: u64) -> bool {
        if self.slots[idx]
            .compare_exchange(word, 0, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let rec = unsafe { Box::from_raw(Self::ptr_of(word) as *mut CacheRecord) };
        self.bytes.fetch_sub(rec.charge, Ordering::Relaxed);
        epoch::retire(rec);
        true
    }

    /// Drops every cached entry for `key` in `shard` and bumps the
    /// shard's version so in-flight fills that read before the write
    /// cannot (re)install stale data. Called by the owning worker after
    /// the engine write, **before** the request is acked.
    pub fn invalidate(&self, shard: u32, key: &[u8]) {
        self.versions[shard as usize].fetch_add(1, Ordering::SeqCst);
        let h = Self::hash(shard, key);
        let tag = Self::tag_of(h);
        let _guard = epoch::pin();
        for i in 0..PROBE {
            let idx = (h as usize).wrapping_add(i) & self.mask;
            let word = self.slots[idx].load(Ordering::Acquire);
            if word == 0 || Self::word_tag(word) != tag {
                continue;
            }
            let rec = unsafe { &*Self::ptr_of(word) };
            if rec.shard == shard && rec.key.as_ref() == key && self.remove_at(idx, word) {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                // Keep scanning: concurrent fills can briefly leave
                // duplicates in the window.
            }
        }
    }

    /// Drops every cached entry belonging to `shard` (migration
    /// handoff/install). Returns `(entries, bytes)` dropped for the
    /// `cache_flush` journal record.
    pub fn flush_shard(&self, shard: u32) -> (u64, u64) {
        self.versions[shard as usize].fetch_add(1, Ordering::SeqCst);
        let mut entries = 0u64;
        let mut bytes = 0u64;
        let _guard = epoch::pin();
        for idx in 0..self.slots.len() {
            let word = self.slots[idx].load(Ordering::Acquire);
            if word == 0 {
                continue;
            }
            let rec = unsafe { &*Self::ptr_of(word) };
            if rec.shard == shard {
                let charge = rec.charge;
                if self.remove_at(idx, word) {
                    entries += 1;
                    bytes += charge;
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (entries, bytes)
    }

    /// CLOCK/second-chance sweep freeing at least `need` bytes (best
    /// effort, bounded at two full revolutions). Caller holds an epoch
    /// pin.
    fn evict(&self, need: u64) {
        let n = self.slots.len();
        let mut freed = 0u64;
        let mut scanned = 0usize;
        while freed < need && scanned < 2 * n {
            let idx = self.hand.fetch_add(1, Ordering::Relaxed) & self.mask;
            scanned += 1;
            let word = self.slots[idx].load(Ordering::Acquire);
            if word == 0 {
                continue;
            }
            let rec = unsafe { &*Self::ptr_of(word) };
            if rec.referenced.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            let charge = rec.charge;
            if self.remove_at(idx, word) {
                freed += charge;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current counter values (and the byte gauge).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// The configured byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live entries (full scan; tests and introspection).
    pub fn entries(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Acquire) != 0)
            .count() as u64
    }
}

impl Drop for ReadCache {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers can exist, so records can
        // be freed directly instead of through the epoch domain.
        for slot in self.slots.iter() {
            let word = slot.swap(0, Ordering::AcqRel);
            if word != 0 {
                drop(unsafe { Box::from_raw(Self::ptr_of(word) as *mut CacheRecord) });
            }
        }
        // Opportunistically drain anything this cache retired earlier.
        epoch::try_collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> ReadCache {
        ReadCache::new(64 << 10, 8)
    }

    #[test]
    fn fill_then_lookup_roundtrip() {
        let c = cache();
        assert_eq!(c.lookup(1, b"k"), None);
        let v = c.version(1);
        c.fill(1, b"k", b"hello", v);
        assert_eq!(c.lookup(1, b"k").as_deref(), Some(&b"hello"[..]));
        // Same key, different shard: distinct entry space.
        assert_eq!(c.lookup(2, b"k"), None);
        let s = c.counters();
        assert_eq!((s.hits, s.fills), (1, 1));
        assert_eq!(s.misses, 2);
        assert!(s.bytes > 0);
    }

    #[test]
    fn invalidate_removes_and_bumps_version() {
        let c = cache();
        let v = c.version(3);
        c.fill(3, b"a", b"1", v);
        assert!(c.lookup(3, b"a").is_some());
        c.invalidate(3, b"a");
        assert_eq!(c.lookup(3, b"a"), None);
        assert_ne!(c.version(3), v);
        assert_eq!(c.counters().bytes, 0);
    }

    #[test]
    fn stale_fill_is_rejected_by_version_check() {
        let c = cache();
        let v = c.version(0);
        // A write lands (and invalidates) between the engine read and
        // the fill: the fill must not stick.
        c.invalidate(0, b"k");
        c.fill(0, b"k", b"stale", v);
        assert_eq!(c.lookup(0, b"k"), None);
        assert_eq!(c.counters().bytes, 0);
    }

    #[test]
    fn flush_shard_drops_only_that_shard() {
        let c = cache();
        for i in 0..16u32 {
            let key = [i as u8];
            let shard = i % 2;
            let v = c.version(shard);
            c.fill(shard, &key, b"v", v);
        }
        let (entries, bytes) = c.flush_shard(0);
        assert!(entries > 0 && bytes > 0);
        for i in 0..16u32 {
            let key = [i as u8];
            let hit = c.lookup(i % 2, &key).is_some();
            assert_eq!(hit, i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn byte_budget_is_respected_via_eviction() {
        let c = ReadCache::new(4 << 10, 1);
        let val = vec![7u8; 256];
        for i in 0..200u32 {
            let key = i.to_be_bytes();
            let v = c.version(0);
            c.fill(0, &key, &val, v);
            assert!(
                c.counters().bytes <= c.capacity(),
                "budget exceeded at {i}: {}",
                c.counters().bytes
            );
        }
        let s = c.counters();
        assert!(s.evictions > 0, "no evictions under pressure");
        assert!(s.fills > 10, "almost nothing was admitted");
    }

    #[test]
    fn oversized_values_are_skipped() {
        let c = ReadCache::new(1 << 10, 1);
        let v = c.version(0);
        c.fill(0, b"big", &vec![0u8; 4096], v);
        assert_eq!(c.lookup(0, b"big"), None);
        assert_eq!(c.counters().bytes, 0);
    }

    #[test]
    fn clock_keeps_referenced_entries() {
        let c = ReadCache::new(8 << 10, 1);
        let hot = b"hot-key";
        let v = c.version(0);
        c.fill(0, hot, &[1u8; 64], v);
        // Keep the hot key referenced while cold traffic churns.
        for i in 0..500u32 {
            assert!(c.lookup(0, hot).is_some(), "hot key evicted at {i}");
            let key = i.to_be_bytes();
            let v = c.version(0);
            c.fill(0, &key, &[0u8; 64], v);
        }
        assert!(c.counters().evictions > 0);
    }

    #[test]
    fn doorkeeper_admits_on_the_second_touch() {
        let c = cache();
        assert!(!c.admit(0, b"twice"), "first touch must be rejected");
        assert!(c.admit(0, b"twice"), "second touch must be admitted");
        assert!(c.admit(0, b"twice"), "the tag is sticky once set");
        // A scan of distinct keys is (almost) never admitted.
        let admitted = (0..10_000u32)
            .filter(|i| c.admit(1, &i.to_be_bytes()))
            .count();
        assert!(
            admitted < 100,
            "{admitted} single-touch keys of 10000 were admitted"
        );
    }

    #[test]
    fn concurrent_fill_invalidate_lookup_smoke() {
        use std::sync::Arc;
        let c = Arc::new(ReadCache::new(256 << 10, 4));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let shard = t % 4;
                    let key = (i % 64).to_be_bytes();
                    match i % 3 {
                        0 => {
                            let v = c.version(shard);
                            c.fill(shard, &key, &i.to_be_bytes(), v);
                        }
                        1 => {
                            let _ = c.lookup(shard, &key);
                        }
                        _ => c.invalidate(shard, &key),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.counters();
        let lookups_per_thread = (0..2_000u32).filter(|i| i % 3 == 1).count() as u64;
        assert_eq!(s.hits + s.misses, 4 * lookups_per_thread);
    }
}
