//! Per-worker request queue with opportunistic batch dequeue.
//!
//! Implements the queue side of Algorithm 1 on a **bounded lock-free MPSC
//! ring**: `pop_batch_into` blocks for the first request, then
//! *opportunistically* (without waiting) drains up to `max - 1` further
//! requests **of the same OBM class**. SCAN/RANGE and GSN-tagged batches
//! are always dequeued alone; under a light load the queue is usually
//! empty after the first pop and batching degrades to single-request
//! processing, exactly as §4.3 describes.
//!
//! # Why lock-free
//!
//! The accessing layer exists to make the vertical dimension cheap: the
//! user-thread → worker handoff must cost far less than one KV operation
//! (§4.1, Fig 9). The previous implementation paid a `Mutex` + `Condvar`
//! acquisition and a condvar notify on *every* push. This one is a
//! Vyukov-style bounded ring:
//!
//! * **Producers** (user threads) claim a slot with one CAS on `tail` and
//!   publish it with one release store on the slot's sequence number — no
//!   lock, no syscall.
//! * **The consumer** (the worker — there is exactly one per queue) pops
//!   with plain loads/stores on `head`; it never contends with producers
//!   on the same cache line (`head`/`tail` are cache-line padded).
//! * **Wakeups are spin-then-park**: the consumer spins a bounded number
//!   of iterations before parking on a per-worker event, and producers
//!   only pay the unpark (one syscall) when the consumer has actually
//!   parked. Light load keeps spin-path latency; heavy load never pays a
//!   notify per push.
//! * **Depth is a relaxed atomic** maintained by push/pop, so monitoring
//!   ([`RequestQueue::len`]) never touches the data path.
//!
//! # Backpressure
//!
//! The ring is bounded (capacity is [`RequestQueue::with_capacity`],
//! rounded up to a power of two, default
//! [`DEFAULT_QUEUE_CAPACITY`]). When it is full, [`RequestQueue::push`]
//! **blocks the producer** — first spinning, then yielding, then sleeping
//! in short naps — until the consumer frees a slot or the queue closes.
//! This is deliberate: the synchronous API's user threads are the source
//! of load, so stalling them is the only stable response to an
//! over-driven worker (admission control, not unbounded memory growth).
//! [`RequestQueue::try_push`] is the non-blocking variant for callers
//! that prefer load shedding.
//!
//! # Close semantics
//!
//! `close()` sets a closed bit *inside* the producers' `tail` word with
//! one `fetch_or`, which makes close atomic with respect to pushes: every
//! `push` either linearizes before the close (it returns `Ok` and the
//! request **will** be drained and completed) or after it (it returns
//! `Err` and completes nothing). The consumer drains everything published
//! before the bit was set and then sees "closed and drained".
//!
//! # Model checking
//!
//! The lock-free core ([`Ring`]) is written against a small facade over
//! `std::sync::atomic` / `UnsafeCell` so that the `loom` feature can swap
//! in `loom`'s checked versions; `cargo test -p p2kvs --features loom
//! --lib queue::loom_model` exhaustively model-checks push / pop / close
//! interleavings (the parking layer is excluded under loom — loom does
//! not model `thread::park` — and covered by the stress tests instead).

use crate::types::{OpClass, Request};

/// Default bound of a worker's request ring (slots). Must be a power of
/// two; see [`crate::store::P2KvsOptions::queue_capacity`].
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Iterations the consumer spins before parking (about a microsecond of
/// busy-waiting: cheap against a ~5 µs KV op, long enough that a
/// saturated producer set virtually never pays an unpark syscall).
const CONSUMER_SPIN: usize = 256;

/// `limit` on a multiprocessor, 0 on a uniprocessor. With one hardware
/// thread, every spin iteration only delays the peer that would make
/// progress, so every spin-then-park site degrades to park/yield
/// immediately. Detected once, cached in a process-wide atomic.
#[cfg(not(feature = "loom"))]
pub(crate) fn adaptive_spin(limit: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NCPUS: AtomicUsize = AtomicUsize::new(0);
    let mut n = NCPUS.load(Ordering::Relaxed);
    if n == 0 {
        n = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        NCPUS.store(n, Ordering::Relaxed);
    }
    if n > 1 {
        limit
    } else {
        0
    }
}

/// Under loom, spinning is just more interleavings to explore; keep the
/// limit so the non-parking spin paths stay in the model.
#[cfg(feature = "loom")]
pub(crate) fn adaptive_spin(limit: usize) -> usize {
    limit
}

// ---------------------------------------------------------------------------
// std / loom facade
// ---------------------------------------------------------------------------

#[cfg(feature = "loom")]
pub(crate) mod sync {
    pub(crate) use loom::cell::UnsafeCell;
    pub(crate) use loom::sync::atomic::{fence, AtomicUsize, Ordering};
    pub(crate) use loom::thread::yield_now;
}

#[cfg(not(feature = "loom"))]
pub(crate) mod sync {
    pub(crate) use std::sync::atomic::{fence, AtomicUsize, Ordering};
    pub(crate) use std::thread::yield_now;

    /// API-compatible subset of `loom::cell::UnsafeCell`.
    #[derive(Debug)]
    pub(crate) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub(crate) fn new(v: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

use sync::{fence, AtomicUsize, Ordering, UnsafeCell};

/// Pads (and aligns) a value to two cache lines, so producer-side and
/// consumer-side words never false-share.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) T);

// ---------------------------------------------------------------------------
// The lock-free core: a bounded MPSC ring with a closed bit
// ---------------------------------------------------------------------------

/// Why a `try_push` did not enqueue.
pub enum PushError<T> {
    /// Every slot is occupied; retry after the consumer makes progress.
    Full(T),
    /// The ring is closed; the value will never be accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The value that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

struct Slot<T> {
    /// Vyukov sequence number: `index` when free for the producer of
    /// lap `index / capacity`, `index + 1` once published, and
    /// `index + capacity` after the consumer empties it.
    seq: AtomicUsize,
    val: UnsafeCell<std::mem::MaybeUninit<T>>,
}

/// Bounded MPSC ring. Producers are lock- and wait-free apart from the
/// slot-claim CAS; **pops and peeks must come from one thread at a time**
/// (enforced by [`RequestQueue`], which serializes its consumer section).
///
/// The `tail` word carries a closed bit in bit 0 (indices are shifted
/// left by one), so closing is a single `fetch_or` that is atomic with
/// respect to every concurrent push.
pub(crate) struct Ring<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    /// `next_write_index << 1 | closed_bit`. Producers CAS this.
    tail: CachePadded<AtomicUsize>,
    /// Next read index (plain, consumer-only).
    head: CachePadded<AtomicUsize>,
}

const CLOSED_BIT: usize = 1;

unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn with_capacity(capacity: usize) -> Ring<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(std::mem::MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            mask: cap - 1,
            slots,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Multi-producer enqueue: one CAS to claim a slot, one release store
    /// to publish it.
    fn try_push(&self, v: T) -> Result<(), PushError<T>> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            if tail & CLOSED_BIT != 0 {
                return Err(PushError::Closed(v));
            }
            let idx = tail >> 1;
            let slot = &self.slots[idx & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - idx as isize;
            if dif == 0 {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    (idx.wrapping_add(1)) << 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.val.with_mut(|p| unsafe { (*p).write(v) });
                        slot.seq.store(idx.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                // The slot still holds last lap's value: full. Re-check
                // tail first — a stale read must not misreport Full.
                let t = self.tail.0.load(Ordering::Relaxed);
                if t == tail {
                    return Err(PushError::Full(v));
                }
                tail = t;
            } else {
                // Another producer claimed this index; reload and retry.
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Single-consumer dequeue.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == head.wrapping_add(1) {
            let v = slot.val.with_mut(|p| unsafe { (*p).assume_init_read() });
            slot.seq
                .store(head.wrapping_add(self.capacity()), Ordering::Release);
            self.head.0.store(head.wrapping_add(1), Ordering::Relaxed);
            Some(v)
        } else {
            None
        }
    }

    /// Single-consumer peek at the next value (if published).
    fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        let head = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == head.wrapping_add(1) {
            Some(slot.val.with(|p| f(unsafe { (*p).assume_init_ref() })))
        } else {
            None
        }
    }

    /// Atomically rejects all future pushes. Pushes that already claimed
    /// a slot will still publish; [`Ring::drained`] turns true only after
    /// the consumer has popped them all.
    fn close(&self) {
        self.tail.0.fetch_or(CLOSED_BIT, Ordering::SeqCst);
    }

    fn is_closed(&self) -> bool {
        self.tail.0.load(Ordering::Acquire) & CLOSED_BIT != 0
    }

    /// Consumer-side: closed and every accepted element was popped. While
    /// this is false after a close, some producer may still be publishing
    /// a claimed slot — the consumer spins it in (the window between a
    /// producer's claim-CAS and its publish store is a handful of
    /// instructions, so this is nearly instantaneous).
    fn drained(&self) -> bool {
        let tail = self.tail.0.load(Ordering::Acquire);
        tail & CLOSED_BIT != 0 && self.head.0.load(Ordering::Relaxed) == tail >> 1
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Exclusive access: drop whatever was published but never popped.
        while self.try_pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// Consumer parking (the per-worker "event")
// ---------------------------------------------------------------------------

/// One-consumer park/unpark event. Producers pay a fence and one relaxed
/// load on the fast path; the unpark syscall happens only when the
/// consumer has actually parked (or is committed to parking).
#[cfg(not(feature = "loom"))]
struct ConsumerEvent {
    /// 1 while the consumer is parked (or preparing to park).
    parked: std::sync::atomic::AtomicUsize,
    /// The consumer thread handle, written by the consumer before it
    /// advertises `parked`. A mutex, but only park/unpark touch it —
    /// never the data path.
    waiter: std::sync::Mutex<Option<std::thread::Thread>>,
}

#[cfg(not(feature = "loom"))]
impl ConsumerEvent {
    fn new() -> ConsumerEvent {
        ConsumerEvent {
            parked: std::sync::atomic::AtomicUsize::new(0),
            waiter: std::sync::Mutex::new(None),
        }
    }

    /// Producer side: wake the consumer iff it is parked. Callers must
    /// publish their data *before* calling (this issues the SeqCst fence
    /// that pairs with [`ConsumerEvent::prepare_park`]).
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) != 0 && self.parked.swap(0, Ordering::AcqRel) != 0 {
            if let Some(t) = self.waiter.lock().expect("consumer event").as_ref() {
                t.unpark();
            }
        }
    }

    /// Consumer side: advertise intent to park. After this returns the
    /// caller must re-check for work (the Dekker re-check: either the
    /// producer sees `parked`, or we see its element) and only then call
    /// `std::thread::park()`.
    fn prepare_park(&self) {
        let mut waiter = self.waiter.lock().expect("consumer event");
        if waiter.as_ref().map(|t| t.id()) != Some(std::thread::current().id()) {
            *waiter = Some(std::thread::current());
        }
        drop(waiter);
        self.parked.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
    }

    /// Consumer side: leave the parked state (after waking for any
    /// reason).
    fn cancel_park(&self) {
        self.parked.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// RequestQueue: the ring + OBM batch formation + parking + backpressure
// ---------------------------------------------------------------------------

/// A bounded, blocking MPSC queue of [`Request`]s: lock-free producers,
/// one batching consumer with a spin-then-park idle loop.
///
/// Any number of threads may `push`; batch-popping is serialized
/// internally (a worker owns its queue, so the serializer is never
/// contended in practice).
pub struct RequestQueue {
    ring: Ring<Request>,
    /// Event-counted depth gauge (push increments, pop decrements, both
    /// relaxed): monitoring reads never contend with the data path.
    depth: CachePadded<AtomicUsize>,
    /// Serializes the consumer section so concurrent `pop_batch` calls
    /// are safe (0 = free, 1 = held).
    pop_guard: AtomicUsize,
    #[cfg(not(feature = "loom"))]
    event: ConsumerEvent,
}

impl Default for RequestQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestQueue {
    /// Creates a queue with [`DEFAULT_QUEUE_CAPACITY`] slots.
    pub fn new() -> RequestQueue {
        RequestQueue::with_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// Creates a queue bounded to `capacity` requests (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> RequestQueue {
        RequestQueue {
            ring: Ring::with_capacity(capacity),
            depth: CachePadded(AtomicUsize::new(0)),
            pop_guard: AtomicUsize::new(0),
            #[cfg(not(feature = "loom"))]
            event: ConsumerEvent::new(),
        }
    }

    /// Number of slots (the bound applied to `push`).
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Enqueues `req`, **blocking while the queue is full** (spin →
    /// yield → short naps; see the module docs on backpressure). Returns
    /// `Err(req)` (completing nothing) iff the queue is closed.
    pub fn push(&self, req: Request) -> Result<(), Request> {
        let mut req = req;
        let mut full_rounds = 0u32;
        loop {
            match self.try_push(req) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(r)) => return Err(r),
                Err(PushError::Full(r)) => {
                    req = r;
                    backpressure_backoff(&mut full_rounds);
                }
            }
        }
    }

    /// Non-blocking enqueue: on a full queue returns
    /// [`PushError::Full`] immediately instead of applying backpressure.
    pub fn try_push(&self, req: Request) -> Result<(), PushError<Request>> {
        self.ring.try_push(req).map(|()| {
            self.depth.0.fetch_add(1, Ordering::Relaxed);
            #[cfg(not(feature = "loom"))]
            self.event.wake();
        })
    }

    /// Blocks for the next request, then drains consecutive same-class
    /// requests into `batch` up to `max` total (Algorithm 1), reusing
    /// `batch`'s allocation. The run may interleave shards — the worker
    /// splits it into per-shard engine calls after dequeue, so stopping
    /// at a shard boundary here would only shrink merge windows for
    /// workers owning several shards. Returns `false` when the queue is
    /// closed and fully drained (`batch` is left empty).
    pub fn pop_batch_into(&self, max: usize, batch: &mut Vec<Request>) -> bool {
        batch.clear();
        let _guard = self.consumer_guard();
        let first = match self.pop_blocking() {
            Some(r) => r,
            None => return false,
        };
        let class = first.op.class();
        batch.push(first);
        if class != OpClass::Solo {
            while batch.len() < max {
                let next_same =
                    matches!(self.ring.peek(|r| r.op.class() == class), Some(true));
                if !next_same {
                    break;
                }
                let req = self.ring.try_pop().expect("peeked element is consumable");
                batch.push(req);
            }
        }
        // One gauge update for the whole batch instead of one per pop.
        self.depth.0.fetch_sub(batch.len(), Ordering::Relaxed);
        true
    }

    /// Allocating convenience wrapper over [`RequestQueue::pop_batch_into`].
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Request>> {
        let mut batch = Vec::new();
        if self.pop_batch_into(max, &mut batch) {
            Some(batch)
        } else {
            None
        }
    }

    /// Closes the queue: concurrent and future pushes fail, the consumer
    /// drains what was accepted and then stops. Atomic with respect to
    /// pushes — a push that returned `Ok` is always drained.
    pub fn close(&self) {
        self.ring.close();
        #[cfg(not(feature = "loom"))]
        self.event.wake();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.ring.is_closed()
    }

    /// Current depth. Event-counted with relaxed atomics: cheap and
    /// lock-free for monitoring, exact whenever the queue is quiescent,
    /// momentarily approximate under concurrent traffic.
    pub fn len(&self) -> usize {
        self.depth.0.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty (same caveat as
    /// [`RequestQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks (spin, then park) until a request is available or the queue
    /// is closed and drained. Must hold the consumer guard. Does NOT
    /// update the depth gauge — [`RequestQueue::pop_batch_into`] settles
    /// it once per batch.
    fn pop_blocking(&self) -> Option<Request> {
        let spin_limit = adaptive_spin(CONSUMER_SPIN);
        loop {
            let mut spins = 0;
            loop {
                if let Some(r) = self.ring.try_pop() {
                    return Some(r);
                }
                if self.ring.is_closed() {
                    // Drain the publish window of producers that beat the
                    // close, then stop.
                    if self.ring.drained() {
                        return None;
                    }
                    sync::yield_now();
                    continue;
                }
                spins += 1;
                if spins > spin_limit {
                    break;
                }
                if spins % 32 == 0 {
                    sync::yield_now();
                } else {
                    #[cfg(not(feature = "loom"))]
                    std::hint::spin_loop();
                    #[cfg(feature = "loom")]
                    sync::yield_now();
                }
            }
            // Park. Under loom there is no park modeling; fall back to a
            // yield loop (the model tests only use the non-parking paths).
            #[cfg(not(feature = "loom"))]
            {
                self.event.prepare_park();
                // Dekker re-check: a producer that published before our
                // `parked` store is visible now; a producer that publishes
                // after it will see `parked` and unpark us.
                if let Some(r) = self.ring.try_pop() {
                    self.event.cancel_park();
                    return Some(r);
                }
                if self.ring.is_closed() {
                    self.event.cancel_park();
                    continue;
                }
                std::thread::park();
                self.event.cancel_park();
            }
            #[cfg(feature = "loom")]
            sync::yield_now();
        }
    }

    /// Serializes the consumer section (spin lock; uncontended in the
    /// one-worker-per-queue deployment this is built for).
    fn consumer_guard(&self) -> ConsumerGuard<'_> {
        let mut rounds = 0u32;
        while self
            .pop_guard
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            rounds += 1;
            #[cfg(not(feature = "loom"))]
            if rounds % 64 == 0 || adaptive_spin(1) == 0 {
                sync::yield_now();
            } else {
                std::hint::spin_loop();
            }
            #[cfg(feature = "loom")]
            sync::yield_now();
        }
        ConsumerGuard { queue: self }
    }
}

struct ConsumerGuard<'a> {
    queue: &'a RequestQueue,
}

impl Drop for ConsumerGuard<'_> {
    fn drop(&mut self) {
        self.queue.pop_guard.store(0, Ordering::Release);
    }
}

/// Producer-side backoff while the ring is full: spin briefly (skipped
/// on uniprocessors), then yield, then sleep in 50 µs naps (the consumer
/// is the bottleneck at that point; burning a core would only slow it
/// down).
#[cfg(not(feature = "loom"))]
fn backpressure_backoff(rounds: &mut u32) {
    *rounds += 1;
    match *rounds {
        0..=16 if adaptive_spin(1) > 0 => std::hint::spin_loop(),
        0..=64 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(50)),
    }
}

#[cfg(feature = "loom")]
fn backpressure_backoff(_rounds: &mut u32) {
    sync::yield_now();
}

// ---------------------------------------------------------------------------
// MutexQueue: the pre-ring implementation, kept as the benchmark baseline
// ---------------------------------------------------------------------------

/// The original Mutex + Condvar queue (on std primitives), kept **only**
/// as the baseline for the accessing-layer micro-benchmarks — every
/// framework worker uses [`RequestQueue`]. Unbounded, one lock
/// acquisition plus one notify per push.
pub struct MutexQueue {
    inner: std::sync::Mutex<MutexQueueInner>,
    cv: std::sync::Condvar,
}

struct MutexQueueInner {
    queue: std::collections::VecDeque<Request>,
    closed: bool,
}

impl Default for MutexQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl MutexQueue {
    /// Creates an empty queue.
    pub fn new() -> MutexQueue {
        MutexQueue {
            inner: std::sync::Mutex::new(MutexQueueInner {
                queue: std::collections::VecDeque::new(),
                closed: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Enqueues `req`; `Err(req)` if closed.
    pub fn push(&self, req: Request) -> Result<(), Request> {
        let mut inner = self.inner.lock().expect("mutex queue");
        if inner.closed {
            return Err(req);
        }
        inner.queue.push_back(req);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking batch pop with the same OBM semantics as
    /// [`RequestQueue::pop_batch_into`].
    pub fn pop_batch_into(&self, max: usize, batch: &mut Vec<Request>) -> bool {
        batch.clear();
        let mut inner = self.inner.lock().expect("mutex queue");
        loop {
            if let Some(first) = inner.queue.pop_front() {
                let class = first.op.class();
                batch.push(first);
                if class != OpClass::Solo {
                    while batch.len() < max {
                        let next_same = inner
                            .queue
                            .front()
                            .map(|r| r.op.class() == class)
                            .unwrap_or(false);
                        if !next_same {
                            break;
                        }
                        batch.push(inner.queue.pop_front().expect("front just checked"));
                    }
                }
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = self.cv.wait(inner).expect("mutex queue");
        }
    }

    /// Allocating wrapper over [`MutexQueue::pop_batch_into`].
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Request>> {
        let mut batch = Vec::new();
        if self.pop_batch_into(max, &mut batch) {
            Some(batch)
        } else {
            None
        }
    }

    /// Closes the queue: waiting consumers drain what is left and stop.
    pub fn close(&self) {
        self.inner.lock().expect("mutex queue").closed = true;
        self.cv.notify_all();
    }

    /// Current depth (takes the lock — this is the contention the ring's
    /// relaxed gauge removes).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mutex queue").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::types::{Op, Request};

    fn put(k: &str) -> Request {
        Request::sync(Op::Put {
            key: k.as_bytes().to_vec(),
            value: b"v".to_vec(),
        })
        .0
    }

    fn get(k: &str) -> Request {
        Request::sync(Op::Get {
            key: k.as_bytes().to_vec(),
        })
        .0
    }

    fn scan() -> Request {
        Request::sync(Op::ScanOpen {
            start: b"a".to_vec(),
            end: None,
            limit: 10,
            max_bytes: usize::MAX,
        })
        .0
    }

    #[test]
    fn batches_consecutive_same_type() {
        let q = RequestQueue::new();
        q.push(put("1")).ok().unwrap();
        q.push(put("2")).ok().unwrap();
        q.push(get("3")).ok().unwrap();
        q.push(put("4")).ok().unwrap();
        let b1 = q.pop_batch(32).unwrap();
        assert_eq!(b1.len(), 2, "two consecutive writes merge");
        let b2 = q.pop_batch(32).unwrap();
        assert_eq!(b2.len(), 1, "read breaks the write run");
        assert!(matches!(b2[0].op, Op::Get { .. }));
        let b3 = q.pop_batch(32).unwrap();
        assert_eq!(b3.len(), 1);
    }

    #[test]
    fn shard_boundary_does_not_break_the_run() {
        // Same class, mixed shards: the run dequeues whole (the worker
        // regroups it per shard after the pop), preserving the relative
        // order inside each shard.
        let q = RequestQueue::new();
        q.push(put("1").on_shard(3)).ok().unwrap();
        q.push(put("2").on_shard(3)).ok().unwrap();
        q.push(put("3").on_shard(7)).ok().unwrap();
        let b1 = q.pop_batch(32).unwrap();
        assert_eq!(b1.len(), 3, "one same-class run, shards interleaved");
        assert_eq!(
            b1.iter().map(|r| r.shard).collect::<Vec<_>>(),
            vec![3, 3, 7],
            "FIFO order survives the pop"
        );
    }

    #[test]
    fn batch_bound_is_respected() {
        let q = RequestQueue::new();
        for i in 0..100 {
            q.push(put(&i.to_string())).ok().unwrap();
        }
        let b = q.pop_batch(32).unwrap();
        assert_eq!(b.len(), 32, "batch capped at M");
        assert_eq!(q.len(), 68);
    }

    #[test]
    fn solo_requests_never_merge() {
        let q = RequestQueue::new();
        q.push(scan()).ok().unwrap();
        q.push(scan()).ok().unwrap();
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        // GSN-tagged batches are solo too.
        q.push(
            Request::sync(Op::TxnBatch {
                ops: vec![],
                gsn: 3,
            })
            .0,
        )
        .ok()
        .unwrap();
        q.push(put("x")).ok().unwrap();
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(RequestQueue::new());
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_batch(32).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(put("late")).ok().unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn pop_parks_and_push_unparks() {
        // Longer than the spin budget: the popper must actually park, and
        // the late push must unpark it.
        let q = std::sync::Arc::new(RequestQueue::new());
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_batch(32).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(150));
        q.push(put("late")).ok().unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = RequestQueue::new();
        q.push(put("a")).ok().unwrap();
        q.close();
        assert!(q.push(put("rejected")).is_err());
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        assert!(q.pop_batch(32).is_none());
    }

    #[test]
    fn close_unparks_idle_consumer() {
        let q = std::sync::Arc::new(RequestQueue::new());
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_batch(32).is_none());
        std::thread::sleep(std::time::Duration::from_millis(100));
        q.close();
        assert!(popper.join().unwrap(), "closed empty queue returns None");
    }

    #[test]
    fn opportunism_takes_only_what_is_there() {
        // A single queued request returns immediately as a batch of one —
        // the worker never waits to fill a batch.
        let q = RequestQueue::new();
        q.push(put("only")).ok().unwrap();
        let start = std::time::Instant::now();
        let b = q.pop_batch(32).unwrap();
        assert_eq!(b.len(), 1);
        assert!(start.elapsed() < std::time::Duration::from_millis(50));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(RequestQueue::with_capacity(1).capacity(), 2);
        assert_eq!(RequestQueue::with_capacity(5).capacity(), 8);
        assert_eq!(RequestQueue::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn try_push_reports_full_then_push_blocks_until_space() {
        let q = std::sync::Arc::new(RequestQueue::with_capacity(4));
        for i in 0..4 {
            q.push(put(&i.to_string())).ok().unwrap();
        }
        assert!(matches!(q.try_push(put("x")), Err(PushError::Full(_))));
        assert_eq!(q.len(), 4);
        // A blocking push waits for the consumer to free a slot.
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push(put("blocked")).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!pusher.is_finished(), "push must block on a full queue");
        let drained = q.pop_batch(2).unwrap();
        assert_eq!(drained.len(), 2);
        assert!(pusher.join().unwrap(), "push completes once space frees");
    }

    #[test]
    fn wraparound_keeps_fifo_order() {
        // Push/pop far past the capacity so indices lap the ring.
        let q = RequestQueue::with_capacity(8);
        let mut pushed = 0u32;
        let mut next = 0u32;
        for _round in 0..100u32 {
            for _ in 0..5 {
                q.push(put(&format!("{pushed:06}"))).ok().unwrap();
                pushed += 1;
            }
            let b = q.pop_batch(5).unwrap();
            assert_eq!(b.len(), 5);
            for r in &b {
                match &r.op {
                    Op::Put { key, .. } => {
                        let expect = format!("{:06}", next);
                        assert_eq!(key, expect.as_bytes(), "FIFO across wraparound");
                        next += 1;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn depth_gauge_tracks_push_pop() {
        let q = RequestQueue::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(put(&i.to_string())).ok().unwrap();
        }
        assert_eq!(q.len(), 10);
        q.pop_batch(4).unwrap();
        assert_eq!(q.len(), 6);
        q.pop_batch(32).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn dropping_nonempty_queue_drops_requests() {
        // Published-but-unpopped requests are dropped with the ring (no
        // leak); their waiters see the drop, not a hang, only because the
        // framework never drops a non-drained queue — this just asserts
        // no crash/UB.
        let q = RequestQueue::with_capacity(8);
        for i in 0..5 {
            q.push(put(&i.to_string())).ok().unwrap();
        }
        drop(q);
    }

    #[test]
    fn mutex_queue_baseline_matches_semantics() {
        let q = MutexQueue::new();
        q.push(put("1")).ok().unwrap();
        q.push(put("2")).ok().unwrap();
        q.push(get("3")).ok().unwrap();
        assert_eq!(q.pop_batch(32).unwrap().len(), 2);
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        q.close();
        assert!(q.push(put("rejected")).is_err());
        assert!(q.pop_batch(32).is_none());
        assert!(q.is_empty());
    }
}

/// Exhaustive interleaving checks of the lock-free core under `loom`.
/// Run with: `cargo test -p p2kvs --features loom --lib queue::loom_model`
#[cfg(all(test, feature = "loom"))]
mod loom_model {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn two_producers_one_consumer_exactly_once() {
        loom::model(|| {
            let ring = Arc::new(Ring::<usize>::with_capacity(4));
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let ring = ring.clone();
                    thread::spawn(move || {
                        // Capacity 4 and 2 total pushes: Full is impossible,
                        // Closed is impossible (no closer in this model).
                        assert!(ring.try_push(p + 1).is_ok());
                    })
                })
                .collect();
            let consumer = {
                let ring = ring.clone();
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while seen.len() < 2 {
                        if let Some(v) = ring.try_pop() {
                            seen.push(v);
                        } else {
                            thread::yield_now();
                        }
                    }
                    seen
                })
            };
            for p in producers {
                p.join().unwrap();
            }
            let mut seen = consumer.join().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, vec![1, 2], "each push received exactly once");
        });
    }

    #[test]
    fn close_is_atomic_with_push() {
        loom::model(|| {
            let ring = Arc::new(Ring::<usize>::with_capacity(2));
            let pusher = {
                let ring = ring.clone();
                thread::spawn(move || ring.try_push(7).is_ok())
            };
            let closer = {
                let ring = ring.clone();
                thread::spawn(move || ring.close())
            };
            let accepted = pusher.join().unwrap();
            closer.join().unwrap();
            // Consumer view after both: drain everything that was accepted.
            let mut drained = 0;
            loop {
                if let Some(v) = ring.try_pop() {
                    assert_eq!(v, 7);
                    drained += 1;
                } else if ring.drained() {
                    break;
                } else {
                    thread::yield_now();
                }
            }
            // Accepted => drained exactly once; rejected => never seen.
            assert_eq!(drained, usize::from(accepted));
        });
    }

    #[test]
    fn full_ring_rejects_without_corruption() {
        loom::model(|| {
            let ring = Arc::new(Ring::<usize>::with_capacity(2));
            assert!(ring.try_push(1).is_ok());
            assert!(ring.try_push(2).is_ok());
            let contender = {
                let ring = ring.clone();
                thread::spawn(move || matches!(ring.try_push(3), Err(PushError::Full(3))))
            };
            let popped = ring.try_pop();
            assert_eq!(popped, Some(1));
            // The contender either saw Full or there was room by then —
            // but the ring stays consistent either way.
            let _ = contender.join().unwrap();
            let mut rest = Vec::new();
            while let Some(v) = ring.try_pop() {
                rest.push(v);
            }
            assert!(rest == vec![2] || rest == vec![2, 3]);
        });
    }
}
