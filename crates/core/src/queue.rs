//! Per-worker request queue with opportunistic batch dequeue.
//!
//! Implements the queue side of Algorithm 1: `pop_batch` blocks for the
//! first request, then *opportunistically* (without waiting) drains up to
//! `max - 1` further requests **of the same OBM class**. SCAN/RANGE and
//! GSN-tagged batches are always dequeued alone; under a light load the
//! queue is usually empty after the first pop and batching degrades to
//! single-request processing, exactly as §4.3 describes.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::types::{OpClass, Request};

/// A blocking MPSC queue of requests.
pub struct RequestQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
}

struct Inner {
    queue: VecDeque<Request>,
    closed: bool,
}

impl Default for RequestQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new() -> RequestQueue {
        RequestQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `req`; returns `false` (completing nothing) if the queue
    /// is closed.
    pub fn push(&self, req: Request) -> Result<(), Request> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(req);
        }
        inner.queue.push_back(req);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next request, then drains consecutive same-class
    /// requests up to `max` total (Algorithm 1). Returns `None` when the
    /// queue is closed and drained.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Request>> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(first) = inner.queue.pop_front() {
                let class = first.op.class();
                let mut batch = vec![first];
                if class != OpClass::Solo {
                    while batch.len() < max {
                        let next_same = inner
                            .queue
                            .front()
                            .map(|r| r.op.class() == class)
                            .unwrap_or(false);
                        if !next_same {
                            break;
                        }
                        batch.push(inner.queue.pop_front().expect("front just checked"));
                    }
                }
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Closes the queue: waiting workers drain what is left and stop.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }

    /// Current depth (for monitoring).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Op, Request};

    fn put(k: &str) -> Request {
        Request::sync(Op::Put {
            key: k.as_bytes().to_vec(),
            value: b"v".to_vec(),
        })
        .0
    }

    fn get(k: &str) -> Request {
        Request::sync(Op::Get {
            key: k.as_bytes().to_vec(),
        })
        .0
    }

    fn scan() -> Request {
        Request::sync(Op::Scan {
            start: b"a".to_vec(),
            count: 10,
        })
        .0
    }

    #[test]
    fn batches_consecutive_same_type() {
        let q = RequestQueue::new();
        q.push(put("1")).ok().unwrap();
        q.push(put("2")).ok().unwrap();
        q.push(get("3")).ok().unwrap();
        q.push(put("4")).ok().unwrap();
        let b1 = q.pop_batch(32).unwrap();
        assert_eq!(b1.len(), 2, "two consecutive writes merge");
        let b2 = q.pop_batch(32).unwrap();
        assert_eq!(b2.len(), 1, "read breaks the write run");
        assert!(matches!(b2[0].op, Op::Get { .. }));
        let b3 = q.pop_batch(32).unwrap();
        assert_eq!(b3.len(), 1);
    }

    #[test]
    fn batch_bound_is_respected() {
        let q = RequestQueue::new();
        for i in 0..100 {
            q.push(put(&i.to_string())).ok().unwrap();
        }
        let b = q.pop_batch(32).unwrap();
        assert_eq!(b.len(), 32, "batch capped at M");
        assert_eq!(q.len(), 68);
    }

    #[test]
    fn solo_requests_never_merge() {
        let q = RequestQueue::new();
        q.push(scan()).ok().unwrap();
        q.push(scan()).ok().unwrap();
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        // GSN-tagged batches are solo too.
        q.push(Request::sync(Op::TxnBatch { ops: vec![], gsn: 3 }).0)
            .ok()
            .unwrap();
        q.push(put("x")).ok().unwrap();
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = std::sync::Arc::new(RequestQueue::new());
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop_batch(32).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(put("late")).ok().unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = RequestQueue::new();
        q.push(put("a")).ok().unwrap();
        q.close();
        assert!(q.push(put("rejected")).is_err());
        assert_eq!(q.pop_batch(32).unwrap().len(), 1);
        assert!(q.pop_batch(32).is_none());
    }

    #[test]
    fn opportunism_takes_only_what_is_there() {
        // A single queued request returns immediately as a batch of one —
        // the worker never waits to fill a batch.
        let q = RequestQueue::new();
        q.push(put("only")).ok().unwrap();
        let start = std::time::Instant::now();
        let b = q.pop_batch(32).unwrap();
        assert_eq!(b.len(), 1);
        assert!(start.elapsed() < std::time::Duration::from_millis(50));
    }
}
