//! Two-level shard routing: `key → shard → worker` (the generalization
//! of §4.2's balanced request allocation).
//!
//! The paper routes `Hash(key) % N` straight onto `N` worker-owned
//! instances, hard-wiring the partition count to the worker count. This
//! module splits that coupling in two:
//!
//! * A [`Partitioner`] maps keys onto `S` **virtual shards** — engine
//!   instances with their own WAL/MemTable, exactly like the paper's
//!   instances, just more of them than workers (default `4×`).
//! * A versioned [`ShardMap`] maps shards onto workers. The map is an
//!   immutable, epoch-stamped snapshot behind a [`MapCell`]; the submit
//!   path pays one extra indirection (`shard → worker`) and an
//!   uncontended read-lock/Arc-clone pair, and the balancer republishes
//!   a whole new map on every ownership migration.
//!
//! The epoch fence: a submitter *pins* the map (clones the `Arc`) for
//! exactly the duration of its queue pushes. After publishing a new
//! map, the migrator waits for the displaced map's pin count to drain
//! ([`MapCell::quiesce`]) — from then on it is impossible for a request
//! routed under the old epoch to still be in flight toward a queue, so
//! a handoff marker pushed *after* quiescence is provably behind every
//! old-epoch request in the source worker's FIFO ring. That ordering is
//! what preserves per-key issue order across a migration (DESIGN.md §9);
//! the worker-side re-route path exists as a defensive backstop, not as
//! the fence.
//!
//! With `shards == workers` the initial map is the identity and the
//! whole machinery reduces to the paper's static layout.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use p2kvs_util::hash::fnv1a64;

use crate::error::{Error, Result};
use crate::worker::ScanTable;

/// Maps keys to shard indices.
///
/// `partitions()` must equal the store's shard count; [`crate::P2Kvs`]
/// validates this at open and rejects mismatched partitioners instead
/// of indexing out of bounds at the first submit.
pub trait Partitioner: Send + Sync + 'static {
    /// The shard owning `key`.
    fn shard_of(&self, key: &[u8]) -> usize;

    /// Number of shards this partitioner spreads keys over.
    fn partitions(&self) -> usize;
}

/// The paper's default: `Hash(key) % S`. Load-balanced (even under
/// zipfian skew, hot keys spread across partitions), zero metadata, and no
/// read amplification because partitions never overlap.
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    /// Creates a partitioner over `n` shards.
    pub fn new(n: usize) -> HashPartitioner {
        HashPartitioner { n: n.max(1) }
    }
}

impl Partitioner for HashPartitioner {
    fn shard_of(&self, key: &[u8]) -> usize {
        (fnv1a64(key) % self.n as u64) as usize
    }

    fn partitions(&self) -> usize {
        self.n
    }
}

/// Alternative partitioning by sorted key ranges (mentioned in §4.2 as a
/// configurable strategy for workloads whose access pattern matches known
/// ranges). `boundaries` are the split points: shard `i` owns keys in
/// `[boundaries[i-1], boundaries[i])`.
pub struct RangePartitioner {
    boundaries: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Creates a partitioner with the given split points (sorted, then
    /// deduplicated: a repeated boundary would describe an empty,
    /// unreachable partition and inflate `partitions()` past what
    /// `shard_of` can ever return).
    pub fn new(mut boundaries: Vec<Vec<u8>>) -> RangePartitioner {
        boundaries.sort();
        boundaries.dedup();
        RangePartitioner { boundaries }
    }
}

impl Partitioner for RangePartitioner {
    fn shard_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }
}

// ---------------------------------------------------------------------
// The versioned shard → worker map
// ---------------------------------------------------------------------

/// One immutable, epoch-stamped `shard → worker` assignment. Never
/// mutated in place: migrations build a successor with
/// [`ShardMap::with_owner`] and publish it through the [`MapCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    owner: Vec<u32>,
}

impl ShardMap {
    /// The initial round-robin assignment: shard `i` belongs to worker
    /// `i % workers`. With `shards == workers` this is the identity map
    /// (the paper's static layout).
    pub fn initial(shards: usize, workers: usize) -> ShardMap {
        let workers = workers.max(1) as u32;
        ShardMap {
            epoch: 1,
            owner: (0..shards.max(1) as u32).map(|s| s % workers).collect(),
        }
    }

    /// The map's version. Strictly increasing across publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.owner.len()
    }

    /// The worker owning `shard`.
    pub fn owner(&self, shard: usize) -> usize {
        self.owner[shard] as usize
    }

    /// A successor map (epoch + 1) with `shard` reassigned to `worker`.
    pub fn with_owner(&self, shard: usize, worker: usize) -> ShardMap {
        let mut owner = self.owner.clone();
        owner[shard] = worker as u32;
        ShardMap {
            epoch: self.epoch + 1,
            owner,
        }
    }

    /// The shards currently assigned to `worker`.
    pub fn shards_of(&self, worker: usize) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|s| self.owner[*s] as usize == worker)
            .collect()
    }
}

/// The cell the submit path reads the current [`ShardMap`] from.
///
/// Readers [`pin`](MapCell::pin) the map — an uncontended read-lock plus
/// one `Arc` clone — and hold the pin only across their queue pushes.
/// The pin count doubles as the epoch fence: after
/// [`publish`](MapCell::publish), [`quiesce`](MapCell::quiesce) waits for
/// every pin of the displaced map to drop, which proves no push routed
/// under the old epoch is still in flight. Pins must not be cloned or
/// parked long-term, or migrations stall (they never deadlock: workers
/// keep draining regardless).
pub struct MapCell {
    current: RwLock<Arc<ShardMap>>,
}

impl MapCell {
    /// Wraps the initial map.
    pub fn new(map: ShardMap) -> MapCell {
        MapCell {
            current: RwLock::new(Arc::new(map)),
        }
    }

    /// Pins the current map: routing decisions made against the returned
    /// snapshot stay fenced until it is dropped.
    pub fn pin(&self) -> Arc<ShardMap> {
        self.current.read().clone()
    }

    /// The current owner of `shard`, without retaining a pin. Use only
    /// where a stale answer is acceptable (re-route, metrics).
    pub fn owner(&self, shard: usize) -> usize {
        self.current.read().owner(shard)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch()
    }

    /// Atomically replaces the map, returning the displaced version for
    /// [`MapCell::quiesce`].
    pub fn publish(&self, next: Arc<ShardMap>) -> Arc<ShardMap> {
        std::mem::replace(&mut *self.current.write(), next)
    }

    /// Blocks until every outstanding pin of `old` has dropped. On
    /// return, every request routed under `old`'s epoch has finished its
    /// queue push — the fence a handoff marker relies on.
    pub fn quiesce(old: Arc<ShardMap>) {
        // The count can only fall: the cell no longer hands out clones of
        // `old`, and pins are never cloned. Yield rather than spin — on a
        // uniprocessor the pinning thread needs the core to finish its
        // push.
        let mut rounds = 0u32;
        while Arc::strong_count(&old) > 1 {
            rounds += 1;
            if rounds < 64 {
                std::thread::yield_now();
            } else {
                // A pinner blocked in a full-queue push can hold its pin
                // for a while; nap instead of burning the core it needs.
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-shard service gauges
// ---------------------------------------------------------------------

/// Counters one shard's executing worker publishes and the balancer
/// consumes. Lives for the store's lifetime; follows the shard across
/// migrations (the counters are cumulative, owner is a gauge).
#[derive(Default)]
pub struct ShardStats {
    /// Requests executed against this shard.
    pub ops: AtomicU64,
    /// Nanoseconds of worker service time spent on this shard.
    pub busy_ns: AtomicU64,
    /// The worker currently owning the shard.
    pub owner: AtomicUsize,
}

impl ShardStats {
    /// Records one executed batch.
    pub fn record(&self, ops: u64, busy: Duration) {
        self.ops.fetch_add(ops, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(busy.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Handoff depot
// ---------------------------------------------------------------------

/// Worker-local state that travels with a shard during a handoff: the
/// parked streaming-scan cursors. The engine handle itself never moves —
/// every worker can reach every engine through the shared directory;
/// ownership is only the *right* to execute against it.
pub(crate) struct Parcel {
    pub scans: ScanTable,
}

/// Phases of one in-flight handoff, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandoffPhase {
    /// Map published, fence draining; the source has not yet packaged.
    Fencing,
    /// The source deposited the parcel and signalled the target.
    Deposited,
}

#[derive(Default)]
struct DepotInner {
    parcels: HashMap<u64, Parcel>,
    phases: HashMap<u64, HandoffPhase>,
    /// Handoffs that ended without an install (target queue closed).
    aborted: u64,
    /// Completed installs.
    installed: u64,
}

/// Side-channel for shard handoffs. The *ordering* of a handoff rides
/// the worker queues (the `HandoffOut` / `ShardInstall` markers); the
/// depot only ferries the non-clonable parcel between the two worker
/// threads and lets the migrator await settlement.
pub(crate) struct HandoffDepot {
    inner: Mutex<DepotInner>,
    cv: Condvar,
}

impl HandoffDepot {
    pub fn new() -> HandoffDepot {
        HandoffDepot {
            inner: Mutex::new(DepotInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Marks a handoff of `shard` as started. Errors if one is already in
    /// flight (the migrator serializes, so this is a logic guard).
    pub fn begin(&self, shard: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.phases.contains_key(&shard) {
            return Err(Error::Engine(format!(
                "shard {shard} already has a handoff in flight"
            )));
        }
        inner.phases.insert(shard, HandoffPhase::Fencing);
        Ok(())
    }

    /// Source side: parks the parcel for the target to collect.
    pub fn deposit(&self, shard: u64, parcel: Parcel) {
        let mut inner = self.inner.lock();
        inner.parcels.insert(shard, parcel);
        inner.phases.insert(shard, HandoffPhase::Deposited);
    }

    /// Target side: collects the parcel (if the source deposited one).
    pub fn take(&self, shard: u64) -> Option<Parcel> {
        self.inner.lock().parcels.remove(&shard)
    }

    /// Target side: the shard is installed; wake the migrator.
    pub fn complete(&self, shard: u64) {
        let mut inner = self.inner.lock();
        inner.phases.remove(&shard);
        inner.installed += 1;
        self.cv.notify_all();
    }

    /// Ends a handoff without an install (target queue closed during
    /// shutdown). Drops the parcel, releasing any parked cursors.
    pub fn abort(&self, shard: u64) {
        let mut inner = self.inner.lock();
        inner.parcels.remove(&shard);
        if inner.phases.remove(&shard).is_some() {
            inner.aborted += 1;
        }
        self.cv.notify_all();
    }

    /// Migrator side: blocks until the handoff of `shard` settles
    /// (installed or aborted). Returns `false` on timeout.
    pub fn wait_settled(&self, shard: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        while inner.phases.contains_key(&shard) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cv.wait_for(&mut inner, deadline - now);
        }
        true
    }

    /// Completed installs so far (the migration counter).
    pub fn installed(&self) -> u64 {
        self.inner.lock().installed
    }

    /// Handoffs that ended without an install.
    pub fn aborted(&self) -> u64 {
        self.inner.lock().aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner::new(8);
        assert_eq!(p.partitions(), 8);
        for i in 0..1000 {
            let key = format!("user{i}");
            let s = p.shard_of(key.as_bytes());
            assert!(s < 8);
            assert_eq!(s, p.shard_of(key.as_bytes()), "routing must be stable");
        }
    }

    #[test]
    fn hash_partitioner_balances_dense_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..80_000u64 {
            counts[p.shard_of(format!("user{i:016}").as_bytes())] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min < min / 5, "imbalance: {counts:?}");
    }

    #[test]
    fn hash_partitioner_balances_zipfian_hot_keys() {
        // Even when requests are highly skewed toward a few keys, distinct
        // hot keys spread across partitions (§4.2's claim).
        let p = HashPartitioner::new(4);
        let hot: Vec<usize> = (0..64)
            .map(|i| p.shard_of(format!("hot{i}").as_bytes()))
            .collect();
        for s in 0..4 {
            assert!(hot.contains(&s), "shard {s} got no hot keys");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let p = HashPartitioner::new(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.shard_of(b"k"), 0);
    }

    #[test]
    fn range_partitioner_routes_by_boundaries() {
        let p = RangePartitioner::new(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.shard_of(b"apple"), 0);
        assert_eq!(p.shard_of(b"g"), 1, "boundary belongs to the right");
        assert_eq!(p.shard_of(b"monkey"), 1);
        assert_eq!(p.shard_of(b"zebra"), 2);
    }

    #[test]
    fn range_partitioner_sorts_boundaries() {
        let p = RangePartitioner::new(vec![b"p".to_vec(), b"g".to_vec()]);
        assert_eq!(p.shard_of(b"h"), 1);
    }

    #[test]
    fn range_partitioner_dedups_duplicate_boundaries() {
        // Regression: duplicate split points used to survive into the
        // boundary list, creating empty partitions `[b, b)` that no key
        // can route to while `partitions()` counted them — a mismatch
        // that open-time validation would then reject for no user error.
        let p = RangePartitioner::new(vec![
            b"g".to_vec(),
            b"g".to_vec(),
            b"p".to_vec(),
            b"g".to_vec(),
        ]);
        assert_eq!(p.partitions(), 3, "duplicates collapse");
        let mut seen = std::collections::HashSet::new();
        for key in [&b"a"[..], b"g", b"h", b"p", b"z"] {
            seen.insert(p.shard_of(key));
        }
        assert_eq!(seen.len(), 3, "every partition is reachable");
    }

    #[test]
    fn initial_map_is_round_robin_and_identity_when_square() {
        let m = ShardMap::initial(8, 2);
        assert_eq!(m.shards(), 8);
        assert_eq!(m.epoch(), 1);
        for s in 0..8 {
            assert_eq!(m.owner(s), s % 2);
        }
        assert_eq!(m.shards_of(0), vec![0, 2, 4, 6]);
        let id = ShardMap::initial(4, 4);
        for s in 0..4 {
            assert_eq!(id.owner(s), s, "shards == workers is the paper's layout");
        }
    }

    #[test]
    fn with_owner_bumps_epoch_and_keeps_the_rest() {
        let m = ShardMap::initial(4, 2);
        let n = m.with_owner(3, 0);
        assert_eq!(n.epoch(), m.epoch() + 1);
        assert_eq!(n.owner(3), 0);
        for s in 0..3 {
            assert_eq!(n.owner(s), m.owner(s));
        }
    }

    #[test]
    fn map_cell_publish_and_quiesce() {
        let cell = MapCell::new(ShardMap::initial(4, 2));
        let pin = cell.pin();
        assert_eq!(pin.epoch(), 1);
        let displaced = cell.publish(Arc::new(pin.with_owner(0, 1)));
        assert_eq!(cell.epoch(), 2);
        assert_eq!(cell.owner(0), 1);
        // quiesce must block while `pin` is live; release it from a
        // helper thread and verify quiesce returns.
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let g = gate.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            g.store(true, Ordering::SeqCst);
            drop(pin);
        });
        MapCell::quiesce(displaced);
        assert!(gate.load(Ordering::SeqCst), "quiesce returned before the pin dropped");
        h.join().unwrap();
    }

    #[test]
    fn depot_roundtrip_and_settlement() {
        let depot = HandoffDepot::new();
        depot.begin(3).unwrap();
        assert!(depot.begin(3).is_err(), "double handoff rejected");
        depot.deposit(3, Parcel { scans: ScanTable::default() });
        assert!(depot.take(3).is_some());
        assert!(depot.take(3).is_none(), "parcel collected once");
        let waiter = {
            let depot = Arc::new(depot);
            let d = depot.clone();
            let h = std::thread::spawn(move || d.wait_settled(3, Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            depot.complete(3);
            assert_eq!(depot.installed(), 1);
            h
        };
        assert!(waiter.join().unwrap(), "settled, not timed out");
    }

    #[test]
    fn depot_abort_releases_waiters() {
        let depot = Arc::new(HandoffDepot::new());
        depot.begin(1).unwrap();
        let d = depot.clone();
        let h = std::thread::spawn(move || d.wait_settled(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        depot.abort(1);
        assert!(h.join().unwrap());
        assert_eq!(depot.aborted(), 1);
        assert_eq!(depot.installed(), 0);
    }

    #[test]
    fn depot_wait_times_out() {
        let depot = HandoffDepot::new();
        depot.begin(9).unwrap();
        assert!(!depot.wait_settled(9, Duration::from_millis(30)));
    }
}
