//! p2KVS: a portable 2-dimensional parallelizing framework for key-value
//! stores (EuroSys '22 reproduction — the paper's primary contribution).
//!
//! p2KVS is a **user-space request scheduler** layered on unmodified KVS
//! instances:
//!
//! * **Horizontal (inter-instance) dimension** — the key space is
//!   hash-partitioned over `S` independent engine instances (**virtual
//!   shards**, default `4×` the worker count), each with its own
//!   WAL/MemTable/LSM-tree, removing all contention on shared engine
//!   structures (§4.1–4.2). A versioned, epoch-stamped shard map
//!   ([`shard::ShardMap`]) assigns shards to `N` worker threads pinned
//!   to cores; an optional skew-aware balancer ([`balance`]) migrates
//!   shard *ownership* between workers — pure queue redirection through
//!   an epoch-fenced handoff, never data movement — so zipfian hot
//!   spots stop saturating one worker while others idle. With
//!   `shards == workers` the map is the identity and the paper's static
//!   layout is reproduced exactly.
//! * **Vertical (intra-instance) dimension** — an accessing layer separates
//!   user threads from workers: user threads enqueue requests onto a
//!   bounded **lock-free MPSC ring** (pooled completion slots, spin-then-
//!   park wakeups on both sides — see [`queue`] and [`types`]) and sleep;
//!   each worker drains its queue with the **opportunistic batching
//!   mechanism** (OBM, Algorithm 1): consecutive same-type requests (bound
//!   `M`, default 32) merge into one engine `WriteBatch` or one `multiget`
//!   (§4.3).
//! * **Range queries** — RANGE and SCAN stream through per-instance
//!   **engine cursors** pulled in bounded chunks and lazily K-way merged
//!   ([`scan::StoreIter`], also exposed as
//!   [`P2Kvs::iter`](store::P2Kvs::iter)). Every chunk is a separate
//!   queue round-trip, so large scans interleave with point traffic
//!   instead of head-of-line-blocking a worker; the paper's quota
//!   strategies (§4.4) survive as opening-chunk sizing policies.
//! * **Hot-set read cache** — a lock-free, tag-checked hash index
//!   ([`cache::ReadCache`], budget `P2KvsOptions::cache_capacity`,
//!   default 16 MiB) serves repeated GETs on the client thread with no
//!   queue round-trip, no lock, and one allocation (the returned
//!   bytes), reclaiming removed records through FASTER-style epochs
//!   (`p2kvs_util::epoch`). Writes invalidate before acking
//!   (read-your-writes), fills are version-checked against racing
//!   writes, migrations flush the moving shard, and a doorkeeper
//!   admission filter keeps read-once traffic from churning the
//!   resident hot set (DESIGN.md §11).
//! * **Transactions** — cross-instance WriteBatches share a Global Sequence
//!   Number persisted in a commit log; recovery rolls back batches whose
//!   GSN never committed (§4.5).
//! * **Portability** — everything is programmed against the small
//!   [`engine::KvsEngine`] trait; adapters for the bundled `lsmkv`
//!   (RocksDB/LevelDB/PebblesDB modes) and `wtiger` engines are provided,
//!   and OBM degrades gracefully when an engine lacks batch-write or
//!   multiget (§4.6).
//! * **Observability** — every worker records queue-wait and service
//!   latency histograms per request class into a `p2kvs-obs` metrics
//!   registry, slow requests land in a bounded trace ring, and
//!   [`P2Kvs::metrics_snapshot`](store::P2Kvs::metrics_snapshot) samples
//!   queue depths and engine internals (`engine_*`) into one
//!   Prometheus/JSON-renderable snapshot.
//!
//! # Quickstart
//!
//! ```
//! use p2kvs::{P2Kvs, P2KvsOptions};
//! use p2kvs::engine::LsmFactory;
//! use lsmkv::Options;
//!
//! let factory = LsmFactory::new(Options::for_test());
//! let store = P2Kvs::open(factory, "quickstart-db", P2KvsOptions::default()).unwrap();
//! store.put(b"hello", b"world").unwrap();
//! assert_eq!(store.get(b"hello").unwrap().unwrap(), b"world");
//! ```

pub mod backup;
pub mod balance;
pub mod cache;
pub mod engine;
pub mod error;
pub mod pool;
pub mod queue;
pub mod scan;
pub mod shard;
pub mod stats;
pub mod store;
pub mod txn;
pub mod types;
pub mod worker;

pub use backup::{BackupHandle, BackupReport};
pub use balance::{BalancePolicy, ScalePolicy};
pub use cache::{CacheCounters, ReadCache};
pub use engine::{
    BackupSource, Capabilities, EngineEvent, EngineEventHook, EngineFactory, EnginePhases,
    KvsEngine, SnapshotFidelity,
};
pub use error::{Error, Result};
pub use scan::StoreIter;
pub use shard::{HashPartitioner, Partitioner, RangePartitioner, ShardMap};
pub use store::{P2Kvs, P2KvsOptions, ScanStrategy, StoreIntrospection, WorkerView};
pub use types::{Op, Response, WriteOp};

// The observability layer (re-exported so store users can consume
// snapshots and traces without depending on `p2kvs-obs` directly).
pub use p2kvs_obs as obs;
pub use p2kvs_obs::{
    Journal, JournalKind, JournalRecord, MetricsRegistry, MetricsSnapshot, SpanKind, SpanRecord,
    SpanRing, TraceCtx, TraceEvent,
};
