//! Global Sequence Numbers and the transaction commit log (§4.5).
//!
//! Every cross-instance write batch gets a strictly increasing GSN. The
//! manager persists `begin(gsn)` when a transaction starts and
//! `commit(gsn)` once every sub-batch has been applied (and, for engines
//! that honor it, synced). Recovery reads the log, collects the committed
//! GSN set, and instances are reopened with a filter that drops WAL
//! batches whose GSN began but never committed — rolling the transaction
//! back on every shard at once.
//!
//! Record framing: `type: u8 (1 = begin, 2 = commit) | gsn: fixed64 |
//! crc32c: fixed32` — 13 bytes, torn tails detected by CRC.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use p2kvs_storage::{EnvRef, WritableFile};
use p2kvs_util::crc32c::crc32c;
use parking_lot::{Condvar, Mutex};

const REC_BEGIN: u8 = 1;
const REC_COMMIT: u8 = 2;
const REC_LEN: usize = 13;

/// The backup freeze gate: while `frozen`, new transactions block in
/// [`TxnManager::begin`]; `in_flight` counts transactions that have
/// begun but not yet committed or abandoned, which a freezer drains
/// before choosing its GSN horizon.
#[derive(Default)]
struct Gate {
    frozen: bool,
    in_flight: u64,
}

/// Allocates GSNs and persists transaction state.
pub struct TxnManager {
    log: Mutex<Box<dyn WritableFile>>,
    next_gsn: AtomicU64,
    committed_floor: AtomicU64,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
}

/// State recovered from a commit log.
#[derive(Debug, Default, Clone)]
pub struct TxnRecovery {
    /// GSNs with a begin record.
    pub begun: HashSet<u64>,
    /// GSNs with a commit record.
    pub committed: HashSet<u64>,
    /// Highest GSN ever allocated.
    pub max_gsn: u64,
    /// Trailing bytes ignored because they did not form a CRC-valid
    /// record — a torn tail from a crash mid-append. Zero on a clean log.
    pub truncated_tail_bytes: usize,
}

impl TxnRecovery {
    /// Whether a WAL batch tagged `gsn` should replay: untagged batches
    /// always do; tagged ones only if their transaction committed.
    pub fn should_replay(&self, gsn: u64) -> bool {
        gsn == 0 || self.committed.contains(&gsn)
    }
}

fn encode(kind: u8, gsn: u64) -> [u8; REC_LEN] {
    let mut rec = [0u8; REC_LEN];
    rec[0] = kind;
    rec[1..9].copy_from_slice(&gsn.to_le_bytes());
    let crc = crc32c(&rec[..9]);
    rec[9..].copy_from_slice(&crc.to_le_bytes());
    rec
}

impl TxnManager {
    fn log_path(dir: &Path) -> PathBuf {
        dir.join("TXNLOG")
    }

    /// Reads the commit log under `dir` (if any).
    pub fn recover(env: &EnvRef, dir: &Path) -> io::Result<TxnRecovery> {
        let path = Self::log_path(dir);
        let mut out = TxnRecovery::default();
        if !env.exists(&path) {
            return Ok(out);
        }
        let data = p2kvs_storage::env::read_all(&**env, &path)?;
        let mut off = 0;
        while off + REC_LEN <= data.len() {
            let rec = &data[off..off + REC_LEN];
            let crc = u32::from_le_bytes(rec[9..].try_into().expect("4 bytes"));
            if crc32c(&rec[..9]) != crc {
                break; // Torn tail.
            }
            let gsn = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
            match rec[0] {
                REC_BEGIN => {
                    out.begun.insert(gsn);
                }
                REC_COMMIT => {
                    out.committed.insert(gsn);
                }
                _ => break,
            }
            out.max_gsn = out.max_gsn.max(gsn);
            off += REC_LEN;
        }
        out.truncated_tail_bytes = data.len() - off;
        Ok(out)
    }

    /// Opens the manager, appending to any existing log. `recovered` is
    /// the state returned by [`TxnManager::recover`].
    pub fn open(env: &EnvRef, dir: &Path, recovered: &TxnRecovery) -> io::Result<TxnManager> {
        env.create_dir_all(dir)?;
        let log = env.new_appendable(&Self::log_path(dir))?;
        Ok(TxnManager {
            log: Mutex::new(log),
            next_gsn: AtomicU64::new(recovered.max_gsn + 1),
            committed_floor: AtomicU64::new(recovered.max_gsn),
            gate: Mutex::new(Gate::default()),
            gate_cv: Condvar::new(),
        })
    }

    /// Starts a transaction: allocates a GSN and persists the begin
    /// record. Blocks while a backup freeze holds the gate, so every GSN
    /// is strictly on one side of any backup horizon.
    pub fn begin(&self) -> io::Result<u64> {
        {
            let mut gate = self.gate.lock();
            while gate.frozen {
                self.gate_cv.wait(&mut gate);
            }
            gate.in_flight += 1;
        }
        let gsn = self.next_gsn.fetch_add(1, Ordering::Relaxed);
        let rec = encode(REC_BEGIN, gsn);
        let mut log = self.log.lock();
        if let Err(e) = log.append(&rec).and_then(|()| log.sync()) {
            drop(log);
            self.release_in_flight();
            return Err(e);
        }
        Ok(gsn)
    }

    /// Persists the commit record for `gsn` and releases its in-flight
    /// slot (a failed append still releases — the transaction is over
    /// either way, it just rolls back at recovery).
    pub fn commit(&self, gsn: u64) -> io::Result<()> {
        let rec = encode(REC_COMMIT, gsn);
        let result = {
            let mut log = self.log.lock();
            log.append(&rec).and_then(|()| log.sync())
        };
        self.release_in_flight();
        result?;
        self.committed_floor.fetch_max(gsn, Ordering::Relaxed);
        Ok(())
    }

    /// Releases a begun transaction that will never commit (a sub-batch
    /// failed). The GSN stays allocated and rolls back at recovery; the
    /// in-flight slot must still drain or a freezer would wait forever.
    pub fn abandon(&self, _gsn: u64) {
        self.release_in_flight();
    }

    fn release_in_flight(&self) {
        let mut gate = self.gate.lock();
        debug_assert!(gate.in_flight > 0, "release without a begun transaction");
        gate.in_flight = gate.in_flight.saturating_sub(1);
        if gate.in_flight == 0 {
            self.gate_cv.notify_all();
        }
    }

    /// Freezes the GSN stream for a backup: blocks new [`TxnManager::begin`]
    /// calls, waits for every in-flight transaction to commit or abandon,
    /// and returns the horizon — the highest GSN allocated so far. Until
    /// [`TxnManager::thaw`], every GSN ≤ horizon is fully settled and no
    /// GSN > horizon exists, so the horizon is a consistent cut of the
    /// cross-instance total order.
    pub fn freeze(&self) -> u64 {
        let mut gate = self.gate.lock();
        while gate.frozen {
            // Another freezer is active; queue behind it.
            self.gate_cv.wait(&mut gate);
        }
        gate.frozen = true;
        while gate.in_flight > 0 {
            self.gate_cv.wait(&mut gate);
        }
        self.next_gsn.load(Ordering::Relaxed) - 1
    }

    /// Reopens the gate closed by [`TxnManager::freeze`].
    pub fn thaw(&self) {
        let mut gate = self.gate.lock();
        gate.frozen = false;
        self.gate_cv.notify_all();
    }

    /// Highest GSN known committed (monitoring only).
    pub fn committed_floor(&self) -> u64 {
        self.committed_floor.load(Ordering::Relaxed)
    }

    /// Seeds a fresh commit log under `dir` so the next open allocates
    /// GSNs strictly above `horizon` — a restored store must never reuse
    /// a GSN that existed on the backed-up one. Writes a synced
    /// begin/commit pair for `horizon` (committed, so recovery's filter
    /// keeps every restored batch); a zero horizon needs no log at all.
    pub fn seed(env: &EnvRef, dir: &Path, horizon: u64) -> io::Result<()> {
        if horizon == 0 {
            return Ok(());
        }
        env.create_dir_all(dir)?;
        let mut data = Vec::with_capacity(2 * REC_LEN);
        data.extend_from_slice(&encode(REC_BEGIN, horizon));
        data.extend_from_slice(&encode(REC_COMMIT, horizon));
        p2kvs_storage::env::write_all(&**env, &Self::log_path(dir), &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;
    use std::sync::Arc;

    fn env() -> EnvRef {
        Arc::new(MemEnv::new())
    }

    #[test]
    fn fresh_log_recovers_empty() {
        let env = env();
        let rec = TxnManager::recover(&env, Path::new("t")).unwrap();
        assert!(rec.begun.is_empty() && rec.committed.is_empty());
        assert!(rec.should_replay(0));
        assert!(!rec.should_replay(5));
    }

    #[test]
    fn begin_commit_roundtrip() {
        let env = env();
        let dir = Path::new("t");
        {
            let rec = TxnManager::recover(&env, dir).unwrap();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g1 = mgr.begin().unwrap();
            let g2 = mgr.begin().unwrap();
            assert!(g2 > g1);
            mgr.commit(g1).unwrap();
            // g2 never commits (crash).
        }
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.committed.contains(&1));
        assert!(!rec.committed.contains(&2));
        assert!(rec.begun.contains(&2));
        assert!(rec.should_replay(1));
        assert!(!rec.should_replay(2));
        assert_eq!(rec.max_gsn, 2);
    }

    #[test]
    fn gsns_continue_after_reopen() {
        let env = env();
        let dir = Path::new("t");
        let g_first = {
            let rec = TxnManager::recover(&env, dir).unwrap();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g = mgr.begin().unwrap();
            mgr.commit(g).unwrap();
            g
        };
        let rec = TxnManager::recover(&env, dir).unwrap();
        let mgr = TxnManager::open(&env, dir, &rec).unwrap();
        let g_next = mgr.begin().unwrap();
        assert!(g_next > g_first, "GSNs must never repeat");
    }

    #[test]
    fn out_of_order_commits_are_tracked_individually() {
        // Concurrent transactions can commit out of GSN order; recovery
        // must keep exactly the committed set, not a prefix.
        let env = env();
        let dir = Path::new("t");
        {
            let rec = TxnRecovery::default();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g1 = mgr.begin().unwrap();
            let g2 = mgr.begin().unwrap();
            let g3 = mgr.begin().unwrap();
            mgr.commit(g3).unwrap();
            mgr.commit(g1).unwrap();
            let _ = g2; // never committed
        }
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.should_replay(1));
        assert!(!rec.should_replay(2));
        assert!(rec.should_replay(3));
    }

    /// Writes a TXNLOG whose last record is cut to `keep` of its 13
    /// bytes, preceded by a committed transaction (gsn 1) and, when
    /// `tear_commit` is set, a begin for gsn 2 so the torn record is
    /// gsn 2's commit; otherwise the torn record is gsn 2's begin.
    fn torn_log(env: &EnvRef, dir: &Path, keep: usize, tear_commit: bool) {
        let mut data = Vec::new();
        data.extend_from_slice(&encode(REC_BEGIN, 1));
        data.extend_from_slice(&encode(REC_COMMIT, 1));
        if tear_commit {
            data.extend_from_slice(&encode(REC_BEGIN, 2));
            data.extend_from_slice(&encode(REC_COMMIT, 2)[..keep].to_vec());
        } else {
            data.extend_from_slice(&encode(REC_BEGIN, 2)[..keep].to_vec());
        }
        p2kvs_storage::env::write_all(&**env, &TxnManager::log_path(dir), &data).unwrap();
    }

    #[test]
    fn begin_record_torn_at_every_offset_rolls_back_cleanly() {
        // A crash can cut the 13-byte record at any byte boundary. At
        // every cut the recovery must stop at the tear, keep the earlier
        // committed transaction, and roll back the in-flight one.
        for keep in 1..13 {
            let env = env();
            let dir = Path::new("t");
            torn_log(&env, dir, keep, false);
            let rec = TxnManager::recover(&env, dir).unwrap();
            assert_eq!(rec.truncated_tail_bytes, keep, "cut at {keep}");
            assert!(rec.should_replay(1), "cut at {keep}: committed gsn kept");
            assert!(
                !rec.should_replay(2),
                "cut at {keep}: torn begin must not resurrect gsn 2"
            );
            assert!(!rec.begun.contains(&2), "cut at {keep}: torn begin is dropped");
            assert_eq!(rec.max_gsn, 1, "cut at {keep}");
            // The manager must reopen over the torn log and keep
            // allocating fresh GSNs past everything it saw.
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g = mgr.begin().unwrap();
            assert!(g > rec.max_gsn);
        }
    }

    #[test]
    fn commit_record_torn_at_every_offset_rolls_back_the_transaction() {
        for keep in 1..13 {
            let env = env();
            let dir = Path::new("t");
            torn_log(&env, dir, keep, true);
            let rec = TxnManager::recover(&env, dir).unwrap();
            assert_eq!(rec.truncated_tail_bytes, keep, "cut at {keep}");
            assert!(rec.should_replay(1), "cut at {keep}");
            assert!(rec.begun.contains(&2), "cut at {keep}: begin record is intact");
            assert!(
                !rec.should_replay(2),
                "cut at {keep}: a torn commit is no commit — gsn 2 rolls back"
            );
            assert_eq!(rec.max_gsn, 2, "cut at {keep}: begun gsn counts toward max");
        }
    }

    #[test]
    fn freeze_drains_in_flight_and_blocks_new_begins() {
        let env = env();
        let dir = Path::new("t");
        let mgr = Arc::new(TxnManager::open(&env, dir, &TxnRecovery::default()).unwrap());
        let g1 = mgr.begin().unwrap();
        // Freeze from another thread: it must not return while g1 is
        // in flight.
        let m2 = mgr.clone();
        let freezer = std::thread::spawn(move || {
            let horizon = m2.freeze();
            (horizon, std::time::Instant::now())
        });
        std::thread::sleep(std::time::Duration::from_millis(60));
        let committed_at = std::time::Instant::now();
        mgr.commit(g1).unwrap();
        let (horizon, froze_at) = freezer.join().unwrap();
        assert_eq!(horizon, g1, "horizon is the highest allocated GSN");
        assert!(froze_at >= committed_at, "freeze waited for the drain");
        // While frozen, a new begin blocks until thaw.
        let m3 = mgr.clone();
        let beginner = std::thread::spawn(move || m3.begin().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(60));
        let thawed_at = std::time::Instant::now();
        mgr.thaw();
        let g2 = beginner.join().unwrap();
        assert!(g2 > horizon, "post-thaw GSNs are past the horizon");
        assert!(std::time::Instant::now() >= thawed_at);
        mgr.commit(g2).unwrap();
    }

    #[test]
    fn abandon_releases_the_gate() {
        let env = env();
        let mgr = Arc::new(TxnManager::open(&env, Path::new("t"), &TxnRecovery::default()).unwrap());
        let g = mgr.begin().unwrap();
        mgr.abandon(g);
        // A freeze must not hang on the abandoned transaction.
        let horizon = mgr.freeze();
        assert_eq!(horizon, g);
        mgr.thaw();
        // The abandoned GSN rolls back at recovery (begun, not committed).
        drop(mgr);
        let rec = TxnManager::recover(&env, Path::new("t")).unwrap();
        assert!(rec.begun.contains(&g) && !rec.should_replay(g));
    }

    #[test]
    fn seeded_log_continues_past_the_horizon() {
        let env = env();
        let dir = Path::new("restored");
        TxnManager::seed(&env, dir, 42).unwrap();
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert_eq!(rec.max_gsn, 42);
        assert!(rec.should_replay(42), "the horizon itself is committed");
        assert!(!rec.should_replay(43));
        let mgr = TxnManager::open(&env, dir, &rec).unwrap();
        assert_eq!(mgr.begin().unwrap(), 43, "allocation resumes past the horizon");
        // Zero horizon: no log is needed or written.
        TxnManager::seed(&env, Path::new("r0"), 0).unwrap();
        assert!(!env.exists(Path::new("r0/TXNLOG")));
    }

    #[test]
    fn clean_log_reports_no_truncated_tail() {
        let env = env();
        let dir = Path::new("t");
        {
            let mgr = TxnManager::open(&env, dir, &TxnRecovery::default()).unwrap();
            let g = mgr.begin().unwrap();
            mgr.commit(g).unwrap();
        }
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert_eq!(rec.truncated_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let env = env();
        let dir = Path::new("t");
        {
            let mgr = TxnManager::open(&env, dir, &TxnRecovery::default()).unwrap();
            let g = mgr.begin().unwrap();
            mgr.commit(g).unwrap();
        }
        // Corrupt the tail by appending garbage.
        let path = Path::new("t/TXNLOG");
        let mut data = p2kvs_storage::env::read_all(&*env, path).unwrap();
        data.extend_from_slice(&[0xde, 0xad, 0xbe]);
        p2kvs_storage::env::write_all(&*env, path, &data).unwrap();
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.should_replay(1));
        assert_eq!(rec.max_gsn, 1);
    }
}
