//! Global Sequence Numbers and the transaction commit log (§4.5).
//!
//! Every cross-instance write batch gets a strictly increasing GSN. The
//! manager persists `begin(gsn)` when a transaction starts and
//! `commit(gsn)` once every sub-batch has been applied (and, for engines
//! that honor it, synced). Recovery reads the log, collects the committed
//! GSN set, and instances are reopened with a filter that drops WAL
//! batches whose GSN began but never committed — rolling the transaction
//! back on every shard at once.
//!
//! Record framing: `type: u8 (1 = begin, 2 = commit) | gsn: fixed64 |
//! crc32c: fixed32` — 13 bytes, torn tails detected by CRC.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use p2kvs_storage::{EnvRef, WritableFile};
use p2kvs_util::crc32c::crc32c;
use parking_lot::Mutex;

const REC_BEGIN: u8 = 1;
const REC_COMMIT: u8 = 2;
const REC_LEN: usize = 13;

/// Allocates GSNs and persists transaction state.
pub struct TxnManager {
    log: Mutex<Box<dyn WritableFile>>,
    next_gsn: AtomicU64,
    committed_floor: AtomicU64,
}

/// State recovered from a commit log.
#[derive(Debug, Default, Clone)]
pub struct TxnRecovery {
    /// GSNs with a begin record.
    pub begun: HashSet<u64>,
    /// GSNs with a commit record.
    pub committed: HashSet<u64>,
    /// Highest GSN ever allocated.
    pub max_gsn: u64,
}

impl TxnRecovery {
    /// Whether a WAL batch tagged `gsn` should replay: untagged batches
    /// always do; tagged ones only if their transaction committed.
    pub fn should_replay(&self, gsn: u64) -> bool {
        gsn == 0 || self.committed.contains(&gsn)
    }
}

fn encode(kind: u8, gsn: u64) -> [u8; REC_LEN] {
    let mut rec = [0u8; REC_LEN];
    rec[0] = kind;
    rec[1..9].copy_from_slice(&gsn.to_le_bytes());
    let crc = crc32c(&rec[..9]);
    rec[9..].copy_from_slice(&crc.to_le_bytes());
    rec
}

impl TxnManager {
    fn log_path(dir: &Path) -> PathBuf {
        dir.join("TXNLOG")
    }

    /// Reads the commit log under `dir` (if any).
    pub fn recover(env: &EnvRef, dir: &Path) -> io::Result<TxnRecovery> {
        let path = Self::log_path(dir);
        let mut out = TxnRecovery::default();
        if !env.exists(&path) {
            return Ok(out);
        }
        let data = p2kvs_storage::env::read_all(&**env, &path)?;
        let mut off = 0;
        while off + REC_LEN <= data.len() {
            let rec = &data[off..off + REC_LEN];
            let crc = u32::from_le_bytes(rec[9..].try_into().expect("4 bytes"));
            if crc32c(&rec[..9]) != crc {
                break; // Torn tail.
            }
            let gsn = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
            match rec[0] {
                REC_BEGIN => {
                    out.begun.insert(gsn);
                }
                REC_COMMIT => {
                    out.committed.insert(gsn);
                }
                _ => break,
            }
            out.max_gsn = out.max_gsn.max(gsn);
            off += REC_LEN;
        }
        Ok(out)
    }

    /// Opens the manager, appending to any existing log. `recovered` is
    /// the state returned by [`TxnManager::recover`].
    pub fn open(env: &EnvRef, dir: &Path, recovered: &TxnRecovery) -> io::Result<TxnManager> {
        env.create_dir_all(dir)?;
        let log = env.new_appendable(&Self::log_path(dir))?;
        Ok(TxnManager {
            log: Mutex::new(log),
            next_gsn: AtomicU64::new(recovered.max_gsn + 1),
            committed_floor: AtomicU64::new(recovered.max_gsn),
        })
    }

    /// Starts a transaction: allocates a GSN and persists the begin record.
    pub fn begin(&self) -> io::Result<u64> {
        let gsn = self.next_gsn.fetch_add(1, Ordering::Relaxed);
        let rec = encode(REC_BEGIN, gsn);
        let mut log = self.log.lock();
        log.append(&rec)?;
        log.sync()?;
        Ok(gsn)
    }

    /// Persists the commit record for `gsn`.
    pub fn commit(&self, gsn: u64) -> io::Result<()> {
        let rec = encode(REC_COMMIT, gsn);
        let mut log = self.log.lock();
        log.append(&rec)?;
        log.sync()?;
        drop(log);
        self.committed_floor.fetch_max(gsn, Ordering::Relaxed);
        Ok(())
    }

    /// Highest GSN known committed (monitoring only).
    pub fn committed_floor(&self) -> u64 {
        self.committed_floor.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;
    use std::sync::Arc;

    fn env() -> EnvRef {
        Arc::new(MemEnv::new())
    }

    #[test]
    fn fresh_log_recovers_empty() {
        let env = env();
        let rec = TxnManager::recover(&env, Path::new("t")).unwrap();
        assert!(rec.begun.is_empty() && rec.committed.is_empty());
        assert!(rec.should_replay(0));
        assert!(!rec.should_replay(5));
    }

    #[test]
    fn begin_commit_roundtrip() {
        let env = env();
        let dir = Path::new("t");
        {
            let rec = TxnManager::recover(&env, dir).unwrap();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g1 = mgr.begin().unwrap();
            let g2 = mgr.begin().unwrap();
            assert!(g2 > g1);
            mgr.commit(g1).unwrap();
            // g2 never commits (crash).
        }
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.committed.contains(&1));
        assert!(!rec.committed.contains(&2));
        assert!(rec.begun.contains(&2));
        assert!(rec.should_replay(1));
        assert!(!rec.should_replay(2));
        assert_eq!(rec.max_gsn, 2);
    }

    #[test]
    fn gsns_continue_after_reopen() {
        let env = env();
        let dir = Path::new("t");
        let g_first = {
            let rec = TxnManager::recover(&env, dir).unwrap();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g = mgr.begin().unwrap();
            mgr.commit(g).unwrap();
            g
        };
        let rec = TxnManager::recover(&env, dir).unwrap();
        let mgr = TxnManager::open(&env, dir, &rec).unwrap();
        let g_next = mgr.begin().unwrap();
        assert!(g_next > g_first, "GSNs must never repeat");
    }

    #[test]
    fn out_of_order_commits_are_tracked_individually() {
        // Concurrent transactions can commit out of GSN order; recovery
        // must keep exactly the committed set, not a prefix.
        let env = env();
        let dir = Path::new("t");
        {
            let rec = TxnRecovery::default();
            let mgr = TxnManager::open(&env, dir, &rec).unwrap();
            let g1 = mgr.begin().unwrap();
            let g2 = mgr.begin().unwrap();
            let g3 = mgr.begin().unwrap();
            mgr.commit(g3).unwrap();
            mgr.commit(g1).unwrap();
            let _ = g2; // never committed
        }
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.should_replay(1));
        assert!(!rec.should_replay(2));
        assert!(rec.should_replay(3));
    }

    #[test]
    fn torn_tail_is_ignored() {
        let env = env();
        let dir = Path::new("t");
        {
            let mgr = TxnManager::open(&env, dir, &TxnRecovery::default()).unwrap();
            let g = mgr.begin().unwrap();
            mgr.commit(g).unwrap();
        }
        // Corrupt the tail by appending garbage.
        let path = Path::new("t/TXNLOG");
        let mut data = p2kvs_storage::env::read_all(&*env, path).unwrap();
        data.extend_from_slice(&[0xde, 0xad, 0xbe]);
        p2kvs_storage::env::write_all(&*env, path, &data).unwrap();
        let rec = TxnManager::recover(&env, dir).unwrap();
        assert!(rec.should_replay(1));
        assert_eq!(rec.max_gsn, 1);
    }
}
