//! The p2KVS store: accessing layer + shard map + workers + transactions.
//!
//! Since the two-level refactor (DESIGN.md §9) the store opens `S`
//! virtual shards — engine instances with their own WAL/MemTable —
//! behind `N` workers. Keys route `key → shard` through the
//! [`Partitioner`] and `shard → worker` through the live, epoch-stamped
//! [`crate::shard::ShardMap`]; the optional background balancer migrates
//! shard *ownership* (queue redirection, never data) when per-shard load
//! skews. `shards == workers` with the balancer off reproduces the
//! paper's static one-instance-per-worker layout exactly.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2kvs_obs::{
    labeled, parse_journal, Journal, JournalKind, JournalRecord, MetricsRegistry, MetricsSnapshot,
    PeriodicTask, SpanKind, SpanRecord, SpanRing, TraceCtx, TraceEvent, TraceRing, WorkerLifecycle,
};

use crate::balance::{plan_moves, BalancePolicy, ScalePolicy};
use crate::engine::{EngineEvent, EngineFactory, GsnFilter, KvsEngine};
use crate::error::{Error, Result};
use crate::pool::{SpawnSpec, WorkerPool};
use crate::scan::StoreIter;
use crate::shard::{HashPartitioner, MapCell, Partitioner, ShardMap};
use crate::stats::{ShardSnapshot, StoreSnapshot, WorkerSnapshot};
use crate::txn::TxnManager;
use crate::types::{Op, Request, Response, WriteOp};
use crate::worker::ShardRuntime;

/// How SCAN sizes the opening per-shard quota (§4.4).
///
/// Both strategies now run over the same streaming cursor machinery
/// ([`crate::scan::StoreIter`]) and are therefore always exact: the
/// strategy only decides how much each shard is asked for in the
/// *first* chunk, trading read amplification (`ParallelFull` reads up to
/// `S×` the requested entries up front) against extra cursor round trips
/// (`Adaptive` starts near `count / S` and pulls more chunks only from
/// the shards that still contribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Ask every shard for the full scan size in the opening chunk —
    /// the paper's default parallelizing approach.
    ParallelFull,
    /// Ask each shard for `count / S` plus a margin, refilling lazily
    /// — the ablation variant trading round trips for read
    /// amplification.
    Adaptive,
}

/// How long a migration waits for the handoff markers to settle before
/// reporting failure (they ride ordinary worker queues, so this only
/// fires if a worker is wedged).
const HANDOFF_TIMEOUT: Duration = Duration::from_secs(30);

/// Ops per engine `write_batch` call while loading a restored backup.
const RESTORE_BATCH: usize = 256;

/// Framework configuration.
#[derive(Clone)]
pub struct P2KvsOptions {
    /// Number of worker threads (the paper defaults to 8).
    pub workers: usize,
    /// Number of virtual shards (engine instances, each with its own
    /// WAL/MemTable). `0` means auto: `4 × workers` when no custom
    /// partitioner is supplied, else the partitioner's `partitions()`.
    /// The count is baked into the on-disk layout (`instance-{s}`
    /// directories) — reopen an existing store with the same value.
    pub shards: usize,
    /// Custom `key → shard` routing. `None` uses `Hash(key) % shards`.
    /// `partitions()` must equal the shard count or `open` rejects the
    /// configuration.
    pub partitioner: Option<Arc<dyn Partitioner>>,
    /// When set, a background balancer samples per-shard service time at
    /// this interval and migrates shard ownership off overloaded workers
    /// (the skew-aware rebalancer, DESIGN.md §9). `None` keeps the
    /// initial round-robin assignment forever.
    pub balance_interval: Option<Duration>,
    /// Tunables for the rebalancing decision.
    pub balance: BalancePolicy,
    /// OBM batch bound `M` (32 in the paper); 1 disables merging.
    pub batch_max: usize,
    /// Capacity of each worker's request ring, rounded up to a power of
    /// two (default 1024). A full ring **blocks the pushing user thread**
    /// (spin → yield → short naps) until the worker frees a slot —
    /// bounded-memory backpressure rather than unbounded queueing; see
    /// `crate::queue` for the full policy.
    pub queue_capacity: usize,
    /// Whether OBM is enabled at all (ablation switch).
    pub obm: bool,
    /// Pin worker threads to cores.
    pub pin_workers: bool,
    /// SCAN strategy.
    pub scan_strategy: ScanStrategy,
    /// Hard per-chunk entry bound enforced by every worker: no scan
    /// occupies a worker for more than this many entries before queued
    /// point ops get their turn. `usize::MAX` restores the old blocking
    /// behavior (benchmark baseline).
    pub scan_chunk_entries: usize,
    /// Hard per-chunk payload-byte bound (same clamping).
    pub scan_chunk_bytes: usize,
    /// Record per-request queue-wait/service latencies into the metrics
    /// registry (the registry itself always exists; this gates the
    /// per-request recording).
    pub metrics: bool,
    /// Requests slower end-to-end than this leave a trace event in the
    /// slow-request ring.
    pub slow_request_threshold: Duration,
    /// Capacity of the slow-request ring buffer.
    pub trace_capacity: usize,
    /// When set, a background reporter thread logs a one-line metrics
    /// summary to stderr at this interval.
    pub report_interval: Option<Duration>,
    /// Causal-trace sampling rate: one in `trace_sample` requests
    /// carries a trace id from enqueue through the worker, the engine
    /// call, and device I/O, leaving a completed span tree in the span
    /// ring (see [`P2Kvs::export_trace`]). `0` disables tracing
    /// entirely; sampled requests cost a handful of clock reads, the
    /// rest pay one branch.
    pub trace_sample: u64,
    /// Capacity of the completed-span ring (oldest spans are
    /// overwritten).
    pub trace_span_capacity: usize,
    /// Whether the flight recorder runs: a monotonically sequenced
    /// journal of control-plane events (handoffs, balancer moves,
    /// flush/compaction, fault firings, scan lifecycle) persisted to
    /// `FLIGHT.log` under the store directory and recovered — gap-free —
    /// across restarts and crashes. Independent of `metrics`: the
    /// recorder documents *what the store did*, not how fast.
    pub flight_recorder: bool,
    /// In-memory ring capacity of the flight recorder (the persisted
    /// log is unbounded within the store's lifetime).
    pub flight_recorder_capacity: usize,
    /// Byte budget of the lock-free hot-record read cache consulted in
    /// [`P2Kvs::get`]/[`P2Kvs::get_many`] before any queue submit
    /// (DESIGN.md §11). `0` disables the cache entirely —
    /// [`P2KvsOptions::paper_layout`] does so to keep the paper's exact
    /// request path. The cache is volatile (recovery comes up cold) and
    /// coherent: writes invalidate before they are acked, and shard
    /// migrations flush the moving shard's entries.
    pub cache_capacity: usize,
    /// Map workers and shards onto the env's device submission queues
    /// (DESIGN.md §13). When the env exposes more than one queue
    /// (`SimEnv` with [`p2kvs_storage::DeviceProfile::with_queues`]),
    /// worker `i` issues its engine I/O on queue `i % queues` and shard
    /// `s`'s WAL/flush rides its initial owner's queue, so independent
    /// workers stop serializing behind one device timeline. `false` (or
    /// a single-queue env) keeps file-hash striping.
    pub queue_affinity: bool,
    /// Utilization-driven elastic scaling (DESIGN.md §14). When set,
    /// every balancer tick also compares the interval's aggregate
    /// busy time against the live pool at
    /// [`ScalePolicy::target_util`] and steps the pool one worker
    /// toward the derived size — spawning with a fresh ring, or
    /// draining the highest-id worker through the epoch-fenced handoff
    /// and joining it. Scaling rides the balancer clock: it needs
    /// `balance_interval` (or explicit [`P2Kvs::rebalance_once`]
    /// calls) to tick. `None` (the default, and always the paper
    /// layout) pins the pool at `workers` forever; manual
    /// [`P2Kvs::scale_workers`] remains available either way.
    pub scale: Option<ScalePolicy>,
}

impl Default for P2KvsOptions {
    fn default() -> Self {
        P2KvsOptions {
            workers: 8,
            shards: 0,
            partitioner: None,
            balance_interval: None,
            balance: BalancePolicy::default(),
            batch_max: 32,
            queue_capacity: crate::queue::DEFAULT_QUEUE_CAPACITY,
            obm: true,
            pin_workers: true,
            scan_strategy: ScanStrategy::ParallelFull,
            scan_chunk_entries: crate::worker::DEFAULT_SCAN_CHUNK_ENTRIES,
            scan_chunk_bytes: crate::worker::DEFAULT_SCAN_CHUNK_BYTES,
            metrics: true,
            slow_request_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            report_interval: None,
            trace_sample: 64,
            trace_span_capacity: 4096,
            flight_recorder: true,
            flight_recorder_capacity: 256,
            cache_capacity: 16 << 20,
            queue_affinity: true,
            scale: None,
        }
    }
}

std::thread_local! {
    /// Set while the flight recorder's sink is appending to `FLIGHT.log`.
    /// The journal's own I/O flows through the same (possibly
    /// fault-injecting) env as everything else, so a fault fired *by a
    /// journal append* must not be journaled: the fault hook would
    /// re-enter the sink on the same thread and deadlock on its locks.
    static IN_JOURNAL_SINK: Cell<bool> = const { Cell::new(false) };
}

impl P2KvsOptions {
    /// Convenience: `n` workers, everything else default (so `4n`
    /// shards and no balancer).
    pub fn with_workers(n: usize) -> P2KvsOptions {
        P2KvsOptions {
            workers: n,
            ..P2KvsOptions::default()
        }
    }

    /// The paper's static layout: `n` workers, exactly one shard per
    /// worker, balancer off. The shard map is the identity and stays
    /// that way — byte-for-byte the pre-refactor behavior.
    pub fn paper_layout(n: usize) -> P2KvsOptions {
        P2KvsOptions {
            workers: n,
            shards: n.max(1),
            // The paper has no client-side cache: every GET takes the
            // queue→worker→engine path, so the layout stays comparable.
            cache_capacity: 0,
            ..P2KvsOptions::default()
        }
    }
}

/// Everything the metrics exposition needs, shared with the optional
/// reporter thread.
struct ObsShared<E: KvsEngine> {
    registry: Arc<MetricsRegistry>,
    trace: Arc<TraceRing>,
    runtime: Arc<ShardRuntime<E>>,
    pool: Arc<WorkerPool>,
    opened: Instant,
}

impl<E: KvsEngine> ObsShared<E> {
    /// Samples everything that is not recorded inline — worker counters,
    /// queue depths, per-shard gauges, engine-internal metrics — into
    /// the registry, then snapshots it.
    fn snapshot(&self) -> MetricsSnapshot {
        let reg = &self.registry;
        let ordering = Ordering::Relaxed;
        // Walk every slot the pool ever provisioned: retired slots keep
        // their final counters, so scraped series end at their true
        // values instead of freezing mid-interval or vanishing.
        for (i, (stats, live)) in self.pool.slots_view().into_iter().enumerate() {
            let w = i.to_string();
            let l = |base: &str| labeled(base, &[("worker", &w)]);
            reg.counter(&l("p2kvs_worker_ops_total"))
                .store(stats.ops.load(ordering));
            reg.counter(&l("p2kvs_worker_batches_total"))
                .store(stats.batches.load(ordering));
            reg.counter(&l("p2kvs_worker_merged_ops_total"))
                .store(stats.merged_ops.load(ordering));
            reg.counter(&l("p2kvs_worker_scans_total"))
                .store(stats.scans_opened.load(ordering));
            reg.counter(&l("p2kvs_worker_scan_chunks_total"))
                .store(stats.scan_chunks.load(ordering));
            reg.counter(&l("p2kvs_worker_scan_resumes_total"))
                .store(stats.scan_resumes.load(ordering));
            reg.counter(&l("p2kvs_worker_handoffs_out_total"))
                .store(stats.handoffs_out.load(ordering));
            reg.counter(&l("p2kvs_worker_handoffs_in_total"))
                .store(stats.handoffs_in.load(ordering));
            reg.counter(&l("p2kvs_worker_stashed_total"))
                .store(stats.stashed.load(ordering));
            reg.counter(&l("p2kvs_worker_rerouted_total"))
                .store(stats.rerouted.load(ordering));
            reg.set_gauge(
                &l("p2kvs_active_scans"),
                stats.scans_active.load(ordering) as f64,
            );
            reg.set_gauge(
                &l("p2kvs_shards_owned"),
                stats.shards_owned.load(ordering) as f64,
            );
            reg.set_gauge(
                &l("p2kvs_worker_busy_seconds"),
                stats.busy.busy().as_secs_f64(),
            );
            // The live queue depth gauge reads the ring's relaxed atomic
            // counter — sampling never locks or contends with the data
            // path. A retired slot reads 0: its ring is gone.
            reg.set_gauge(&l("p2kvs_queue_depth"), self.runtime.queues.len_of(i) as f64);
            reg.set_gauge(&l("p2kvs_worker_live"), if live { 1.0 } else { 0.0 });
        }
        for (s, stats) in self.runtime.shard_stats.iter().enumerate() {
            let sh = s.to_string();
            let l = |base: &str| labeled(base, &[("shard", &sh)]);
            reg.counter(&l("p2kvs_shard_ops_total"))
                .store(stats.ops.load(ordering));
            reg.set_gauge(
                &l("p2kvs_shard_busy_seconds"),
                stats.busy_ns.load(ordering) as f64 / 1e9,
            );
            reg.set_gauge(&l("p2kvs_shard_owner"), stats.owner.load(ordering) as f64);
        }
        for (i, engine) in self.runtime.engines.iter().enumerate() {
            let inst = i.to_string();
            for (name, value) in engine.engine_metrics() {
                reg.set_gauge(&labeled(&name, &[("instance", &inst)]), value);
            }
        }
        reg.set_gauge("p2kvs_workers", self.pool.live_count() as f64);
        reg.set_gauge("p2kvs_shards", self.runtime.engines.len() as f64);
        reg.set_gauge("p2kvs_map_epoch", self.runtime.map.epoch() as f64);
        reg.counter("p2kvs_migrations_total")
            .store(self.runtime.depot.installed());
        reg.counter("p2kvs_handoffs_aborted_total")
            .store(self.runtime.depot.aborted());
        reg.set_gauge("p2kvs_uptime_seconds", self.opened.elapsed().as_secs_f64());
        reg.set_gauge(
            "p2kvs_mem_usage_bytes",
            self.runtime
                .engines
                .iter()
                .map(|e| e.mem_usage())
                .sum::<usize>() as f64,
        );
        reg.counter("p2kvs_slow_requests_total")
            .store(self.trace.total_recorded());
        // Device-level counters mirrored from the storage env, so the
        // whole stack — framework, engines, device — reads out of one
        // registry (and one Prometheus scrape).
        if let Some(env) = &self.runtime.env {
            let io = env.io_stats();
            reg.counter("p2kvs_device_bytes_written_total")
                .store(io.bytes_written);
            reg.counter("p2kvs_device_bytes_read_total")
                .store(io.bytes_read);
            reg.counter("p2kvs_device_write_ops_total").store(io.write_ops);
            reg.counter("p2kvs_device_read_ops_total").store(io.read_ops);
            reg.counter("p2kvs_device_syncs_total").store(io.syncs);
            reg.counter("p2kvs_device_wal_bytes_total").store(io.wal_bytes);
            reg.counter("p2kvs_device_flush_bytes_total")
                .store(io.flush_bytes);
            reg.counter("p2kvs_device_compaction_bytes_total")
                .store(io.compaction_bytes);
            reg.set_gauge("p2kvs_device_busy_seconds", io.busy_ns as f64 / 1e9);
            if let Some(u) = env.device_utilization() {
                reg.set_gauge("p2kvs_device_utilization", u);
            }
            // Per-submission-queue breakdown (multi-queue envs only):
            // `p2kvs_device_q{q}_*` shows whether queue affinity actually
            // spread WAL/flush/compaction traffic or one queue hogs the
            // device (DESIGN.md §13).
            let queues = env.queue_count();
            if queues > 1 {
                for (q, qs) in io.queues.iter().enumerate().take(queues) {
                    reg.counter(&format!("p2kvs_device_q{q}_bytes_written_total"))
                        .store(qs.bytes_written);
                    reg.counter(&format!("p2kvs_device_q{q}_bytes_read_total"))
                        .store(qs.bytes_read);
                    reg.counter(&format!("p2kvs_device_q{q}_syncs_total"))
                        .store(qs.syncs);
                    reg.set_gauge(
                        &format!("p2kvs_device_q{q}_busy_seconds"),
                        qs.busy_ns as f64 / 1e9,
                    );
                }
            }
        }
        if let Some(ring) = &self.runtime.spans {
            reg.counter("p2kvs_trace_spans_total")
                .store(ring.total_recorded());
        }
        if let Some(j) = &self.runtime.journal {
            reg.counter("p2kvs_flight_records_total").store(j.last_seq());
        }
        if let Some(c) = &self.runtime.cache {
            let s = c.counters();
            reg.counter("p2kvs_cache_hits").store(s.hits);
            reg.counter("p2kvs_cache_misses").store(s.misses);
            reg.counter("p2kvs_cache_fills").store(s.fills);
            reg.counter("p2kvs_cache_evictions").store(s.evictions);
            reg.counter("p2kvs_cache_invalidations").store(s.invalidations);
            reg.set_gauge("p2kvs_cache_bytes", s.bytes as f64);
        }
        reg.snapshot()
    }

    /// One-line summary for the periodic reporter.
    fn summary_line(&self, snapshot: &MetricsSnapshot) -> String {
        let ops: u64 = self
            .pool
            .slots_view()
            .iter()
            .map(|(s, _)| s.ops.load(Ordering::Relaxed))
            .sum();
        let depth = self.runtime.queues.total_len();
        let write_p99 = snapshot
            .histograms_of("p2kvs_service_ns")
            .iter()
            .filter(|(n, _)| n.contains("class=\"write\""))
            .map(|(_, h)| h.p99)
            .max()
            .unwrap_or(0);
        format!(
            "[p2kvs-obs] uptime={:.1}s ops={} queue_depth={} migrations={} slow_events={} worst_write_service_p99={:.1}us",
            self.opened.elapsed().as_secs_f64(),
            ops,
            depth,
            self.runtime.depot.installed(),
            self.trace.total_recorded(),
            write_p99 as f64 / 1e3,
        )
    }
}

/// State shared between the public migration API and the background
/// balancer tick. The mutex serializes migrations store-wide — one
/// epoch fence and one handoff in flight at a time — and guards the
/// last-sample snapshot the tick differentiates against.
struct BalanceShared<E: KvsEngine> {
    runtime: Arc<ShardRuntime<E>>,
    pool: Arc<WorkerPool>,
    policy: BalancePolicy,
    scale: Option<ScalePolicy>,
    state: parking_lot::Mutex<BalanceState>,
}

/// The balancer's memory between ticks: the previous cumulative
/// per-shard busy-time sample, so each tick rebalances on the load of
/// the *last interval*, not all of history.
struct BalanceState {
    last_busy_ns: Vec<u64>,
    /// When the previous tick ran — the wall interval the scale
    /// decision normalizes busy time against. `None` before the first
    /// tick (which only baselines).
    last_tick: Option<Instant>,
    /// Ticks to sit out before the next scale operation may fire.
    cooldown_left: u32,
}

/// Migrates ownership of `shard` to `target` through the epoch-fenced
/// handoff. Caller must hold the [`BalanceShared::state`] lock.
///
/// Protocol (DESIGN.md §9): publish the successor map → quiesce the
/// displaced epoch's pins (after which no old-epoch push can still be in
/// flight) → enqueue the `HandoffOut` marker on the source worker
/// (provably behind every old-epoch request for the shard) → the source
/// packages the shard's cursors and enqueues `ShardInstall` on the
/// target → wait for the depot to settle.
fn migrate_locked<E: KvsEngine>(rt: &ShardRuntime<E>, shard: usize, target: usize) -> Result<()> {
    let pin = rt.map.pin();
    if shard >= pin.shards() {
        return Err(Error::Config(format!(
            "shard {shard} out of range: the store has {} shards",
            pin.shards()
        )));
    }
    if rt.queues.get(target).is_none() {
        return Err(Error::Config(format!(
            "worker {target} is not live (the pool has {} slots)",
            rt.queues.slot_count()
        )));
    }
    let source = pin.owner(shard);
    if source == target {
        return Ok(());
    }
    rt.depot.begin(shard as u64)?;
    let displaced = rt.map.publish(Arc::new(pin.with_owner(shard, target)));
    // Our own pin references the displaced map; drop it before fencing
    // or quiesce waits on ourselves.
    drop(pin);
    MapCell::quiesce(displaced);
    let (req, done) = Request::sync(Op::HandoffOut {
        shard: shard as u64,
    });
    if rt.queues.push_to(source, req.on_shard(shard as u64)).is_err() {
        // Source queue closed mid-shutdown: settle the depot so nothing
        // waits on a phase that cannot advance.
        rt.depot.abort(shard as u64);
        return Err(Error::Closed);
    }
    let _ = done.wait();
    if !rt.depot.wait_settled(shard as u64, HANDOFF_TIMEOUT) {
        return Err(Error::Engine(format!(
            "handoff of shard {shard} did not settle within {HANDOFF_TIMEOUT:?}"
        )));
    }
    rt.shard_stats[shard].owner.store(target, Ordering::Relaxed);
    Ok(())
}

/// One balancer tick: sample per-shard busy time, difference against the
/// previous sample, plan moves, execute them, then (with a
/// [`ScalePolicy`] configured) step the pool one worker toward the size
/// the interval's utilization calls for. Returns how many migrations
/// were applied.
fn rebalance_tick<E: KvsEngine>(b: &BalanceShared<E>) -> Result<usize> {
    let mut st = b.state.lock();
    let rt = &b.runtime;
    let now = Instant::now();
    let interval_ns = st
        .last_tick
        .map(|t| now.duration_since(t).as_nanos().min(u128::from(u64::MAX)) as u64);
    st.last_tick = Some(now);
    let busy: Vec<u64> = rt
        .shard_stats
        .iter()
        .map(|s| s.busy_ns.load(Ordering::Relaxed))
        .collect();
    let delta: Vec<u64> = busy
        .iter()
        .zip(&st.last_busy_ns)
        .map(|(now, last)| now.saturating_sub(*last))
        .collect();
    st.last_busy_ns = busy;
    let live = b.pool.live_ids();
    let pin = rt.map.pin();
    let moves = plan_moves(&pin, &live, &delta, &b.policy);
    drop(pin);
    let mut applied = 0;
    for (shard, target) in moves {
        migrate_locked(rt, shard, target)?;
        if let Some(j) = &rt.journal {
            // The busy-ns delta is the evidence the decision was made on.
            j.record(
                JournalKind::BalanceMove,
                shard as u64,
                target as u64,
                delta[shard],
                0,
            );
        }
        applied += 1;
    }
    // Elastic step (DESIGN.md §14): one spawn or one drain-retire per
    // tick toward the desired size, separated by the policy's cooldown.
    // The state lock is already held — exactly the fence every scale
    // operation requires. The first tick only baselines: without a
    // previous tick there is no interval to normalize busy time by.
    if let Some(policy) = b.scale {
        if st.cooldown_left > 0 {
            st.cooldown_left -= 1;
        } else if let Some(interval_ns) = interval_ns.filter(|&ns| ns > 0) {
            let aggregate: u64 = delta.iter().sum();
            let desired = policy.desired_workers(aggregate, interval_ns);
            let live_now = b.pool.live_count();
            if desired > live_now {
                b.pool.spawn_into(rt);
                st.cooldown_left = policy.cooldown;
            } else if desired < live_now && live_now > 1 {
                scale_down_locked(rt, &b.pool)?;
                st.cooldown_left = policy.cooldown;
            }
        }
    }
    Ok(applied)
}

/// Retires the highest-id live worker: migrates every shard it owns to
/// the survivors round-robin through the epoch-fenced handoff (parked
/// scan cursors ride along in the depot), then clears its table slot,
/// closes its ring, and joins the thread. Caller must hold the
/// [`BalanceShared::state`] lock — the same fence migrations and the
/// backup freeze take — and must leave at least one live worker.
fn scale_down_locked<E: KvsEngine>(rt: &Arc<ShardRuntime<E>>, pool: &WorkerPool) -> Result<usize> {
    let live = pool.live_ids();
    let Some((&victim, survivors)) = live.split_last() else {
        return Err(Error::Config("the pool has no live workers".into()));
    };
    if survivors.is_empty() {
        return Err(Error::Config("cannot retire the last live worker".into()));
    }
    // Collect the victim's shards under a pin that is dropped before
    // the first migration: `migrate_locked` publishes and quiesces the
    // displaced epoch, and quiesce would wait forever on our own pin.
    let shards = {
        let pin = rt.map.pin();
        pin.shards_of(victim)
    };
    let mut drained = 0u64;
    for (i, &shard) in shards.iter().enumerate() {
        migrate_locked(rt, shard, survivors[i % survivors.len()])?;
        drained += 1;
    }
    pool.retire(victim, drained, rt.journal.as_deref())?;
    Ok(victim)
}

/// A live, structured view of the store's control plane — the shard
/// map, every worker's ownership and load, the balancer's last
/// interval, and the observability subsystems' own state. Cheap to
/// take: a map pin plus relaxed counter reads.
#[derive(Debug, Clone)]
pub struct StoreIntrospection {
    /// Current shard-map epoch (bumps once per migration).
    pub map_epoch: u64,
    /// `shard → worker` assignment under the current map.
    pub shard_owners: Vec<usize>,
    /// Per-worker live view.
    pub workers: Vec<WorkerView>,
    /// Completed ownership migrations since open.
    pub migrations: u64,
    /// Whether the background balancer is running.
    pub balancer_active: bool,
    /// The balancer's tunables.
    pub balance_policy: BalancePolicy,
    /// Per-shard busy-ns at the balancer's last sample (its decision
    /// baseline).
    pub last_sample_busy_ns: Vec<u64>,
    /// Device service-capacity utilization, when the env models one.
    pub device_utilization: Option<f64>,
    /// Completed causal-trace spans recorded so far.
    pub trace_spans_recorded: u64,
    /// Highest flight-recorder sequence number assigned.
    pub flight_last_seq: u64,
    /// Time since open.
    pub uptime: Duration,
}

/// One worker's slice of [`StoreIntrospection`].
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Worker (slot) index.
    pub worker: usize,
    /// Shards the current map assigns to this worker.
    pub shards: Vec<usize>,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Scan cursors currently parked on this worker.
    pub active_scans: u64,
    /// Cumulative useful processing time.
    pub busy: Duration,
    /// Whether the slot currently runs a worker thread. Retired slots
    /// stay in the view with their final counters.
    pub live: bool,
}

/// A p2KVS store over engine type `E`.
pub struct P2Kvs<E: KvsEngine> {
    // Declared before `pool` so the background tasks stop before the
    // workers are joined on drop.
    reporter: Option<PeriodicTask>,
    balancer: Option<PeriodicTask>,
    obs: Arc<ObsShared<E>>,
    balance: Arc<BalanceShared<E>>,
    runtime: Arc<ShardRuntime<E>>,
    pool: Arc<WorkerPool>,
    partitioner: Arc<dyn Partitioner>,
    txn: TxnManager,
    opts: P2KvsOptions,
    /// The store directory (backup streams the flight journal from it).
    dir: PathBuf,
    opened: Instant,
    /// Monotone submission counter driving 1-in-N trace sampling.
    trace_seq: AtomicU64,
    /// Flight-recorder records recovered from `FLIGHT.log` at open.
    recovered_flight: Vec<JournalRecord>,
}

impl<E: KvsEngine> P2Kvs<E> {
    /// Opens (or recovers) a store under `dir`, creating one engine
    /// instance per **shard** via `factory`.
    ///
    /// Recovery order (§4.5): read the transaction commit log first, then
    /// reopen every instance with a GSN filter that drops batches of
    /// transactions that never committed.
    ///
    /// Returns [`Error::Config`] when a custom partitioner's
    /// `partitions()` disagrees with the shard count — routing through a
    /// mismatched partitioner would index out of bounds on the first
    /// request, so the mismatch is rejected here.
    pub fn open<F>(factory: F, dir: impl Into<PathBuf>, opts: P2KvsOptions) -> Result<P2Kvs<E>>
    where
        F: EngineFactory<Engine = E>,
    {
        let n = opts.workers.max(1);
        let shards = match (opts.shards, &opts.partitioner) {
            (0, Some(p)) => p.partitions(),
            (0, None) => 4 * n,
            (s, _) => s,
        }
        .max(1);
        let partitioner: Arc<dyn Partitioner> = opts
            .partitioner
            .clone()
            .unwrap_or_else(|| Arc::new(HashPartitioner::new(shards)));
        if partitioner.partitions() != shards {
            return Err(Error::Config(format!(
                "partitioner covers {} partitions but the store opens {} shards",
                partitioner.partitions(),
                shards
            )));
        }
        let dir = dir.into();
        let env = factory.env();
        env.create_dir_all(&dir)?;
        let recovered = TxnManager::recover(&env, &dir)?;
        let txn = TxnManager::open(&env, &dir, &recovered)?;
        let filter: GsnFilter = {
            let recovered = recovered.clone();
            Arc::new(move |gsn| recovered.should_replay(gsn))
        };
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceRing::new(opts.trace_capacity));
        let slow_ns = opts
            .slow_request_threshold
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        // Queue affinity (DESIGN.md §13): with a multi-queue env, worker
        // `i` rides queue `i % queues`, and each shard's engine is hinted
        // onto its *initial* owner's queue so WAL/flush traffic starts on
        // the thread that issues it. Migrations may later move a shard to
        // a worker on another queue; the hint stays put — placement is a
        // throughput lever, never a correctness input.
        let device_queues = env.queue_count();
        let worker_queue = |w: usize| {
            (opts.queue_affinity && device_queues > 1).then(|| w % device_queues)
        };
        let mut engines = Vec::with_capacity(shards);
        for s in 0..shards {
            let instance_dir = dir.join(format!("instance-{s}"));
            engines.push(Arc::new(factory.open_on(
                &instance_dir,
                Some(filter.clone()),
                worker_queue(s % n),
            )?));
        }
        let spans = (opts.trace_sample > 0)
            .then(|| Arc::new(SpanRing::new(opts.trace_span_capacity)));
        // Flight recorder: recover the persisted journal (its longest
        // valid prefix — a crash may leave a torn tail), continue the
        // sequence from the recovered maximum, and persist every new
        // record as it happens. The file is rewritten from the valid
        // prefix so a torn tail never sits in front of new records.
        let flight_path = dir.join("FLIGHT.log");
        let mut recovered_flight: Vec<JournalRecord> = Vec::new();
        let journal = if opts.flight_recorder {
            if env.exists(&flight_path) {
                let data = p2kvs_storage::env::read_all(&*env, &flight_path)?;
                recovered_flight = parse_journal(&data);
            }
            let last = recovered_flight.last().map(|r| r.seq).unwrap_or(0);
            let j = Arc::new(Journal::new(opts.flight_recorder_capacity, last));
            j.seed(&recovered_flight);
            let mut file = env.new_writable(&flight_path)?;
            for r in &recovered_flight {
                file.append(r.encode().as_bytes())?;
            }
            file.sync()?;
            let file = parking_lot::Mutex::new(file);
            j.set_sink(Box::new(move |rec, durable| {
                IN_JOURNAL_SINK.with(|f| f.set(true));
                {
                    let mut file = file.lock();
                    // Errors are swallowed by design: the recorder must
                    // keep working (in memory) on a crashed or failing
                    // env — that is exactly when its evidence matters.
                    let _ = file.append(rec.encode().as_bytes());
                    if durable {
                        let _ = file.sync();
                    }
                }
                IN_JOURNAL_SINK.with(|f| f.set(false));
            }));
            Some(j)
        } else {
            None
        };
        if let Some(j) = &journal {
            // Fault firings from the (fault-injecting) env land in the
            // journal: a = discriminant, b = fault point, c = torn
            // bytes, d = target queue (queue-scoped faults only).
            let jh = j.clone();
            env.install_fault_hook(Arc::new(move |ev| {
                if IN_JOURNAL_SINK.with(|f| f.get()) {
                    return;
                }
                use p2kvs_storage::FaultEvent;
                // d picks apart queue-targeted firings (q in the fourth
                // payload slot) from the global counters' firings.
                let (d, n, torn, q) = match ev {
                    FaultEvent::FailedAppend { n, .. } => (1, *n, 0, 0),
                    FaultEvent::FailedSync { n, .. } => (2, *n, 0, 0),
                    FaultEvent::FailedRead { n, .. } => (3, *n, 0, 0),
                    FaultEvent::Crash { n, torn, .. } => (4, *n, *torn as u64, 0),
                    FaultEvent::FailedQueueAppend { q, n, .. } => (5, *n, 0, *q as u64),
                    FaultEvent::FailedQueueSync { q, n, .. } => (6, *n, 0, *q as u64),
                    FaultEvent::QueueCrash { q, n, torn, .. } => {
                        (7, *n, *torn as u64, *q as u64)
                    }
                };
                jh.record(JournalKind::FaultFired, d, n, torn, q);
            }));
            // Engine background events: a = instance, b = level, c = bytes.
            for (i, engine) in engines.iter().enumerate() {
                let jh = j.clone();
                let inst = i as u64;
                engine.install_event_hook(Arc::new(move |ev| {
                    let (kind, level, bytes) = match *ev {
                        EngineEvent::FlushStart { bytes } => (JournalKind::FlushStart, 0, bytes),
                        EngineEvent::FlushFinish { bytes } => (JournalKind::FlushFinish, 0, bytes),
                        EngineEvent::CompactionStart { level, bytes } => {
                            (JournalKind::CompactionStart, level as u64, bytes)
                        }
                        EngineEvent::CompactionFinish { level, bytes } => {
                            (JournalKind::CompactionFinish, level as u64, bytes)
                        }
                    };
                    jh.record(kind, inst, level, bytes, 0);
                }));
            }
            j.record(
                JournalKind::StoreOpen,
                shards as u64,
                n as u64,
                recovered_flight.len() as u64,
                0,
            );
        }
        let cache = (opts.cache_capacity > 0)
            .then(|| Arc::new(crate::cache::ReadCache::new(opts.cache_capacity as u64, shards)));
        if let (Some(j), Some(c)) = (&journal, &cache) {
            // The cache is volatile: every open starts cold. Journal the
            // reset so recovery evidence shows no stale entry survived
            // (a = MAX marks a full reset, c = the configured budget).
            j.record(JournalKind::CacheFlush, u64::MAX, 0, c.capacity(), 0);
        }
        // The queue table starts empty: the pool installs each worker's
        // ring (before its thread starts) as it spawns them.
        let queues = Arc::new(crate::pool::QueueTable::new(Vec::new()));
        let runtime = Arc::new(ShardRuntime {
            engines,
            queues: queues.clone(),
            map: Arc::new(MapCell::new(ShardMap::initial(shards, n))),
            depot: Arc::new(crate::shard::HandoffDepot::new()),
            shard_stats: (0..shards)
                .map(|_| Arc::new(crate::shard::ShardStats::default()))
                .collect(),
            spans,
            journal,
            cache,
            env: Some(env.clone()),
            backup: Arc::new(crate::backup::BackupHub::default()),
        });
        let pool = Arc::new(WorkerPool::new(
            queues,
            SpawnSpec {
                config: crate::worker::WorkerConfig {
                    batch_max: if opts.obm { opts.batch_max } else { 1 },
                    queue_capacity: opts.queue_capacity,
                    pin: opts.pin_workers,
                    scan_chunk_entries: opts.scan_chunk_entries,
                    scan_chunk_bytes: opts.scan_chunk_bytes,
                    // Recomputed per worker id by the pool so the
                    // `w % queues` mapping holds as the pool resizes.
                    io_queue: None,
                },
                device_queues,
                queue_affinity: opts.queue_affinity,
                lifecycle: {
                    let registry = registry.clone();
                    let trace = trace.clone();
                    let metrics = opts.metrics;
                    Box::new(move |w| {
                        metrics.then(|| WorkerLifecycle::new(&registry, w, slow_ns, trace.clone()))
                    })
                },
            },
        ));
        for _ in 0..n {
            pool.spawn_into(&runtime);
        }
        let opened = Instant::now();
        let obs = Arc::new(ObsShared {
            registry,
            trace,
            runtime: runtime.clone(),
            pool: pool.clone(),
            opened,
        });
        let reporter = opts.report_interval.map(|interval| {
            let obs = obs.clone();
            PeriodicTask::spawn("p2kvs-reporter", interval, move || {
                let snapshot = obs.snapshot();
                eprintln!("{}", obs.summary_line(&snapshot));
            })
        });
        let balance = Arc::new(BalanceShared {
            runtime: runtime.clone(),
            pool: pool.clone(),
            policy: opts.balance,
            scale: opts.scale,
            state: parking_lot::Mutex::new(BalanceState {
                last_busy_ns: vec![0; shards],
                last_tick: None,
                cooldown_left: 0,
            }),
        });
        let balancer = opts.balance_interval.map(|interval| {
            let b = balance.clone();
            PeriodicTask::spawn("p2kvs-balancer", interval, move || {
                if let Err(e) = rebalance_tick(&b) {
                    eprintln!("[p2kvs-balancer] tick failed: {e}");
                }
            })
        });
        Ok(P2Kvs {
            reporter,
            balancer,
            obs,
            balance,
            runtime,
            pool,
            partitioner,
            txn,
            opts,
            dir,
            opened,
            trace_seq: AtomicU64::new(0),
            recovered_flight,
        })
    }

    /// Assigns the next trace context: every `trace_sample`-th
    /// submission gets a fresh nonzero id, the rest ride untraced.
    fn next_trace(&self) -> TraceCtx {
        if self.runtime.spans.is_none() {
            return TraceCtx::NONE;
        }
        let sample = self.opts.trace_sample.max(1);
        let n = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        if n % sample == 0 {
            TraceCtx { id: n / sample + 1 }
        } else {
            TraceCtx::NONE
        }
    }

    /// Number of **live** workers (the pool may also hold retired
    /// slots; see [`P2Kvs::live_workers`]).
    pub fn workers(&self) -> usize {
        self.pool.live_count()
    }

    /// Live worker ids, ascending. Ids are pool *slot* indices:
    /// retiring leaves a gap that the next scale-up reuses.
    pub fn live_workers(&self) -> Vec<usize> {
        self.pool.live_ids()
    }

    /// Number of shards (engine instances).
    pub fn shards(&self) -> usize {
        self.runtime.engines.len()
    }

    /// The engine instances, indexed by shard (inspection and tests).
    pub fn engines(&self) -> &[Arc<E>] {
        &self.runtime.engines
    }

    /// Per-slot counters (monitoring and benchmarks), indexed by worker
    /// id. Retired slots expose their final values.
    pub fn worker_stats(&self) -> Vec<Arc<crate::worker::WorkerStats>> {
        self.pool.slots_view().into_iter().map(|(s, _)| s).collect()
    }

    /// The current `shard → worker` assignment (a snapshot; migrations
    /// replace it).
    pub fn shard_owners(&self) -> Vec<usize> {
        let pin = self.runtime.map.pin();
        (0..pin.shards()).map(|s| pin.owner(s)).collect()
    }

    /// The shard map's current epoch. Bumps by one per migration.
    pub fn map_epoch(&self) -> u64 {
        self.runtime.map.epoch()
    }

    /// Completed ownership migrations since open.
    pub fn migrations(&self) -> u64 {
        self.runtime.depot.installed()
    }

    /// Migrates ownership of `shard` to `target` through the
    /// epoch-fenced handoff (manual override of the balancer; also the
    /// test hook). Blocks until the handoff settles. Per-key issue
    /// order and scan cursors survive the move; no data moves.
    pub fn migrate_shard(&self, shard: usize, target: usize) -> Result<()> {
        let _serialize = self.balance.state.lock();
        migrate_locked(&self.runtime, shard, target)
    }

    /// Runs one balancer tick right now (regardless of
    /// `balance_interval`), returning how many migrations it applied.
    /// With a [`ScalePolicy`] configured this also runs the elastic
    /// step, so tests and benchmarks can drive auto-scaling on their
    /// own clock.
    pub fn rebalance_once(&self) -> Result<usize> {
        rebalance_tick(&self.balance)
    }

    /// Resizes the pool to exactly `n` live workers, one spawn or
    /// drain-retire at a time under the migration fence (DESIGN.md
    /// §14).
    ///
    /// Scale-up installs each newcomer's ring in the queue table before
    /// its thread starts and leaves shard placement to the balancer (or
    /// [`P2Kvs::rebalance_once`] / [`P2Kvs::migrate_shard`]).
    /// Scale-down drains the highest-id live worker by migrating every
    /// shard it owns to the survivors through the epoch-fenced handoff
    /// — parked scan cursors ride along, acked writes survive, and no
    /// request fails merely because the pool resized — then closes its
    /// ring and joins the thread. Both directions land `worker_spawn` /
    /// `worker_retire` flight records.
    ///
    /// Safe against concurrent [`P2Kvs::backup`]: the freeze fence and
    /// every scale step take the same lock, so markers always target
    /// the live worker set. Returns the live count (`n`); `n == 0` is a
    /// configuration error.
    pub fn scale_workers(&self, n: usize) -> Result<usize> {
        if n == 0 {
            return Err(Error::Config(
                "a store needs at least one live worker".into(),
            ));
        }
        let _fence = self.balance.state.lock();
        while self.pool.live_count() < n {
            self.pool.spawn_into(&self.runtime);
        }
        while self.pool.live_count() > n {
            scale_down_locked(&self.runtime, &self.pool)?;
        }
        Ok(self.pool.live_count())
    }

    fn submit_to_shard(&self, shard: usize, op: Op) -> Result<Response> {
        let (req, done) = Request::sync(op);
        {
            // Pin only across the push: the pin is the epoch fence, and
            // parking it across `wait` would stall migrations.
            let pin = self.runtime.map.pin();
            self.runtime
                .queues
                .push_to(
                    pin.owner(shard),
                    req.on_shard(shard as u64).traced(self.next_trace()),
                )
                .map_err(|_| Error::Closed)?;
        }
        done.wait()
    }

    fn submit_to_key(&self, key: &[u8], op: Op) -> Result<Response> {
        self.submit_to_shard(self.partitioner.shard_of(key), op)
    }

    /// Inserts `key -> value` (blocking).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.submit_to_key(
            key,
            Op::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        )? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Inserts `key -> value` without blocking; `cb` runs on the worker
    /// when the write completes (the asynchronous interface of §4.1).
    pub fn put_async(
        &self,
        key: &[u8],
        value: &[u8],
        cb: impl FnOnce(Result<()>) + Send + 'static,
    ) -> Result<()> {
        let op = Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        };
        let shard = self.partitioner.shard_of(key);
        let req = Request::asynchronous(op, Box::new(move |r| cb(r.map(|_| ()))));
        let pin = self.runtime.map.pin();
        self.runtime
            .queues
            .push_to(
                pin.owner(shard),
                req.on_shard(shard as u64).traced(self.next_trace()),
            )
            .map_err(|_| Error::Closed)
    }

    /// Deletes `key` (blocking).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        match self.submit_to_key(key, Op::Delete { key: key.to_vec() })? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Point lookup. Probes the lock-free read cache first: a hit
    /// returns on the calling thread with no queue round-trip and no
    /// allocation beyond the value bytes; only misses are submitted.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let shard = self.partitioner.shard_of(key);
        if let Some(cache) = &self.runtime.cache {
            // Decide sampling before the probe so unsampled hits pay no
            // clock reads at all.
            let ctx = self.next_trace();
            if ctx.is_sampled() {
                if let Some(ring) = &self.runtime.spans {
                    let start = Instant::now();
                    if let Some(v) = cache.lookup(shard as u32, key) {
                        ring.record(SpanRecord {
                            trace_id: ctx.id,
                            kind: SpanKind::CacheLookup,
                            worker: u32::MAX,
                            shard: shard as u32,
                            start_us: ring.stamp(start),
                            dur_us: start.elapsed().as_micros() as u64,
                            batch_id: 0,
                            batch_size: 1,
                            aux: v.len() as u64,
                        });
                        return Ok(Some(v));
                    }
                }
            } else if let Some(v) = cache.lookup(shard as u32, key) {
                return Ok(Some(v));
            }
        }
        match self.submit_to_shard(shard, Op::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Batched lookups with a partial-hit fast path: cached keys are
    /// served immediately on the calling thread, and only the misses
    /// are enqueued — all under one map pin, so a concurrent migration
    /// cannot split the batch across epochs. The enqueued remainder is
    /// then awaited, so OBM can still merge it per worker.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        let cache = self.runtime.cache.as_deref();
        // `results[i]` is `Some` once key `i` is resolved (cache hit or
        // completed miss); misses park their completion with the index.
        let mut results: Vec<Option<Option<Vec<u8>>>> = vec![None; keys.len()];
        let mut completions = Vec::with_capacity(keys.len());
        let mut push_err = None;
        {
            let pin = self.runtime.map.pin();
            for (i, key) in keys.iter().enumerate() {
                let shard = self.partitioner.shard_of(key);
                if let Some(c) = cache {
                    if let Some(v) = c.lookup(shard as u32, key) {
                        results[i] = Some(Some(v));
                        continue;
                    }
                }
                let (req, done) = Request::sync(Op::Get { key: key.clone() });
                match self.runtime.queues.push_to(
                    pin.owner(shard),
                    req.on_shard(shard as u64).traced(self.next_trace()),
                ) {
                    Ok(()) => completions.push((i, done)),
                    Err(_) => {
                        push_err = Some(Error::Closed);
                        break;
                    }
                }
            }
        }
        // Wait for every enqueued miss even when something failed:
        // already-enqueued requests hold pooled completion slots, and
        // abandoning them would recycle slots a worker is about to
        // fulfill. The first failure is reported after the drain.
        let mut first_err = push_err;
        for (i, done) in completions {
            match done.wait() {
                Ok(Response::Value(v)) => results[i] = Some(v),
                Ok(other) => {
                    let e = Error::Engine(format!("unexpected response {other:?}"));
                    first_err.get_or_insert(e);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every key is either a cache hit or an awaited miss"))
            .collect())
    }

    /// Applies `ops` atomically across shards (§4.5).
    ///
    /// Single-shard batches use the engine's atomic WriteBatch
    /// directly. Cross-shard batches get a GSN: sub-batches are
    /// dispatched in parallel, and the commit record is persisted only
    /// after every sub-batch is durable; a crash in between is rolled
    /// back at recovery. Two shards on the same worker still count as
    /// cross-shard — they are separate engines with separate WALs.
    pub fn write_batch(&self, ops: Vec<WriteOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut per_shard: Vec<Vec<WriteOp>> = (0..self.shards()).map(|_| Vec::new()).collect();
        for op in ops {
            // `partitions() == shards` is validated at open, so this
            // index cannot go out of bounds even under a custom
            // partitioner.
            per_shard[self.partitioner.shard_of(op.key())].push(op);
        }
        let involved: Vec<usize> = (0..self.shards())
            .filter(|s| !per_shard[*s].is_empty())
            .collect();
        if involved.len() == 1 {
            let s = involved[0];
            return match self.submit_to_shard(
                s,
                Op::TxnBatch {
                    ops: std::mem::take(&mut per_shard[s]),
                    gsn: 0,
                },
            )? {
                Response::Done => Ok(()),
                other => Err(Error::Engine(format!("unexpected response {other:?}"))),
            };
        }
        let gsn = self.txn.begin()?;
        let mut completions = Vec::with_capacity(involved.len());
        let mut push_err = None;
        {
            let pin = self.runtime.map.pin();
            for &s in &involved {
                let (req, done) = Request::sync(Op::TxnBatch {
                    ops: std::mem::take(&mut per_shard[s]),
                    gsn,
                });
                match self.runtime.queues.push_to(
                    pin.owner(s),
                    req.on_shard(s as u64).traced(self.next_trace()),
                ) {
                    Ok(()) => completions.push(done),
                    Err(_) => {
                        push_err = Some(Error::Closed);
                        break;
                    }
                }
            }
        }
        if let Some(e) = push_err {
            // Drain in-flight sub-batches, then fail without writing a
            // commit record: recovery rolls every sub-batch back. The
            // abandoned GSN still drains the backup freeze gate.
            for c in completions {
                let _ = c.wait();
            }
            self.txn.abandon(gsn);
            return Err(e);
        }
        let mut first_err = None;
        for c in completions {
            if let Err(e) = c.wait() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => {
                self.txn.commit(gsn)?;
                if let Some(j) = &self.runtime.journal {
                    j.record(JournalKind::TxnCommit, involved.len() as u64, 0, 0, gsn);
                }
                Ok(())
            }
            // No commit record: recovery rolls every sub-batch back.
            Some(e) => {
                self.txn.abandon(gsn);
                Err(e)
            }
        }
    }

    /// The opening per-shard chunk quota for a `count`-entry scan
    /// under the configured [`ScanStrategy`]. Follow-up chunks always
    /// use `scan_chunk_entries`.
    fn first_chunk_quota(&self, count: usize) -> usize {
        match self.opts.scan_strategy {
            ScanStrategy::ParallelFull => count,
            ScanStrategy::Adaptive => {
                let s = self.shards();
                (count / s + count / (2 * s).max(1) + 4).min(count)
            }
        }
    }

    /// A streaming, globally sorted iterator over the whole store.
    ///
    /// Entries are pulled lazily in bounded chunks (one engine cursor
    /// per shard, K-way merged — see [`crate::scan::StoreIter`]), so
    /// iteration interleaves with concurrent point traffic instead of
    /// head-of-line-blocking it. Consistency is per shard: each
    /// engine cursor is snapshot-consistent when the engine supports
    /// native cursors (`Capabilities::native_cursor`, e.g. lsmkv) and
    /// monotonic read-committed otherwise (see `DESIGN.md` §8). Open
    /// iterators survive shard migrations: their parked cursors travel
    /// with the shard.
    pub fn iter(&self) -> Result<StoreIter<'_>> {
        self.iter_from(b"")
    }

    /// Like [`P2Kvs::iter`], starting at the first key `>= start`.
    pub fn iter_from(&self, start: &[u8]) -> Result<StoreIter<'_>> {
        StoreIter::open(
            &self.runtime.queues,
            &self.runtime.map,
            self.shards(),
            start,
            None,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )
    }

    /// Like [`P2Kvs::iter`], bounded to `[begin, end)`.
    pub fn iter_range(&self, begin: &[u8], end: &[u8]) -> Result<StoreIter<'_>> {
        StoreIter::open(
            &self.runtime.queues,
            &self.runtime.map,
            self.shards(),
            begin,
            Some(end),
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )
    }

    /// RANGE `[begin, end)`: per-shard bounded cursors, K-way merged
    /// (partitions are disjoint, so this is exact). Materializes the
    /// result; use [`P2Kvs::iter_range`] to stream instead.
    pub fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if begin >= end {
            return Ok(Vec::new());
        }
        let mut iter = self.iter_range(begin, end)?;
        let mut all = Vec::new();
        while let Some(entry) = iter.next_entry()? {
            all.push(entry);
        }
        Ok(all)
    }

    /// SCAN: up to `count` entries with keys `>= start`.
    ///
    /// Always exact: the [`ScanStrategy`] only sizes the opening
    /// per-shard chunk; if the merge needs more from some shard,
    /// its cursor is simply pulled again (no quota-and-retry rounds).
    pub fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if count == 0 {
            // A zero-entry scan used to panic in the quota merge; it is
            // simply empty.
            return Ok(Vec::new());
        }
        let mut iter = StoreIter::open(
            &self.runtime.queues,
            &self.runtime.map,
            self.shards(),
            start,
            None,
            self.first_chunk_quota(count),
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )?;
        iter.next_chunk(count)
    }

    /// Durability barrier across all shards.
    pub fn sync(&self) -> Result<()> {
        for e in &self.runtime.engines {
            e.sync()?;
        }
        Ok(())
    }

    /// Takes a GSN-consistent **online** snapshot of the whole store
    /// into `dir`, returning once the cut is made (foreground traffic
    /// resumes) with a [`crate::backup::BackupHandle`] for the
    /// background streaming (DESIGN.md §12).
    ///
    /// Protocol: freeze the transaction gate (no new GSNs, in-flight
    /// ones drained — the horizon is the highest GSN allocated), then
    /// push one `BackupFreeze` marker per shard under the migration
    /// lock, so every marker lands FIFO behind every write acked before
    /// this call and no handoff can reorder a marker against the
    /// traffic it cuts. Each owner forks an engine-level snapshot when
    /// its marker executes; once all markers ack, the gate thaws and a
    /// background thread streams the forked snapshots to `dir` —
    /// shard files, the flight journal (after the durable
    /// `BackupComplete` record), and a synced `MANIFEST` last.
    ///
    /// The quiesce window is the freeze span only: marker push + one
    /// snapshot fork per shard. Streaming proceeds concurrently with
    /// new writes, which the pinned snapshots do not observe.
    pub fn backup(&self, dir: impl Into<PathBuf>) -> Result<crate::backup::BackupHandle> {
        let dir = dir.into();
        let env = self
            .runtime
            .env
            .clone()
            .expect("stores opened through P2Kvs::open always carry an env");
        let horizon = self.txn.freeze();
        if let Err(e) = self.runtime.backup.open_session(horizon) {
            self.txn.thaw();
            return Err(e);
        }
        let (map_epoch, completions, push_err) = {
            // The migration lock is the marker-ordering fence: no
            // handoff is mid-flight while markers are pushed, so a
            // marker can never chase its shard onto a queue behind
            // traffic that was rerouted ahead of it.
            let _fence = self.balance.state.lock();
            let map_epoch = self.runtime.map.epoch();
            if let Some(j) = &self.runtime.journal {
                j.record(
                    JournalKind::BackupBegin,
                    self.shards() as u64,
                    map_epoch,
                    0,
                    horizon,
                );
            }
            let mut completions = Vec::with_capacity(self.shards());
            let mut push_err = None;
            for s in 0..self.shards() {
                let (req, done) = Request::sync(Op::BackupFreeze { shard: s as u64 });
                // The fence pins the map as surely as an epoch pin
                // would, without holding a pin across a push that may
                // block on a full ring.
                let owner = self.runtime.map.owner(s);
                if self
                    .runtime
                    .queues
                    .push_to(owner, req.on_shard(s as u64))
                    .is_err()
                {
                    push_err = Some(Error::Closed);
                    break;
                }
                completions.push(done);
            }
            (map_epoch, completions, push_err)
        };
        // Wait off the fence: markers execute (and a concurrent
        // migration may even move a not-yet-frozen shard — the marker
        // travels with it through the stash) while we only hold the
        // GSN gate.
        let mut first_err = push_err;
        for done in completions {
            if let Err(e) = done.wait() {
                first_err.get_or_insert(e);
            }
        }
        // Take the session before thawing: every shard's snapshot is
        // deposited (or the backup failed), and only then may a GSN
        // past the horizon reach any shard.
        let session = self.runtime.backup.take_session();
        self.txn.thaw();
        if let Some(e) = first_err {
            return Err(e); // dropping the session releases the snapshots
        }
        let session = session
            .ok_or_else(|| Error::Backup("freeze session disappeared mid-backup".into()))?;
        if session.frozen.len() != self.shards() {
            return Err(Error::Backup(format!(
                "only {} of {} shards deposited a snapshot",
                session.frozen.len(),
                self.shards()
            )));
        }
        let journal = self.runtime.journal.clone();
        let store_dir = self.dir.clone();
        let thread = std::thread::Builder::new()
            .name("p2kvs-backup".into())
            .spawn(move || {
                crate::backup::stream_session(
                    &env,
                    &store_dir,
                    &dir,
                    session,
                    map_epoch,
                    journal.as_deref(),
                )
            })
            .map_err(|e| Error::Backup(format!("spawn backup streamer: {e}")))?;
        Ok(crate::backup::BackupHandle { thread })
    }

    /// Restores a backup taken by [`P2Kvs::backup`] into `dest_dir` and
    /// opens the restored store: every write acked at GSN ≤ the
    /// backup's horizon is present, nothing past the horizon leaks in.
    ///
    /// The backup directory is **fully validated first** — manifest
    /// trailer, per-file lengths, CRCs, record counts — so a partial or
    /// corrupt backup fails with [`Error::Backup`] and the destination
    /// untouched. The restored store recovers the backed-up flight
    /// journal and continues its sequence (a fresh epoch rooted at the
    /// recovered seq, with the backup's own records as provenance),
    /// allocates GSNs strictly past the horizon, and comes up with a
    /// cold read cache (the reset is journaled at open, like any open).
    pub fn restore<F>(
        factory: F,
        backup_dir: impl Into<PathBuf>,
        dest_dir: impl Into<PathBuf>,
        mut opts: P2KvsOptions,
    ) -> Result<P2Kvs<E>>
    where
        F: EngineFactory<Engine = E>,
    {
        let backup_dir = backup_dir.into();
        let dest = dest_dir.into();
        let env = factory.env();
        let (manifest, shard_entries) = crate::backup::read_backup(&env, &backup_dir)?;
        for probe in ["TXNLOG", crate::backup::FLIGHT_FILE, "instance-0"] {
            if env.exists(&dest.join(probe)) {
                return Err(Error::Backup(format!(
                    "destination {} already contains a store ({probe} exists)",
                    dest.display()
                )));
            }
        }
        if opts.shards != 0 && opts.shards != manifest.shards as usize {
            return Err(Error::Config(format!(
                "the backup has {} shards, the restore options say {}",
                manifest.shards, opts.shards
            )));
        }
        opts.shards = manifest.shards as usize;
        env.create_dir_all(&dest)?;
        let flight_src = backup_dir.join(crate::backup::FLIGHT_FILE);
        if opts.flight_recorder && env.exists(&flight_src) {
            let data = p2kvs_storage::env::read_all(&*env, &flight_src)?;
            p2kvs_storage::env::write_all(
                &*env,
                &dest.join(crate::backup::FLIGHT_FILE),
                &data,
            )?;
        }
        // GSN allocation must resume strictly past the horizon: the
        // restored store must never reuse a GSN the source spent.
        TxnManager::seed(&env, &dest, manifest.horizon)?;
        let store = P2Kvs::open(factory, dest, opts)?;
        // Load each shard's entries straight into its engine — the
        // backup's shard indexing *is* the store's (the manifest pins
        // the count) — in bounded batches, then a durability barrier.
        // No request has been submitted yet, so writing through the
        // shared engine handles off the worker threads is safe.
        for (s, entries) in shard_entries.into_iter().enumerate() {
            let engine = &store.runtime.engines[s];
            let mut ops = Vec::with_capacity(RESTORE_BATCH.min(entries.len()));
            for (key, value) in entries {
                ops.push(WriteOp::Put { key, value });
                if ops.len() == RESTORE_BATCH {
                    engine.write_batch(&ops, 0)?;
                    ops.clear();
                }
            }
            if !ops.is_empty() {
                engine.write_batch(&ops, 0)?;
            }
        }
        store.sync()?;
        Ok(store)
    }

    /// Point-in-time statistics.
    pub fn snapshot(&self) -> StoreSnapshot {
        let ordering = Ordering::Relaxed;
        StoreSnapshot {
            workers: self
                .pool
                .slots_view()
                .into_iter()
                .enumerate()
                .map(|(i, (stats, live))| WorkerSnapshot {
                    ops: stats.ops.load(ordering),
                    batches: stats.batches.load(ordering),
                    merged_ops: stats.merged_ops.load(ordering),
                    scans: stats.scans_opened.load(ordering),
                    scan_chunks: stats.scan_chunks.load(ordering),
                    scan_resumes: stats.scan_resumes.load(ordering),
                    active_scans: stats.scans_active.load(ordering),
                    shards_owned: stats.shards_owned.load(ordering),
                    handoffs_out: stats.handoffs_out.load(ordering),
                    handoffs_in: stats.handoffs_in.load(ordering),
                    stashed: stats.stashed.load(ordering),
                    rerouted: stats.rerouted.load(ordering),
                    busy: stats.busy.busy(),
                    queue_depth: self.runtime.queues.len_of(i),
                    live,
                })
                .collect(),
            shards: self
                .runtime
                .shard_stats
                .iter()
                .map(|s| ShardSnapshot {
                    ops: s.ops.load(ordering),
                    busy: Duration::from_nanos(s.busy_ns.load(ordering)),
                    owner: s.owner.load(ordering),
                })
                .collect(),
            migrations: self.runtime.depot.installed(),
            uptime: self.opened.elapsed(),
            mem_usage: self.runtime.engines.iter().map(|e| e.mem_usage()).sum(),
        }
    }

    /// The metrics registry: counters, gauges, and the queue-wait /
    /// service latency histograms recorded by the workers.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs.registry
    }

    /// Full metrics snapshot: framework counters and histograms, live
    /// queue-depth gauges, per-shard load/ownership gauges, and
    /// per-instance engine metrics (`engine_*`), ready for
    /// [`MetricsSnapshot::render_prometheus`] /
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The most recent `n` slow-request trace events, oldest first.
    pub fn recent_slow_requests(&self, n: usize) -> Vec<TraceEvent> {
        self.obs.trace.recent(n)
    }

    /// Completed causal-trace spans, sorted by start time. Each sampled
    /// request contributes a span tree: `queue_wait` →
    /// `obm_batch`(batch id + merged-run size) → `engine` →
    /// WAL/MemTable/read phases → `device_io`.
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.runtime
            .spans
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Exports the span ring plus the flight recorder's recent records
    /// as Chrome-trace / Perfetto JSON (load it at `ui.perfetto.dev` or
    /// `chrome://tracing`). Spans render as duration events grouped by
    /// worker; journal records as instant events on a control track.
    pub fn export_trace(&self) -> String {
        let spans = self.trace_spans();
        let journal = self
            .runtime
            .journal
            .as_ref()
            .map(|j| j.recent(usize::MAX))
            .unwrap_or_default();
        p2kvs_obs::export_chrome_trace(&spans, &journal)
    }

    /// The flight recorder's most recent `n` records, oldest first
    /// (spanning the last crash/restart boundary: the in-memory ring is
    /// seeded from the recovered log at open).
    pub fn flight_records(&self, n: usize) -> Vec<JournalRecord> {
        self.runtime
            .journal
            .as_ref()
            .map(|j| j.recent(n))
            .unwrap_or_default()
    }

    /// Every record recovered from `FLIGHT.log` at open — the previous
    /// incarnation's journal, surviving crash (minus a torn tail).
    pub fn recovered_flight_records(&self) -> &[JournalRecord] {
        &self.recovered_flight
    }

    /// A live, structured control-plane view: shard map + epoch,
    /// per-worker shard sets, queue depths and active scans, balancer
    /// state, and device utilization.
    pub fn introspect(&self) -> StoreIntrospection {
        let ordering = Ordering::Relaxed;
        let pin = self.runtime.map.pin();
        let shard_owners: Vec<usize> = (0..pin.shards()).map(|s| pin.owner(s)).collect();
        let workers = self
            .pool
            .slots_view()
            .into_iter()
            .enumerate()
            .map(|(i, (stats, live))| WorkerView {
                worker: i,
                shards: pin.shards_of(i),
                queue_depth: self.runtime.queues.len_of(i),
                active_scans: stats.scans_active.load(ordering),
                busy: stats.busy.busy(),
                live,
            })
            .collect();
        StoreIntrospection {
            map_epoch: pin.epoch(),
            shard_owners,
            workers,
            migrations: self.runtime.depot.installed(),
            balancer_active: self.balancer.is_some(),
            balance_policy: self.balance.policy,
            last_sample_busy_ns: self.balance.state.lock().last_busy_ns.clone(),
            device_utilization: self
                .runtime
                .env
                .as_ref()
                .and_then(|e| e.device_utilization()),
            trace_spans_recorded: self
                .runtime
                .spans
                .as_ref()
                .map(|r| r.total_recorded())
                .unwrap_or(0),
            flight_last_seq: self
                .runtime
                .journal
                .as_ref()
                .map(|j| j.last_seq())
                .unwrap_or(0),
            uptime: self.opened.elapsed(),
        }
    }

    /// Framework options in effect.
    pub fn options(&self) -> &P2KvsOptions {
        &self.opts
    }

    /// Closes the store: stops the reporter and balancer, drains
    /// queues, joins workers, drops engines.
    pub fn close(self) {
        drop(self);
    }
}

impl<E: KvsEngine> Drop for P2Kvs<E> {
    fn drop(&mut self) {
        self.reporter.take();
        self.balancer.take();
        self.pool.shutdown_all();
        if let Some(j) = &self.runtime.journal {
            // Workers are joined: StoreClose is the journal's last word.
            j.record(
                JournalKind::StoreClose,
                self.runtime.engines.len() as u64,
                self.pool.live_count() as u64,
                0,
                0,
            );
            j.clear_sink();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LsmFactory;

    fn open_cached(workers: usize, cache_capacity: usize) -> P2Kvs<lsmkv::Db> {
        let mut opts = P2KvsOptions::with_workers(workers);
        opts.pin_workers = false;
        opts.cache_capacity = cache_capacity;
        P2Kvs::open(LsmFactory::new(lsmkv::Options::for_test()), "store-cache", opts).unwrap()
    }

    /// A key routed to a shard whose initial owner is `worker`.
    fn key_owned_by<E: KvsEngine>(store: &P2Kvs<E>, worker: usize, salt: u32) -> Vec<u8> {
        let owners = store.shard_owners();
        (0u32..10_000)
            .map(|i| format!("owned-{worker}-{salt}-{i}").into_bytes())
            .find(|k| owners[store.partitioner.shard_of(k)] == worker)
            .expect("some key routes to the worker")
    }

    #[test]
    fn get_many_serves_mixed_hits_and_misses() {
        let store = open_cached(2, 1 << 20);
        let keys: Vec<Vec<u8>> = (0..16u32).map(|i| format!("mix-{i}").into_bytes()).collect();
        for (i, k) in keys.iter().enumerate() {
            store.put(k, format!("v{i}").as_bytes()).unwrap();
        }
        // Warm half the keys into the cache (the doorkeeper admits a key
        // on its second miss, so warming takes two gets).
        for _ in 0..2 {
            for k in keys.iter().step_by(2) {
                store.get(k).unwrap();
            }
        }
        let hits_before = store.runtime.cache.as_ref().unwrap().counters().hits;
        let mut request: Vec<Vec<u8>> = keys.clone();
        request.push(b"mix-missing".to_vec()); // never written
        let got = store.get_many(&request).unwrap();
        for (i, v) in got.iter().take(16).enumerate() {
            assert_eq!(v.as_deref(), Some(format!("v{i}").as_bytes()), "key {i}");
        }
        assert_eq!(got[16], None, "absent key stays absent");
        let hits_after = store.runtime.cache.as_ref().unwrap().counters().hits;
        assert!(
            hits_after >= hits_before + 8,
            "warmed keys must be served from the cache ({hits_before} -> {hits_after})"
        );
        // The first batch marked the other half's doorkeeper tags and a
        // second batch fills them; a third call then hits on every
        // present key.
        let got = store.get_many(&keys).unwrap();
        assert_eq!(got.len(), 16);
        let hits_mid = store.runtime.cache.as_ref().unwrap().counters().hits;
        let got = store.get_many(&keys).unwrap();
        assert_eq!(got.len(), 16);
        let hits_end = store.runtime.cache.as_ref().unwrap().counters().hits;
        assert_eq!(hits_end, hits_mid + 16, "fully warmed batch is all hits");
    }

    #[test]
    fn get_many_drains_enqueued_misses_when_a_push_fails_mid_batch() {
        let store = open_cached(2, 1 << 20);
        let k_cached = key_owned_by(&store, 0, 1);
        let k_live = key_owned_by(&store, 0, 2);
        let k_dead = key_owned_by(&store, 1, 3);
        store.put(&k_cached, b"cached").unwrap();
        store.put(&k_live, b"live").unwrap();
        store.put(&k_dead, b"dead").unwrap();
        store.get(&k_cached).unwrap(); // first miss marks the doorkeeper
        store.get(&k_cached).unwrap(); // second miss fills the cache
        // Kill worker 1's queue: pushes to it now fail, and its shards
        // become unreachable — the mid-batch failure path.
        store.runtime.queues.get(1).unwrap().close();
        let request = vec![k_cached.clone(), k_live.clone(), k_dead.clone()];
        let err = store.get_many(&request).unwrap_err();
        assert!(matches!(err, Error::Closed), "push failure surfaces as Closed: {err}");
        // The enqueued miss (worker 0) was drained, not abandoned: the
        // store still serves traffic on the surviving worker, and the
        // cached key still hits.
        assert_eq!(store.get(&k_cached).unwrap().as_deref(), Some(&b"cached"[..]));
        assert_eq!(store.get(&k_live).unwrap().as_deref(), Some(&b"live"[..]));
    }

    #[test]
    fn paper_layout_disables_the_cache() {
        let opts = P2KvsOptions::paper_layout(4);
        assert_eq!(opts.cache_capacity, 0, "paper layout keeps the paper's request path");
        assert!(P2KvsOptions::default().cache_capacity > 0, "framework default is cache-on");
    }

    #[test]
    fn cache_counters_appear_in_metrics_snapshot() {
        let store = open_cached(2, 1 << 20);
        store.put(b"m", b"1").unwrap();
        store.get(b"m").unwrap(); // miss, marks the doorkeeper
        store.get(b"m").unwrap(); // miss + fill
        store.get(b"m").unwrap(); // hit
        let snap = store.metrics_snapshot();
        for name in [
            "p2kvs_cache_hits",
            "p2kvs_cache_misses",
            "p2kvs_cache_fills",
            "p2kvs_cache_evictions",
            "p2kvs_cache_invalidations",
        ] {
            assert!(snap.counter(name).is_some(), "missing counter {name}");
        }
        assert!(snap.gauge("p2kvs_cache_bytes").is_some(), "missing gauge");
        assert!(snap.counter("p2kvs_cache_hits").unwrap() >= 1);
        assert!(snap.counter("p2kvs_cache_fills").unwrap() >= 1);
        assert!(snap.gauge("p2kvs_cache_bytes").unwrap() > 0.0);
    }

    #[test]
    fn online_backup_restores_byte_identical_at_the_horizon() {
        let engine_opts = lsmkv::Options::for_test();
        let mut opts = P2KvsOptions::with_workers(2);
        opts.pin_workers = false;
        let store = P2Kvs::open(
            LsmFactory::new(engine_opts.clone()),
            "backup-src",
            opts.clone(),
        )
        .unwrap();
        for i in 0..200u32 {
            store
                .put(format!("pre-{i:04}").as_bytes(), format!("val-{i}").as_bytes())
                .unwrap();
        }
        // A cross-shard batch rides the GSN path and must land whole.
        store
            .write_batch(vec![
                WriteOp::Put { key: b"txn-a".to_vec(), value: b"1".to_vec() },
                WriteOp::Put { key: b"txn-b".to_vec(), value: b"2".to_vec() },
                WriteOp::Put { key: b"txn-c".to_vec(), value: b"3".to_vec() },
                WriteOp::Put { key: b"txn-d".to_vec(), value: b"4".to_vec() },
            ])
            .unwrap();
        let handle = store.backup("backup-out").unwrap();
        // Foreground traffic resumes while the streamer runs; writes
        // issued after `backup` returned are past the cut and must not
        // leak into the copy.
        for i in 0..100u32 {
            store.put(format!("post-{i:04}").as_bytes(), b"after").unwrap();
        }
        let report = handle.wait().unwrap();
        assert_eq!(report.shards as usize, store.shards());
        assert!(report.entries >= 204, "all pre-cut writes stream: {report:?}");
        let restored = P2Kvs::restore(
            LsmFactory::new(engine_opts.clone()),
            "backup-out",
            "backup-restored",
            opts.clone(),
        )
        .unwrap();
        assert_eq!(restored.shards(), store.shards(), "manifest pins the shard count");
        for i in 0..200u32 {
            assert_eq!(
                restored.get(format!("pre-{i:04}").as_bytes()).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "pre-cut key {i}"
            );
        }
        for (k, v) in [(b"txn-a", b"1"), (b"txn-b", b"2"), (b"txn-c", b"3"), (b"txn-d", b"4")] {
            assert_eq!(restored.get(k).unwrap().as_deref(), Some(&v[..]));
        }
        for i in 0..100u32 {
            assert_eq!(
                restored.get(format!("post-{i:04}").as_bytes()).unwrap(),
                None,
                "post-cut write {i} leaked into the backup"
            );
        }
        // The backed-up flight journal came along: the restored store
        // recovered the cut's own provenance records.
        let kinds: Vec<_> = restored
            .recovered_flight_records()
            .iter()
            .map(|r| r.kind)
            .collect();
        assert!(kinds.contains(&JournalKind::BackupBegin), "{kinds:?}");
        assert!(kinds.contains(&JournalKind::ShardFrozen), "{kinds:?}");
        assert!(kinds.contains(&JournalKind::BackupComplete), "{kinds:?}");
        // And it keeps serving ordinary traffic past the horizon.
        restored.put(b"fresh", b"write").unwrap();
        assert_eq!(restored.get(b"fresh").unwrap().as_deref(), Some(&b"write"[..]));
    }

    #[test]
    fn restore_rejects_partial_backups_and_occupied_destinations() {
        use std::path::Path;
        let engine_opts = lsmkv::Options::for_test();
        let mut opts = P2KvsOptions::with_workers(2);
        opts.pin_workers = false;
        let store = P2Kvs::open(
            LsmFactory::new(engine_opts.clone()),
            "guard-src",
            opts.clone(),
        )
        .unwrap();
        store.put(b"k", b"v").unwrap();
        let report = store.backup("guard-backup").unwrap().wait().unwrap();
        assert_eq!(report.shards as usize, store.shards());
        let env = store.runtime.env.clone().unwrap();
        // A backup that never completed has shard files but no MANIFEST.
        env.create_dir_all(Path::new("guard-partial")).unwrap();
        let snap =
            p2kvs_storage::env::read_all(&*env, Path::new("guard-backup/shard-0.snap")).unwrap();
        p2kvs_storage::env::write_all(&*env, Path::new("guard-partial/shard-0.snap"), &snap)
            .unwrap();
        let err = P2Kvs::restore(
            LsmFactory::new(engine_opts.clone()),
            "guard-partial",
            "guard-dest",
            opts.clone(),
        )
        .err()
        .expect("restore must fail");
        assert!(matches!(err, Error::Backup(_)), "{err}");
        assert!(err.to_string().contains("MANIFEST"), "{err}");
        // Restoring over a live store directory is refused before any
        // byte is written.
        let err = P2Kvs::restore(
            LsmFactory::new(engine_opts.clone()),
            "guard-backup",
            "guard-src",
            opts.clone(),
        )
        .err()
        .expect("restore must fail");
        assert!(matches!(err, Error::Backup(_)), "{err}");
        assert!(err.to_string().contains("already contains"), "{err}");
        // Options that contradict the manifest's shard count are a
        // configuration error, not a silent reshard.
        let mut wrong = opts.clone();
        wrong.shards = store.shards() + 1;
        let err = P2Kvs::restore(
            LsmFactory::new(engine_opts.clone()),
            "guard-backup",
            "guard-dest",
            wrong,
        )
        .err()
        .expect("restore must fail");
        assert!(matches!(err, Error::Config(_)), "{err}");
        // Only one backup can be cutting at a time.
        let h1 = store.backup("guard-again").unwrap();
        h1.wait().unwrap();
    }

    #[test]
    fn read_your_writes_holds_through_the_cache() {
        let store = open_cached(2, 1 << 20);
        for round in 0..50u32 {
            let v = format!("v{round}");
            store.put(b"ryw", v.as_bytes()).unwrap();
            assert_eq!(
                store.get(b"ryw").unwrap().as_deref(),
                Some(v.as_bytes()),
                "round {round}"
            );
        }
        store.delete(b"ryw").unwrap();
        assert_eq!(store.get(b"ryw").unwrap(), None, "delete invalidates");
    }

    #[test]
    fn scale_workers_rejects_zero_and_scaling_stays_opt_in() {
        let store = open_cached(2, 0);
        assert!(matches!(store.scale_workers(0), Err(Error::Config(_))));
        assert_eq!(store.workers(), 2, "a rejected resize changes nothing");
        assert!(P2KvsOptions::default().scale.is_none(), "auto-scaling is opt-in");
        assert!(
            P2KvsOptions::paper_layout(4).scale.is_none(),
            "the paper layout pins the pool"
        );
    }

    #[test]
    fn scale_up_then_down_keeps_every_write_and_finalizes_metrics() {
        let store = open_cached(2, 1 << 20);
        for i in 0..200u32 {
            store
                .put(format!("el-{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(store.scale_workers(4).unwrap(), 4);
        assert_eq!(store.workers(), 4);
        assert_eq!(store.live_workers(), vec![0, 1, 2, 3]);
        // Spread shards onto the newcomers so they do real work.
        let shards = store.shards();
        for s in 0..shards {
            store.migrate_shard(s, s % 4).unwrap();
        }
        for i in 200..400u32 {
            store
                .put(format!("el-{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Retire back down to one: every shard drains through the
        // epoch-fenced handoff and no acked write may be lost.
        assert_eq!(store.scale_workers(1).unwrap(), 1);
        assert_eq!(store.live_workers(), vec![0]);
        for i in 0..400u32 {
            assert_eq!(
                store.get(format!("el-{i:04}").as_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "key {i} after the resizes"
            );
        }
        // Writes keep landing on the shrunken pool.
        store.put(b"post-scale", b"ok").unwrap();
        assert_eq!(store.get(b"post-scale").unwrap().as_deref(), Some(&b"ok"[..]));
        // Retired slots are finalized, not stale: the survivor owns
        // every shard and the retired slots read zero ownership, zero
        // parked cursors, zero depth.
        let snap = store.snapshot();
        assert_eq!(snap.workers.len(), 4, "retired slots stay visible");
        let live: Vec<_> = snap.workers.iter().filter(|w| w.live).collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].shards_owned as usize, shards, "survivor owns everything");
        for w in snap.workers.iter().filter(|w| !w.live) {
            assert_eq!(w.shards_owned, 0, "retired slot owns nothing");
            assert_eq!(w.active_scans, 0, "retired slot parks no cursors");
            assert_eq!(w.queue_depth, 0, "retired ring is gone");
        }
        let metrics = store.metrics_snapshot();
        assert_eq!(metrics.gauge("p2kvs_workers"), Some(1.0));
        assert_eq!(
            metrics.gauge("p2kvs_worker_live{worker=\"0\"}"),
            Some(1.0)
        );
        assert_eq!(
            metrics.gauge("p2kvs_worker_live{worker=\"3\"}"),
            Some(0.0)
        );
        // The flight journal tells the story: 2 spawns at open, 2 more
        // at scale-up, 3 retires on the way down.
        let records = store.flight_records(usize::MAX);
        let spawns = records
            .iter()
            .filter(|r| r.kind == JournalKind::WorkerSpawn)
            .count();
        let retires = records
            .iter()
            .filter(|r| r.kind == JournalKind::WorkerRetire)
            .count();
        assert_eq!(spawns, 4);
        assert_eq!(retires, 3);
    }

    #[test]
    fn a_revived_slot_carries_its_retired_counters_forward() {
        let store = open_cached(2, 0);
        // Work lands on both workers (round-robin map over 8 shards).
        for i in 0..120u32 {
            store.put(format!("cc-{i:04}").as_bytes(), b"v").unwrap();
        }
        store.scale_workers(1).unwrap();
        let retired = store.snapshot().workers[1].clone();
        assert!(!retired.live);
        assert!(retired.ops > 0, "worker 1 served writes before retiring");
        // Reviving slot 1 must not reset its metric series: the new
        // incarnation starts from the retired incarnation's counters,
        // so the per-worker sums stay monotonic across the respawn.
        store.scale_workers(2).unwrap();
        let revived = store.snapshot().workers[1].clone();
        assert!(revived.live);
        assert!(
            revived.ops >= retired.ops,
            "slot 1's ops went backwards across the respawn: {} < {}",
            revived.ops,
            retired.ops
        );
        assert!(revived.busy >= retired.busy, "busy time went backwards");
        assert_eq!(revived.shards_owned, 0, "gauges start fresh on respawn");
    }

    #[test]
    fn open_scans_survive_a_scale_down() {
        let store = open_cached(3, 0);
        for i in 0..300u32 {
            store.put(format!("sc-{i:04}").as_bytes(), b"v").unwrap();
        }
        let mut iter = store.iter().unwrap();
        // Pull a bit so per-shard cursors are parked on their owners.
        let head = iter.next_chunk(10).unwrap();
        assert_eq!(head.len(), 10);
        // Drain two workers mid-scan; the parked cursors ride the
        // handoff depot to the survivor.
        store.scale_workers(1).unwrap();
        let rest = iter.next_chunk(usize::MAX).unwrap();
        assert_eq!(
            head.len() + rest.len(),
            300,
            "no entry lost or duplicated across the resize"
        );
    }

    #[test]
    fn idle_pool_auto_scales_down_to_the_policy_floor() {
        let mut opts = P2KvsOptions::with_workers(3);
        opts.pin_workers = false;
        opts.cache_capacity = 0;
        opts.scale = Some(ScalePolicy {
            target_util: 0.5,
            min_workers: 1,
            max_workers: 4,
            cooldown: 0,
        });
        let store = P2Kvs::open(
            LsmFactory::new(lsmkv::Options::for_test()),
            "store-autoscale",
            opts,
        )
        .unwrap();
        store.put(b"k", b"v").unwrap();
        // The first tick only baselines (no interval yet); each later
        // tick sees an idle interval and retires one worker until the
        // policy floor.
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(2));
            store.rebalance_once().unwrap();
        }
        assert_eq!(store.workers(), 1, "idle pool converges on min_workers");
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        let retired: Vec<_> = store
            .introspect()
            .workers
            .iter()
            .filter(|w| !w.live)
            .map(|w| w.worker)
            .collect();
        assert_eq!(retired, vec![1, 2], "highest ids retire first");
    }

    #[test]
    fn queue_affinity_spreads_device_traffic_and_exports_per_queue_metrics() {
        use p2kvs_storage::{DeviceProfile, SimEnv};
        let env: p2kvs_storage::EnvRef =
            Arc::new(SimEnv::with_profile(DeviceProfile::instant().with_queues(4)));
        let mut engine = lsmkv::Options::rocksdb_like(env);
        engine.memtable_size = 16 << 10;
        engine.target_file_size = 16 << 10;
        let mut opts = P2KvsOptions::with_workers(4);
        opts.pin_workers = false;
        opts.cache_capacity = 0;
        let store = P2Kvs::open(LsmFactory::new(engine), "store-qaff", opts).unwrap();
        let val = vec![7u8; 256];
        for i in 0..2000u32 {
            store
                .put(format!("qaff-{i:05}").into_bytes().as_slice(), &val)
                .unwrap();
        }
        // Every shard's WAL is pinned to its owning worker's queue, so
        // with 4 workers over 4 queues the write traffic cannot collapse
        // onto a single submission queue.
        let snap = store.metrics_snapshot();
        let written: Vec<u64> = (0..4)
            .map(|q| {
                snap.counter(&format!("p2kvs_device_q{q}_bytes_written_total"))
                    .expect("per-queue counter exported")
            })
            .collect();
        let active = written.iter().filter(|&&b| b > 0).count();
        assert!(
            active >= 2,
            "queue affinity must spread writes over >1 submission queue: {written:?}"
        );
        // Reads come back intact regardless of placement.
        for i in (0..2000u32).step_by(97) {
            assert_eq!(
                store
                    .get(format!("qaff-{i:05}").into_bytes().as_slice())
                    .unwrap()
                    .as_deref(),
                Some(val.as_slice()),
                "key {i}"
            );
        }
    }
}
