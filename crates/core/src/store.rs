//! The p2KVS store: accessing layer + workers + transactions.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2kvs_obs::{
    labeled, MetricsRegistry, MetricsSnapshot, PeriodicTask, TraceEvent, TraceRing, WorkerLifecycle,
};

use crate::engine::{EngineFactory, GsnFilter, KvsEngine};
use crate::error::{Error, Result};
use crate::router::{HashPartitioner, Partitioner};
use crate::scan::StoreIter;
use crate::stats::{StoreSnapshot, WorkerSnapshot};
use crate::txn::TxnManager;
use crate::types::{Op, Request, Response, WriteOp};
use crate::worker::{WorkerHandle, WorkerStats};

/// How SCAN sizes the opening per-instance quota (§4.4).
///
/// Both strategies now run over the same streaming cursor machinery
/// ([`crate::scan::StoreIter`]) and are therefore always exact: the
/// strategy only decides how much each instance is asked for in the
/// *first* chunk, trading read amplification (`ParallelFull` reads up to
/// `N×` the requested entries up front) against extra cursor round trips
/// (`Adaptive` starts near `count / N` and pulls more chunks only from
/// the instances that still contribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Ask every instance for the full scan size in the opening chunk —
    /// the paper's default parallelizing approach.
    ParallelFull,
    /// Ask each instance for `count / N` plus a margin, refilling lazily
    /// — the ablation variant trading round trips for read
    /// amplification.
    Adaptive,
}

/// Framework configuration.
#[derive(Clone)]
pub struct P2KvsOptions {
    /// Number of workers / engine instances (the paper defaults to 8).
    pub workers: usize,
    /// OBM batch bound `M` (32 in the paper); 1 disables merging.
    pub batch_max: usize,
    /// Capacity of each worker's request ring, rounded up to a power of
    /// two (default 1024). A full ring **blocks the pushing user thread**
    /// (spin → yield → short naps) until the worker frees a slot —
    /// bounded-memory backpressure rather than unbounded queueing; see
    /// `crate::queue` for the full policy.
    pub queue_capacity: usize,
    /// Whether OBM is enabled at all (ablation switch).
    pub obm: bool,
    /// Pin worker threads to cores.
    pub pin_workers: bool,
    /// SCAN strategy.
    pub scan_strategy: ScanStrategy,
    /// Hard per-chunk entry bound enforced by every worker: no scan
    /// occupies a worker for more than this many entries before queued
    /// point ops get their turn. `usize::MAX` restores the old blocking
    /// behavior (benchmark baseline).
    pub scan_chunk_entries: usize,
    /// Hard per-chunk payload-byte bound (same clamping).
    pub scan_chunk_bytes: usize,
    /// Record per-request queue-wait/service latencies into the metrics
    /// registry (the registry itself always exists; this gates the
    /// per-request recording).
    pub metrics: bool,
    /// Requests slower end-to-end than this leave a trace event in the
    /// slow-request ring.
    pub slow_request_threshold: Duration,
    /// Capacity of the slow-request ring buffer.
    pub trace_capacity: usize,
    /// When set, a background reporter thread logs a one-line metrics
    /// summary to stderr at this interval.
    pub report_interval: Option<Duration>,
}

impl Default for P2KvsOptions {
    fn default() -> Self {
        P2KvsOptions {
            workers: 8,
            batch_max: 32,
            queue_capacity: crate::queue::DEFAULT_QUEUE_CAPACITY,
            obm: true,
            pin_workers: true,
            scan_strategy: ScanStrategy::ParallelFull,
            scan_chunk_entries: crate::worker::DEFAULT_SCAN_CHUNK_ENTRIES,
            scan_chunk_bytes: crate::worker::DEFAULT_SCAN_CHUNK_BYTES,
            metrics: true,
            slow_request_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            report_interval: None,
        }
    }
}

impl P2KvsOptions {
    /// Convenience: `n` workers, everything else default.
    pub fn with_workers(n: usize) -> P2KvsOptions {
        P2KvsOptions {
            workers: n,
            ..P2KvsOptions::default()
        }
    }
}

/// Everything the metrics exposition needs, shared with the optional
/// reporter thread.
struct ObsShared<E: KvsEngine> {
    registry: Arc<MetricsRegistry>,
    trace: Arc<TraceRing>,
    engines: Vec<Arc<E>>,
    worker_stats: Vec<Arc<WorkerStats>>,
    queues: Vec<Arc<crate::queue::RequestQueue>>,
    opened: Instant,
}

impl<E: KvsEngine> ObsShared<E> {
    /// Samples everything that is not recorded inline — worker counters,
    /// queue depths, store gauges, engine-internal metrics — into the
    /// registry, then snapshots it.
    fn snapshot(&self) -> MetricsSnapshot {
        let reg = &self.registry;
        for (i, (stats, queue)) in self.worker_stats.iter().zip(&self.queues).enumerate() {
            let w = i.to_string();
            let l = |base: &str| labeled(base, &[("worker", &w)]);
            let ordering = std::sync::atomic::Ordering::Relaxed;
            reg.counter(&l("p2kvs_worker_ops_total"))
                .store(stats.ops.load(ordering));
            reg.counter(&l("p2kvs_worker_batches_total"))
                .store(stats.batches.load(ordering));
            reg.counter(&l("p2kvs_worker_merged_ops_total"))
                .store(stats.merged_ops.load(ordering));
            reg.counter(&l("p2kvs_worker_scans_total"))
                .store(stats.scans_opened.load(ordering));
            reg.counter(&l("p2kvs_worker_scan_chunks_total"))
                .store(stats.scan_chunks.load(ordering));
            reg.counter(&l("p2kvs_worker_scan_resumes_total"))
                .store(stats.scan_resumes.load(ordering));
            reg.set_gauge(
                &l("p2kvs_active_scans"),
                stats.scans_active.load(ordering) as f64,
            );
            reg.set_gauge(
                &l("p2kvs_worker_busy_seconds"),
                stats.busy.busy().as_secs_f64(),
            );
            // The live queue depth gauge reads the ring's relaxed atomic
            // counter — sampling never locks or contends with the data
            // path.
            reg.set_gauge(&l("p2kvs_queue_depth"), queue.len() as f64);
        }
        for (i, engine) in self.engines.iter().enumerate() {
            let inst = i.to_string();
            for (name, value) in engine.engine_metrics() {
                reg.set_gauge(&labeled(&name, &[("instance", &inst)]), value);
            }
        }
        reg.set_gauge("p2kvs_workers", self.worker_stats.len() as f64);
        reg.set_gauge("p2kvs_uptime_seconds", self.opened.elapsed().as_secs_f64());
        reg.set_gauge(
            "p2kvs_mem_usage_bytes",
            self.engines.iter().map(|e| e.mem_usage()).sum::<usize>() as f64,
        );
        reg.counter("p2kvs_slow_requests_total")
            .store(self.trace.total_recorded());
        reg.snapshot()
    }

    /// One-line summary for the periodic reporter.
    fn summary_line(&self, snapshot: &MetricsSnapshot) -> String {
        let ops: u64 = self
            .worker_stats
            .iter()
            .map(|s| s.ops.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        let depth: usize = self.queues.iter().map(|q| q.len()).sum();
        let write_p99 = snapshot
            .histograms_of("p2kvs_service_ns")
            .iter()
            .filter(|(n, _)| n.contains("class=\"write\""))
            .map(|(_, h)| h.p99)
            .max()
            .unwrap_or(0);
        format!(
            "[p2kvs-obs] uptime={:.1}s ops={} queue_depth={} slow_events={} worst_write_service_p99={:.1}us",
            self.opened.elapsed().as_secs_f64(),
            ops,
            depth,
            self.trace.total_recorded(),
            write_p99 as f64 / 1e3,
        )
    }
}

/// A p2KVS store over engine type `E`.
pub struct P2Kvs<E: KvsEngine> {
    // Declared before `workers` so the reporter thread stops before the
    // workers are joined on drop.
    reporter: Option<PeriodicTask>,
    obs: Arc<ObsShared<E>>,
    engines: Vec<Arc<E>>,
    workers: Vec<WorkerHandle>,
    partitioner: Box<dyn Partitioner>,
    txn: TxnManager,
    opts: P2KvsOptions,
    opened: Instant,
}

impl<E: KvsEngine> P2Kvs<E> {
    /// Opens (or recovers) a store under `dir`, creating one engine
    /// instance per worker via `factory`.
    ///
    /// Recovery order (§4.5): read the transaction commit log first, then
    /// reopen every instance with a GSN filter that drops batches of
    /// transactions that never committed.
    pub fn open<F>(factory: F, dir: impl Into<PathBuf>, opts: P2KvsOptions) -> Result<P2Kvs<E>>
    where
        F: EngineFactory<Engine = E>,
    {
        let dir = dir.into();
        let env = factory.env();
        env.create_dir_all(&dir)?;
        let recovered = TxnManager::recover(&env, &dir)?;
        let txn = TxnManager::open(&env, &dir, &recovered)?;
        let filter: GsnFilter = {
            let recovered = recovered.clone();
            Arc::new(move |gsn| recovered.should_replay(gsn))
        };
        let n = opts.workers.max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceRing::new(opts.trace_capacity));
        let slow_ns = opts
            .slow_request_threshold
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let mut engines = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let instance_dir = dir.join(format!("instance-{i}"));
            let engine = Arc::new(factory.open(&instance_dir, Some(filter.clone()))?);
            let config = crate::worker::WorkerConfig {
                batch_max: if opts.obm { opts.batch_max } else { 1 },
                queue_capacity: opts.queue_capacity,
                pin: opts.pin_workers,
                scan_chunk_entries: opts.scan_chunk_entries,
                scan_chunk_bytes: opts.scan_chunk_bytes,
            };
            let lifecycle = opts
                .metrics
                .then(|| WorkerLifecycle::new(&registry, i, slow_ns, trace.clone()));
            workers.push(WorkerHandle::spawn(i, engine.clone(), config, lifecycle));
            engines.push(engine);
        }
        let opened = Instant::now();
        let obs = Arc::new(ObsShared {
            registry,
            trace,
            engines: engines.clone(),
            worker_stats: workers.iter().map(|w| w.stats.clone()).collect(),
            queues: workers.iter().map(|w| w.queue.clone()).collect(),
            opened,
        });
        let reporter = opts.report_interval.map(|interval| {
            let obs = obs.clone();
            PeriodicTask::spawn("p2kvs-reporter", interval, move || {
                let snapshot = obs.snapshot();
                eprintln!("{}", obs.summary_line(&snapshot));
            })
        });
        Ok(P2Kvs {
            reporter,
            obs,
            engines,
            workers,
            partitioner: Box::new(HashPartitioner::new(n)),
            txn,
            opts,
            opened,
        })
    }

    /// Number of workers / instances.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine instances (inspection and tests).
    pub fn engines(&self) -> &[Arc<E>] {
        &self.engines
    }

    /// Per-worker counters (monitoring and benchmarks).
    pub fn worker_stats(&self) -> Vec<Arc<crate::worker::WorkerStats>> {
        self.workers.iter().map(|w| w.stats.clone()).collect()
    }

    fn submit(&self, worker: usize, op: Op) -> Result<Response> {
        let (req, done) = Request::sync(op);
        self.workers[worker]
            .queue
            .push(req)
            .map_err(|_| Error::Closed)?;
        done.wait()
    }

    fn submit_to_key(&self, key: &[u8], op: Op) -> Result<Response> {
        self.submit(self.partitioner.worker_of(key), op)
    }

    /// Inserts `key -> value` (blocking).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.submit_to_key(
            key,
            Op::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        )? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Inserts `key -> value` without blocking; `cb` runs on the worker
    /// when the write completes (the asynchronous interface of §4.1).
    pub fn put_async(
        &self,
        key: &[u8],
        value: &[u8],
        cb: impl FnOnce(Result<()>) + Send + 'static,
    ) -> Result<()> {
        let op = Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        };
        let worker = self.partitioner.worker_of(key);
        let req = Request::asynchronous(op, Box::new(move |r| cb(r.map(|_| ()))));
        self.workers[worker]
            .queue
            .push(req)
            .map_err(|_| Error::Closed)
    }

    /// Deletes `key` (blocking).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        match self.submit_to_key(key, Op::Delete { key: key.to_vec() })? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.submit_to_key(key, Op::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Batched lookups: requests are enqueued to all owning workers first,
    /// then awaited, so OBM can merge them per worker.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        let mut completions = Vec::with_capacity(keys.len());
        let mut push_err = None;
        for key in keys {
            let (req, done) = Request::sync(Op::Get { key: key.clone() });
            match self.workers[self.partitioner.worker_of(key)].queue.push(req) {
                Ok(()) => completions.push(done),
                Err(_) => {
                    push_err = Some(Error::Closed);
                    break;
                }
            }
        }
        if let Some(e) = push_err {
            // Already-enqueued requests still hold pooled completion
            // slots; abandoning them would recycle slots that a worker
            // is about to fulfill. Drain before reporting the failure.
            for c in completions {
                let _ = c.wait();
            }
            return Err(e);
        }
        completions
            .into_iter()
            .map(|c| match c.wait()? {
                Response::Value(v) => Ok(v),
                other => Err(Error::Engine(format!("unexpected response {other:?}"))),
            })
            .collect()
    }

    /// Applies `ops` atomically across instances (§4.5).
    ///
    /// Single-instance batches use the engine's atomic WriteBatch
    /// directly. Cross-instance batches get a GSN: sub-batches are
    /// dispatched in parallel, and the commit record is persisted only
    /// after every sub-batch is durable; a crash in between is rolled back
    /// at recovery.
    pub fn write_batch(&self, ops: Vec<WriteOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut per_worker: Vec<Vec<WriteOp>> = (0..self.workers()).map(|_| Vec::new()).collect();
        for op in ops {
            per_worker[self.partitioner.worker_of(op.key())].push(op);
        }
        let involved: Vec<usize> = (0..self.workers())
            .filter(|w| !per_worker[*w].is_empty())
            .collect();
        if involved.len() == 1 {
            let w = involved[0];
            return match self.submit(
                w,
                Op::TxnBatch {
                    ops: std::mem::take(&mut per_worker[w]),
                    gsn: 0,
                },
            )? {
                Response::Done => Ok(()),
                other => Err(Error::Engine(format!("unexpected response {other:?}"))),
            };
        }
        let gsn = self.txn.begin()?;
        let mut completions = Vec::with_capacity(involved.len());
        let mut push_err = None;
        for &w in &involved {
            let (req, done) = Request::sync(Op::TxnBatch {
                ops: std::mem::take(&mut per_worker[w]),
                gsn,
            });
            match self.workers[w].queue.push(req) {
                Ok(()) => completions.push(done),
                Err(_) => {
                    push_err = Some(Error::Closed);
                    break;
                }
            }
        }
        if let Some(e) = push_err {
            // Drain in-flight sub-batches, then fail without writing a
            // commit record: recovery rolls every sub-batch back.
            for c in completions {
                let _ = c.wait();
            }
            return Err(e);
        }
        let mut first_err = None;
        for c in completions {
            if let Err(e) = c.wait() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => {
                self.txn.commit(gsn)?;
                Ok(())
            }
            // No commit record: recovery rolls every sub-batch back.
            Some(e) => Err(e),
        }
    }

    /// The opening per-instance chunk quota for a `count`-entry scan
    /// under the configured [`ScanStrategy`]. Follow-up chunks always
    /// use `scan_chunk_entries`.
    fn first_chunk_quota(&self, count: usize) -> usize {
        match self.opts.scan_strategy {
            ScanStrategy::ParallelFull => count,
            ScanStrategy::Adaptive => {
                let n = self.workers();
                (count / n + count / (2 * n).max(1) + 4).min(count)
            }
        }
    }

    /// A streaming, globally sorted iterator over the whole store.
    ///
    /// Entries are pulled lazily in bounded chunks (one engine cursor
    /// per instance, K-way merged — see [`crate::scan::StoreIter`]), so
    /// iteration interleaves with concurrent point traffic instead of
    /// head-of-line-blocking it. Consistency is per instance: each
    /// engine cursor is snapshot-consistent when the engine supports
    /// native cursors (`Capabilities::native_cursor`, e.g. lsmkv) and
    /// monotonic read-committed otherwise (see `DESIGN.md` §8).
    pub fn iter(&self) -> Result<StoreIter<'_>> {
        self.iter_from(b"")
    }

    /// Like [`P2Kvs::iter`], starting at the first key `>= start`.
    pub fn iter_from(&self, start: &[u8]) -> Result<StoreIter<'_>> {
        StoreIter::open(
            &self.workers,
            start,
            None,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )
    }

    /// Like [`P2Kvs::iter`], bounded to `[begin, end)`.
    pub fn iter_range(&self, begin: &[u8], end: &[u8]) -> Result<StoreIter<'_>> {
        StoreIter::open(
            &self.workers,
            begin,
            Some(end),
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )
    }

    /// RANGE `[begin, end)`: per-instance bounded cursors, K-way merged
    /// (partitions are disjoint, so this is exact). Materializes the
    /// result; use [`P2Kvs::iter_range`] to stream instead.
    pub fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if begin >= end {
            return Ok(Vec::new());
        }
        let mut iter = self.iter_range(begin, end)?;
        let mut all = Vec::new();
        while let Some(entry) = iter.next_entry()? {
            all.push(entry);
        }
        Ok(all)
    }

    /// SCAN: up to `count` entries with keys `>= start`.
    ///
    /// Always exact: the [`ScanStrategy`] only sizes the opening
    /// per-instance chunk; if the merge needs more from some instance,
    /// its cursor is simply pulled again (no quota-and-retry rounds).
    pub fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if count == 0 {
            // A zero-entry scan used to panic in the quota merge; it is
            // simply empty.
            return Ok(Vec::new());
        }
        let mut iter = StoreIter::open(
            &self.workers,
            start,
            None,
            self.first_chunk_quota(count),
            self.opts.scan_chunk_entries,
            self.opts.scan_chunk_bytes,
        )?;
        iter.next_chunk(count)
    }

    /// Durability barrier across all instances.
    pub fn sync(&self) -> Result<()> {
        for e in &self.engines {
            e.sync()?;
        }
        Ok(())
    }

    /// Point-in-time statistics.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    ops: w.stats.ops.load(std::sync::atomic::Ordering::Relaxed),
                    batches: w.stats.batches.load(std::sync::atomic::Ordering::Relaxed),
                    merged_ops: w
                        .stats
                        .merged_ops
                        .load(std::sync::atomic::Ordering::Relaxed),
                    scans: w
                        .stats
                        .scans_opened
                        .load(std::sync::atomic::Ordering::Relaxed),
                    scan_chunks: w
                        .stats
                        .scan_chunks
                        .load(std::sync::atomic::Ordering::Relaxed),
                    scan_resumes: w
                        .stats
                        .scan_resumes
                        .load(std::sync::atomic::Ordering::Relaxed),
                    active_scans: w
                        .stats
                        .scans_active
                        .load(std::sync::atomic::Ordering::Relaxed),
                    busy: w.stats.busy.busy(),
                    queue_depth: w.queue.len(),
                })
                .collect(),
            uptime: self.opened.elapsed(),
            mem_usage: self.engines.iter().map(|e| e.mem_usage()).sum(),
        }
    }

    /// The metrics registry: counters, gauges, and the queue-wait /
    /// service latency histograms recorded by the workers.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs.registry
    }

    /// Full metrics snapshot: framework counters and histograms, live
    /// queue-depth gauges, and per-instance engine metrics (`engine_*`),
    /// ready for [`MetricsSnapshot::render_prometheus`] /
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The most recent `n` slow-request trace events, oldest first.
    pub fn recent_slow_requests(&self, n: usize) -> Vec<TraceEvent> {
        self.obs.trace.recent(n)
    }

    /// Framework options in effect.
    pub fn options(&self) -> &P2KvsOptions {
        &self.opts
    }

    /// Closes the store: stops the reporter, drains queues, joins
    /// workers, drops engines.
    pub fn close(mut self) {
        self.reporter.take();
        for w in &mut self.workers {
            w.shutdown();
        }
    }
}
