//! The p2KVS store: accessing layer + workers + transactions.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2kvs_obs::{
    labeled, MetricsRegistry, MetricsSnapshot, PeriodicTask, TraceEvent, TraceRing, WorkerLifecycle,
};

use crate::engine::{EngineFactory, GsnFilter, KvsEngine};
use crate::error::{Error, Result};
use crate::router::{HashPartitioner, Partitioner};
use crate::stats::{StoreSnapshot, WorkerSnapshot};
use crate::txn::TxnManager;
use crate::types::{Op, Request, Response, WriteOp};
use crate::worker::{WorkerHandle, WorkerStats};

/// How SCAN distributes work across instances (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Ask every instance for the full scan size, merge, truncate. Simple
    /// and parallel; reads up to `N×` extra entries (the paper's default
    /// parallelizing approach).
    ParallelFull,
    /// Start with `count / N` (plus margin) per instance and enlarge only
    /// the instances that might still contribute — the ablation variant
    /// trading round trips for read amplification.
    Adaptive,
}

/// Framework configuration.
#[derive(Clone)]
pub struct P2KvsOptions {
    /// Number of workers / engine instances (the paper defaults to 8).
    pub workers: usize,
    /// OBM batch bound `M` (32 in the paper); 1 disables merging.
    pub batch_max: usize,
    /// Capacity of each worker's request ring, rounded up to a power of
    /// two (default 1024). A full ring **blocks the pushing user thread**
    /// (spin → yield → short naps) until the worker frees a slot —
    /// bounded-memory backpressure rather than unbounded queueing; see
    /// `crate::queue` for the full policy.
    pub queue_capacity: usize,
    /// Whether OBM is enabled at all (ablation switch).
    pub obm: bool,
    /// Pin worker threads to cores.
    pub pin_workers: bool,
    /// SCAN strategy.
    pub scan_strategy: ScanStrategy,
    /// Record per-request queue-wait/service latencies into the metrics
    /// registry (the registry itself always exists; this gates the
    /// per-request recording).
    pub metrics: bool,
    /// Requests slower end-to-end than this leave a trace event in the
    /// slow-request ring.
    pub slow_request_threshold: Duration,
    /// Capacity of the slow-request ring buffer.
    pub trace_capacity: usize,
    /// When set, a background reporter thread logs a one-line metrics
    /// summary to stderr at this interval.
    pub report_interval: Option<Duration>,
}

impl Default for P2KvsOptions {
    fn default() -> Self {
        P2KvsOptions {
            workers: 8,
            batch_max: 32,
            queue_capacity: crate::queue::DEFAULT_QUEUE_CAPACITY,
            obm: true,
            pin_workers: true,
            scan_strategy: ScanStrategy::ParallelFull,
            metrics: true,
            slow_request_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            report_interval: None,
        }
    }
}

impl P2KvsOptions {
    /// Convenience: `n` workers, everything else default.
    pub fn with_workers(n: usize) -> P2KvsOptions {
        P2KvsOptions {
            workers: n,
            ..P2KvsOptions::default()
        }
    }
}

/// Everything the metrics exposition needs, shared with the optional
/// reporter thread.
struct ObsShared<E: KvsEngine> {
    registry: Arc<MetricsRegistry>,
    trace: Arc<TraceRing>,
    engines: Vec<Arc<E>>,
    worker_stats: Vec<Arc<WorkerStats>>,
    queues: Vec<Arc<crate::queue::RequestQueue>>,
    opened: Instant,
}

impl<E: KvsEngine> ObsShared<E> {
    /// Samples everything that is not recorded inline — worker counters,
    /// queue depths, store gauges, engine-internal metrics — into the
    /// registry, then snapshots it.
    fn snapshot(&self) -> MetricsSnapshot {
        let reg = &self.registry;
        for (i, (stats, queue)) in self.worker_stats.iter().zip(&self.queues).enumerate() {
            let w = i.to_string();
            let l = |base: &str| labeled(base, &[("worker", &w)]);
            let ordering = std::sync::atomic::Ordering::Relaxed;
            reg.counter(&l("p2kvs_worker_ops_total"))
                .store(stats.ops.load(ordering));
            reg.counter(&l("p2kvs_worker_batches_total"))
                .store(stats.batches.load(ordering));
            reg.counter(&l("p2kvs_worker_merged_ops_total"))
                .store(stats.merged_ops.load(ordering));
            reg.set_gauge(
                &l("p2kvs_worker_busy_seconds"),
                stats.busy.busy().as_secs_f64(),
            );
            // The live queue depth gauge reads the ring's relaxed atomic
            // counter — sampling never locks or contends with the data
            // path.
            reg.set_gauge(&l("p2kvs_queue_depth"), queue.len() as f64);
        }
        for (i, engine) in self.engines.iter().enumerate() {
            let inst = i.to_string();
            for (name, value) in engine.engine_metrics() {
                reg.set_gauge(&labeled(&name, &[("instance", &inst)]), value);
            }
        }
        reg.set_gauge("p2kvs_workers", self.worker_stats.len() as f64);
        reg.set_gauge("p2kvs_uptime_seconds", self.opened.elapsed().as_secs_f64());
        reg.set_gauge(
            "p2kvs_mem_usage_bytes",
            self.engines.iter().map(|e| e.mem_usage()).sum::<usize>() as f64,
        );
        reg.counter("p2kvs_slow_requests_total")
            .store(self.trace.total_recorded());
        reg.snapshot()
    }

    /// One-line summary for the periodic reporter.
    fn summary_line(&self, snapshot: &MetricsSnapshot) -> String {
        let ops: u64 = self
            .worker_stats
            .iter()
            .map(|s| s.ops.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        let depth: usize = self.queues.iter().map(|q| q.len()).sum();
        let write_p99 = snapshot
            .histograms_of("p2kvs_service_ns")
            .iter()
            .filter(|(n, _)| n.contains("class=\"write\""))
            .map(|(_, h)| h.p99)
            .max()
            .unwrap_or(0);
        format!(
            "[p2kvs-obs] uptime={:.1}s ops={} queue_depth={} slow_events={} worst_write_service_p99={:.1}us",
            self.opened.elapsed().as_secs_f64(),
            ops,
            depth,
            self.trace.total_recorded(),
            write_p99 as f64 / 1e3,
        )
    }
}

/// A p2KVS store over engine type `E`.
pub struct P2Kvs<E: KvsEngine> {
    // Declared before `workers` so the reporter thread stops before the
    // workers are joined on drop.
    reporter: Option<PeriodicTask>,
    obs: Arc<ObsShared<E>>,
    engines: Vec<Arc<E>>,
    workers: Vec<WorkerHandle>,
    partitioner: Box<dyn Partitioner>,
    txn: TxnManager,
    opts: P2KvsOptions,
    opened: Instant,
}

impl<E: KvsEngine> P2Kvs<E> {
    /// Opens (or recovers) a store under `dir`, creating one engine
    /// instance per worker via `factory`.
    ///
    /// Recovery order (§4.5): read the transaction commit log first, then
    /// reopen every instance with a GSN filter that drops batches of
    /// transactions that never committed.
    pub fn open<F>(factory: F, dir: impl Into<PathBuf>, opts: P2KvsOptions) -> Result<P2Kvs<E>>
    where
        F: EngineFactory<Engine = E>,
    {
        let dir = dir.into();
        let env = factory.env();
        env.create_dir_all(&dir)?;
        let recovered = TxnManager::recover(&env, &dir)?;
        let txn = TxnManager::open(&env, &dir, &recovered)?;
        let filter: GsnFilter = {
            let recovered = recovered.clone();
            Arc::new(move |gsn| recovered.should_replay(gsn))
        };
        let n = opts.workers.max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(TraceRing::new(opts.trace_capacity));
        let slow_ns = opts
            .slow_request_threshold
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let mut engines = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let instance_dir = dir.join(format!("instance-{i}"));
            let engine = Arc::new(factory.open(&instance_dir, Some(filter.clone()))?);
            let config = crate::worker::WorkerConfig {
                batch_max: if opts.obm { opts.batch_max } else { 1 },
                queue_capacity: opts.queue_capacity,
                pin: opts.pin_workers,
            };
            let lifecycle = opts
                .metrics
                .then(|| WorkerLifecycle::new(&registry, i, slow_ns, trace.clone()));
            workers.push(WorkerHandle::spawn(i, engine.clone(), config, lifecycle));
            engines.push(engine);
        }
        let opened = Instant::now();
        let obs = Arc::new(ObsShared {
            registry,
            trace,
            engines: engines.clone(),
            worker_stats: workers.iter().map(|w| w.stats.clone()).collect(),
            queues: workers.iter().map(|w| w.queue.clone()).collect(),
            opened,
        });
        let reporter = opts.report_interval.map(|interval| {
            let obs = obs.clone();
            PeriodicTask::spawn("p2kvs-reporter", interval, move || {
                let snapshot = obs.snapshot();
                eprintln!("{}", obs.summary_line(&snapshot));
            })
        });
        Ok(P2Kvs {
            reporter,
            obs,
            engines,
            workers,
            partitioner: Box::new(HashPartitioner::new(n)),
            txn,
            opts,
            opened,
        })
    }

    /// Number of workers / instances.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine instances (inspection and tests).
    pub fn engines(&self) -> &[Arc<E>] {
        &self.engines
    }

    /// Per-worker counters (monitoring and benchmarks).
    pub fn worker_stats(&self) -> Vec<Arc<crate::worker::WorkerStats>> {
        self.workers.iter().map(|w| w.stats.clone()).collect()
    }

    fn submit(&self, worker: usize, op: Op) -> Result<Response> {
        let (req, done) = Request::sync(op);
        self.workers[worker]
            .queue
            .push(req)
            .map_err(|_| Error::Closed)?;
        done.wait()
    }

    fn submit_to_key(&self, key: &[u8], op: Op) -> Result<Response> {
        self.submit(self.partitioner.worker_of(key), op)
    }

    /// Inserts `key -> value` (blocking).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self.submit_to_key(
            key,
            Op::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        )? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Inserts `key -> value` without blocking; `cb` runs on the worker
    /// when the write completes (the asynchronous interface of §4.1).
    pub fn put_async(
        &self,
        key: &[u8],
        value: &[u8],
        cb: impl FnOnce(Result<()>) + Send + 'static,
    ) -> Result<()> {
        let op = Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        };
        let worker = self.partitioner.worker_of(key);
        let req = Request::asynchronous(op, Box::new(move |r| cb(r.map(|_| ()))));
        self.workers[worker]
            .queue
            .push(req)
            .map_err(|_| Error::Closed)
    }

    /// Deletes `key` (blocking).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        match self.submit_to_key(key, Op::Delete { key: key.to_vec() })? {
            Response::Done => Ok(()),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.submit_to_key(key, Op::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(Error::Engine(format!("unexpected response {other:?}"))),
        }
    }

    /// Batched lookups: requests are enqueued to all owning workers first,
    /// then awaited, so OBM can merge them per worker.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        let mut completions = Vec::with_capacity(keys.len());
        for key in keys {
            let (req, done) = Request::sync(Op::Get { key: key.clone() });
            self.workers[self.partitioner.worker_of(key)]
                .queue
                .push(req)
                .map_err(|_| Error::Closed)?;
            completions.push(done);
        }
        completions
            .into_iter()
            .map(|c| match c.wait()? {
                Response::Value(v) => Ok(v),
                other => Err(Error::Engine(format!("unexpected response {other:?}"))),
            })
            .collect()
    }

    /// Applies `ops` atomically across instances (§4.5).
    ///
    /// Single-instance batches use the engine's atomic WriteBatch
    /// directly. Cross-instance batches get a GSN: sub-batches are
    /// dispatched in parallel, and the commit record is persisted only
    /// after every sub-batch is durable; a crash in between is rolled back
    /// at recovery.
    pub fn write_batch(&self, ops: Vec<WriteOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let mut per_worker: Vec<Vec<WriteOp>> = (0..self.workers()).map(|_| Vec::new()).collect();
        for op in ops {
            per_worker[self.partitioner.worker_of(op.key())].push(op);
        }
        let involved: Vec<usize> = (0..self.workers())
            .filter(|w| !per_worker[*w].is_empty())
            .collect();
        if involved.len() == 1 {
            let w = involved[0];
            return match self.submit(
                w,
                Op::TxnBatch {
                    ops: std::mem::take(&mut per_worker[w]),
                    gsn: 0,
                },
            )? {
                Response::Done => Ok(()),
                other => Err(Error::Engine(format!("unexpected response {other:?}"))),
            };
        }
        let gsn = self.txn.begin()?;
        let mut completions = Vec::with_capacity(involved.len());
        for &w in &involved {
            let (req, done) = Request::sync(Op::TxnBatch {
                ops: std::mem::take(&mut per_worker[w]),
                gsn,
            });
            self.workers[w].queue.push(req).map_err(|_| Error::Closed)?;
            completions.push(done);
        }
        let mut first_err = None;
        for c in completions {
            if let Err(e) = c.wait() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => {
                self.txn.commit(gsn)?;
                Ok(())
            }
            // No commit record: recovery rolls every sub-batch back.
            Some(e) => Err(e),
        }
    }

    /// RANGE `[begin, end)`: forked into parallel per-instance sub-ranges
    /// and merged (partitions are disjoint, so this is exact).
    pub fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut completions = Vec::with_capacity(self.workers());
        for w in 0..self.workers() {
            let (req, done) = Request::sync(Op::Range {
                begin: begin.to_vec(),
                end: end.to_vec(),
            });
            self.workers[w].queue.push(req).map_err(|_| Error::Closed)?;
            completions.push(done);
        }
        let mut all = Vec::new();
        for c in completions {
            match c.wait()? {
                Response::Entries(mut e) => all.append(&mut e),
                other => return Err(Error::Engine(format!("unexpected response {other:?}"))),
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(all)
    }

    /// SCAN: up to `count` entries with keys `>= start`, using the
    /// configured [`ScanStrategy`].
    pub fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self.opts.scan_strategy {
            ScanStrategy::ParallelFull => self.scan_with_quota(start, count, count),
            ScanStrategy::Adaptive => {
                let n = self.workers();
                let mut quota = (count / n + count / (2 * n).max(1) + 4).min(count);
                loop {
                    let merged = self.scan_with_quota(start, count, quota)?;
                    if merged.len() >= count || quota >= count {
                        return Ok(merged);
                    }
                    // Some instance may still hold closer keys beyond its
                    // quota: enlarge and retry.
                    quota = (quota * 2).min(count);
                }
            }
        }
    }

    /// One parallel scan round: every instance returns up to `quota`
    /// entries, merged and truncated to `count`.
    fn scan_with_quota(
        &self,
        start: &[u8],
        count: usize,
        quota: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut completions = Vec::with_capacity(self.workers());
        for w in 0..self.workers() {
            let (req, done) = Request::sync(Op::Scan {
                start: start.to_vec(),
                count: quota,
            });
            self.workers[w].queue.push(req).map_err(|_| Error::Closed)?;
            completions.push(done);
        }
        let mut per_worker: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(completions.len());
        for c in completions {
            match c.wait()? {
                Response::Entries(e) => per_worker.push(e),
                other => return Err(Error::Engine(format!("unexpected response {other:?}"))),
            }
        }
        // The merged prefix is exact up to the smallest "horizon" of any
        // instance that filled its quota.
        let mut horizon: Option<Vec<u8>> = None;
        for entries in &per_worker {
            if entries.len() == quota {
                let last = entries.last().expect("quota > 0").0.clone();
                horizon = Some(match horizon {
                    None => last,
                    Some(h) if last < h => last,
                    Some(h) => h,
                });
            }
        }
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = per_worker.into_iter().flatten().collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(h) = horizon {
            // Entries beyond the horizon may be wrong (an instance could
            // hold closer keys past its quota); keep the exact prefix.
            let cut = all.partition_point(|(k, _)| k.as_slice() <= h.as_slice());
            all.truncate(cut);
        }
        all.truncate(count);
        Ok(all)
    }

    /// Durability barrier across all instances.
    pub fn sync(&self) -> Result<()> {
        for e in &self.engines {
            e.sync()?;
        }
        Ok(())
    }

    /// Point-in-time statistics.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            workers: self
                .workers
                .iter()
                .map(|w| WorkerSnapshot {
                    ops: w.stats.ops.load(std::sync::atomic::Ordering::Relaxed),
                    batches: w.stats.batches.load(std::sync::atomic::Ordering::Relaxed),
                    merged_ops: w
                        .stats
                        .merged_ops
                        .load(std::sync::atomic::Ordering::Relaxed),
                    busy: w.stats.busy.busy(),
                    queue_depth: w.queue.len(),
                })
                .collect(),
            uptime: self.opened.elapsed(),
            mem_usage: self.engines.iter().map(|e| e.mem_usage()).sum(),
        }
    }

    /// The metrics registry: counters, gauges, and the queue-wait /
    /// service latency histograms recorded by the workers.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs.registry
    }

    /// Full metrics snapshot: framework counters and histograms, live
    /// queue-depth gauges, and per-instance engine metrics (`engine_*`),
    /// ready for [`MetricsSnapshot::render_prometheus`] /
    /// [`MetricsSnapshot::render_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The most recent `n` slow-request trace events, oldest first.
    pub fn recent_slow_requests(&self, n: usize) -> Vec<TraceEvent> {
        self.obs.trace.recent(n)
    }

    /// Framework options in effect.
    pub fn options(&self) -> &P2KvsOptions {
        &self.opts
    }

    /// Closes the store: stops the reporter, drains queues, joins
    /// workers, drops engines.
    pub fn close(mut self) {
        self.reporter.take();
        for w in &mut self.workers {
            w.shutdown();
        }
    }
}
