//! Key-space partitioning (the balanced request allocation of §4.2).

use p2kvs_util::hash::fnv1a64;

/// Maps keys to worker indices.
pub trait Partitioner: Send + Sync + 'static {
    /// The worker owning `key`.
    fn worker_of(&self, key: &[u8]) -> usize;

    /// Number of partitions.
    fn partitions(&self) -> usize;
}

/// The paper's default: `Hash(key) % N`. Load-balanced (even under
/// zipfian skew, hot keys spread across partitions), zero metadata, and no
/// read amplification because partitions never overlap.
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    /// Creates a partitioner over `n` workers.
    pub fn new(n: usize) -> HashPartitioner {
        HashPartitioner { n: n.max(1) }
    }
}

impl Partitioner for HashPartitioner {
    fn worker_of(&self, key: &[u8]) -> usize {
        (fnv1a64(key) % self.n as u64) as usize
    }

    fn partitions(&self) -> usize {
        self.n
    }
}

/// Alternative partitioning by sorted key ranges (mentioned in §4.2 as a
/// configurable strategy for workloads whose access pattern matches known
/// ranges). `boundaries` are the split points: worker `i` owns keys in
/// `[boundaries[i-1], boundaries[i])`.
pub struct RangePartitioner {
    boundaries: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Creates a partitioner with the given split points (sorted).
    /// `boundaries.len() + 1` workers are implied.
    pub fn new(mut boundaries: Vec<Vec<u8>>) -> RangePartitioner {
        boundaries.sort();
        RangePartitioner { boundaries }
    }
}

impl Partitioner for RangePartitioner {
    fn worker_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner::new(8);
        assert_eq!(p.partitions(), 8);
        for i in 0..1000 {
            let key = format!("user{i}");
            let w = p.worker_of(key.as_bytes());
            assert!(w < 8);
            assert_eq!(w, p.worker_of(key.as_bytes()), "routing must be stable");
        }
    }

    #[test]
    fn hash_partitioner_balances_dense_keys() {
        let p = HashPartitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..80_000u64 {
            counts[p.worker_of(format!("user{i:016}").as_bytes())] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min < min / 5, "imbalance: {counts:?}");
    }

    #[test]
    fn hash_partitioner_balances_zipfian_hot_keys() {
        // Even when requests are highly skewed toward a few keys, distinct
        // hot keys spread across partitions (§4.2's claim).
        let p = HashPartitioner::new(4);
        let hot: Vec<usize> = (0..64)
            .map(|i| p.worker_of(format!("hot{i}").as_bytes()))
            .collect();
        for w in 0..4 {
            assert!(hot.contains(&w), "worker {w} got no hot keys");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let p = HashPartitioner::new(0);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.worker_of(b"k"), 0);
    }

    #[test]
    fn range_partitioner_routes_by_boundaries() {
        let p = RangePartitioner::new(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.worker_of(b"apple"), 0);
        assert_eq!(p.worker_of(b"g"), 1, "boundary belongs to the right");
        assert_eq!(p.worker_of(b"monkey"), 1);
        assert_eq!(p.worker_of(b"zebra"), 2);
    }

    #[test]
    fn range_partitioner_sorts_boundaries() {
        let p = RangePartitioner::new(vec![b"p".to_vec(), b"g".to_vec()]);
        assert_eq!(p.worker_of(b"h"), 1);
    }
}
