//! The engine abstraction p2KVS schedules over, plus adapters for the
//! bundled engines.
//!
//! p2KVS treats engines as black boxes (§4.6): it only needs open /
//! submit / close plus two optional fast paths — `write_batch`
//! (RocksDB/LevelDB `WriteBatch`) and `multiget` (RocksDB). The
//! [`Capabilities`] struct tells the OBM which fast paths exist; when one
//! is missing the worker falls back to per-request calls, exactly like the
//! paper's WiredTiger port.

use std::path::Path;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::WriteOp;

/// Optional engine fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// The engine can apply a batch of writes atomically.
    pub batch_write: bool,
    /// The engine has an optimized batched point lookup.
    pub multiget: bool,
}

/// Predicate deciding whether a GSN-tagged batch replays at recovery.
pub type GsnFilter = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// A key-value engine instance owned by one worker.
pub trait KvsEngine: Send + Sync + 'static {
    /// Inserts one pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Deletes one key.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Applies `ops` atomically, tagged with `gsn` (0 = untagged).
    /// Engines without [`Capabilities::batch_write`] may return
    /// [`Error::Unsupported`].
    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()>;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Batched point lookups; the default loops over [`KvsEngine::get`].
    fn multiget(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Up to `count` entries with keys `>= start`, in order.
    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Entries in `[begin, end)`, in order.
    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// The engine's fast paths.
    fn capabilities(&self) -> Capabilities;

    /// Durability barrier for everything written so far.
    fn sync(&self) -> Result<()>;

    /// Approximate resident memory in bytes.
    fn mem_usage(&self) -> usize;

    /// Engine-internal metrics, as `(name, value)` pairs using
    /// `engine_`-prefixed Prometheus-style names. The framework samples
    /// these into its metrics registry (labeled per instance) at snapshot
    /// time, so engine internals — e.g. lsmkv's WAL/MemTable/lock write
    /// breakdown — surface through the same exposition as framework
    /// metrics. The default is no metrics.
    fn engine_metrics(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Opens engine instances, one per worker.
pub trait EngineFactory: Send + Sync + 'static {
    /// The engine type this factory produces.
    type Engine: KvsEngine;

    /// Opens (or recovers) the instance stored in `dir`. `filter`, when
    /// present, suppresses replay of WAL batches whose GSN it rejects
    /// (p2KVS transaction rollback).
    fn open(&self, dir: &Path, filter: Option<GsnFilter>) -> Result<Self::Engine>;

    /// The environment instances live in (the framework stores its
    /// transaction log beside them).
    fn env(&self) -> p2kvs_storage::EnvRef;
}

// ---------------------------------------------------------------------
// lsmkv adapter (RocksDB / LevelDB / PebblesDB modes)
// ---------------------------------------------------------------------

/// Factory for [`lsmkv::Db`] instances sharing an options template.
pub struct LsmFactory {
    template: lsmkv::Options,
}

impl LsmFactory {
    /// Creates a factory cloning `template` per instance.
    pub fn new(template: lsmkv::Options) -> LsmFactory {
        LsmFactory { template }
    }

    /// The options template.
    pub fn options(&self) -> &lsmkv::Options {
        &self.template
    }
}

impl EngineFactory for LsmFactory {
    type Engine = lsmkv::Db;

    fn open(&self, dir: &Path, filter: Option<GsnFilter>) -> Result<lsmkv::Db> {
        let filter = filter.map(|f| -> lsmkv::db::RecoveryFilter { Arc::new(move |gsn| f(gsn)) });
        Ok(lsmkv::Db::open_with_recovery_filter(
            self.template.clone(),
            dir,
            filter,
        )?)
    }

    fn env(&self) -> p2kvs_storage::EnvRef {
        self.template.env.clone()
    }
}

impl KvsEngine for lsmkv::Db {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Ok(lsmkv::Db::put(
            self,
            &lsmkv::WriteOptions::default(),
            key,
            value,
        )?)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        Ok(lsmkv::Db::delete(
            self,
            &lsmkv::WriteOptions::default(),
            key,
        )?)
    }

    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()> {
        let mut batch = lsmkv::WriteBatch::new();
        for op in ops {
            match op {
                WriteOp::Put { key, value } => batch.put(key, value),
                WriteOp::Delete { key } => batch.delete(key),
            }
        }
        batch.set_gsn(gsn);
        // Transactional sub-batches are synced so a persisted commit
        // record implies durable data (§4.5).
        let wo = lsmkv::WriteOptions {
            sync: gsn != 0,
            ..lsmkv::WriteOptions::default()
        };
        Ok(lsmkv::Db::write(self, &wo, batch)?)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(lsmkv::Db::get(self, key)?)
    }

    fn multiget(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        Ok(lsmkv::Db::multiget(self, keys)?)
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(lsmkv::Db::scan(self, start, count)?)
    }

    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(lsmkv::Db::range(self, begin, end)?)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            batch_write: true,
            multiget: self.options().has_multiget,
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(self.sync_wal()?)
    }

    fn mem_usage(&self) -> usize {
        self.approximate_memory_usage()
    }

    fn engine_metrics(&self) -> Vec<(String, f64)> {
        self.stats().metrics()
    }
}

// ---------------------------------------------------------------------
// wtiger adapter (WiredTiger stand-in: no batch write)
// ---------------------------------------------------------------------

/// Factory for [`wtiger::WtDb`] instances sharing an options template.
pub struct WtFactory {
    template: wtiger::WtOptions,
}

impl WtFactory {
    /// Creates a factory cloning `template` per instance.
    pub fn new(template: wtiger::WtOptions) -> WtFactory {
        WtFactory { template }
    }
}

impl EngineFactory for WtFactory {
    type Engine = wtiger::WtDb;

    fn open(&self, dir: &Path, _filter: Option<GsnFilter>) -> Result<wtiger::WtDb> {
        // WiredTiger has no batch-write, hence no GSN tagging: the filter
        // is inapplicable (transactions are unsupported on this engine).
        Ok(wtiger::WtDb::open(self.template.clone(), dir)?)
    }

    fn env(&self) -> p2kvs_storage::EnvRef {
        self.template.env.clone()
    }
}

impl KvsEngine for wtiger::WtDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Ok(wtiger::WtDb::put(self, key, value)?)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        wtiger::WtDb::delete(self, key)?;
        Ok(())
    }

    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()> {
        if gsn != 0 {
            return Err(Error::Unsupported(
                "transactions on an engine without batch-write",
            ));
        }
        // No batch API: apply writes one by one (OBM-write disabled, §4.6).
        for op in ops {
            match op {
                WriteOp::Put { key, value } => wtiger::WtDb::put(self, key, value)?,
                WriteOp::Delete { key } => {
                    wtiger::WtDb::delete(self, key)?;
                }
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(wtiger::WtDb::get(self, key)?)
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(wtiger::WtDb::scan(self, start, count)?)
    }

    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = wtiger::WtDb::scan(self, begin, usize::MAX / 2)?;
        out.retain(|(k, _)| k.as_slice() < end);
        Ok(out)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            batch_write: false,
            multiget: false,
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn mem_usage(&self) -> usize {
        wtiger::WtDb::mem_usage(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;

    #[test]
    fn lsm_adapter_roundtrip() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let db = factory.open(Path::new("e1"), None).unwrap();
        KvsEngine::put(&db, b"k", b"v").unwrap();
        assert_eq!(KvsEngine::get(&db, b"k").unwrap().unwrap(), b"v");
        db.write_batch(
            &[
                WriteOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                WriteOp::Delete { key: b"k".to_vec() },
            ],
            0,
        )
        .unwrap();
        assert_eq!(KvsEngine::get(&db, b"k").unwrap(), None);
        let caps = db.capabilities();
        assert!(caps.batch_write && caps.multiget);
        let got = KvsEngine::multiget(&db, &[b"a".to_vec(), b"zz".to_vec()]).unwrap();
        assert_eq!(got, vec![Some(b"1".to_vec()), None]);
    }

    #[test]
    fn leveldb_mode_reports_no_multiget() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::leveldb_like(env));
        let db = factory.open(Path::new("e2"), None).unwrap();
        assert!(!db.capabilities().multiget);
        assert!(db.capabilities().batch_write);
    }

    #[test]
    fn wtiger_adapter_roundtrip() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let factory = WtFactory::new(wtiger::WtOptions::new(env));
        let db = factory.open(Path::new("e3"), None).unwrap();
        let caps = db.capabilities();
        assert!(!caps.batch_write && !caps.multiget);
        KvsEngine::put(&db, b"b", b"2").unwrap();
        KvsEngine::put(&db, b"a", b"1").unwrap();
        // Batch falls back to sequential writes.
        db.write_batch(
            &[WriteOp::Put {
                key: b"c".to_vec(),
                value: b"3".to_vec(),
            }],
            0,
        )
        .unwrap();
        assert!(db.write_batch(&[], 7).is_err(), "GSN batches unsupported");
        assert_eq!(
            KvsEngine::range(&db, b"a", b"c").unwrap(),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
    }

    #[test]
    fn lsm_recovery_filter_is_wired_through() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let opts = lsmkv::Options::rocksdb_like(env.clone());
        {
            let factory = LsmFactory::new(opts.clone());
            let db = factory.open(Path::new("e4"), None).unwrap();
            db.write_batch(
                &[WriteOp::Put {
                    key: b"x".to_vec(),
                    value: b"1".to_vec(),
                }],
                3,
            )
            .unwrap();
            db.write_batch(
                &[WriteOp::Put {
                    key: b"y".to_vec(),
                    value: b"2".to_vec(),
                }],
                9,
            )
            .unwrap();
            db.crash();
        }
        let factory = LsmFactory::new(opts);
        let filter: GsnFilter = Arc::new(|gsn| gsn <= 3);
        let db = factory.open(Path::new("e4"), Some(filter)).unwrap();
        assert_eq!(KvsEngine::get(&db, b"x").unwrap().unwrap(), b"1");
        assert_eq!(KvsEngine::get(&db, b"y").unwrap(), None);
    }
}
