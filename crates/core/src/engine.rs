//! The engine abstraction p2KVS schedules over, plus adapters for the
//! bundled engines.
//!
//! p2KVS treats engines as black boxes (§4.6): it only needs open /
//! submit / close plus two optional fast paths — `write_batch`
//! (RocksDB/LevelDB `WriteBatch`) and `multiget` (RocksDB). The
//! [`Capabilities`] struct tells the OBM which fast paths exist; when one
//! is missing the worker falls back to per-request calls, exactly like the
//! paper's WiredTiger port.

use std::path::Path;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::WriteOp;

/// Optional engine fast paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// The engine can apply a batch of writes atomically.
    pub batch_write: bool,
    /// The engine has an optimized batched point lookup.
    pub multiget: bool,
    /// The engine can open a snapshot-pinned streaming cursor
    /// ([`KvsEngine::open_cursor`] returns [`ScanCursor::Native`]), so a
    /// chunked scan sees one consistent point-in-time view. Without it
    /// the default resume-from-last-key emulation is used, which is
    /// merely monotonic (see `DESIGN.md` §8).
    pub native_cursor: bool,
}

/// Predicate deciding whether a GSN-tagged batch replays at recovery.
pub type GsnFilter = Arc<dyn Fn(u64) -> bool + Send + Sync>;

/// Cumulative engine phase clocks, nanoseconds since instance open.
///
/// A worker samples these around an engine call and attributes the
/// deltas as nested phase spans of a sampled request (WAL append,
/// memtable insert, read path). Engines without an internal breakdown
/// report all zeros and the trace simply shows the undivided engine
/// span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnginePhases {
    /// Time spent appending to the write-ahead log.
    pub wal_ns: u64,
    /// Time spent inserting into the memtable.
    pub memtable_ns: u64,
    /// Time spent in the read path (memtable probe + table lookups).
    pub read_ns: u64,
}

/// A background-job notification from an engine instance, forwarded to
/// the framework's flight recorder. Delivered on the engine's background
/// thread with no engine lock held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// A memtable flush is starting; `bytes` is the memtable footprint.
    FlushStart { bytes: u64 },
    /// A flush finished, writing `bytes` to L0 (0 on failure).
    FlushFinish { bytes: u64 },
    /// A compaction is starting at `level`, reading `bytes`.
    CompactionStart { level: u32, bytes: u64 },
    /// A compaction at `level` finished, producing `bytes` (0 on failure).
    CompactionFinish { level: u32, bytes: u64 },
}

/// Observer for [`EngineEvent`]s.
pub type EngineEventHook = Arc<dyn Fn(&EngineEvent) + Send + Sync>;

/// One bounded slice of a streaming scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChunk {
    /// Entries in key order, continuing where the previous chunk ended.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Whether the cursor is exhausted — `false` means another
    /// [`KvsEngine::scan_chunk`] call will make progress.
    pub done: bool,
}

/// An engine-native streaming iterator, pinned to a point-in-time view
/// for its whole lifetime. Lives in the owning worker's cursor table
/// between chunks; `Send` because shard ownership migration hands parked
/// cursors to the new owning worker (only one thread drives the cursor
/// at any time — the handoff is a move, never sharing).
pub trait NativeCursor: Send {
    /// Pulls at most `limit` entries / `max_bytes` payload bytes.
    fn next_chunk(&mut self, limit: usize, max_bytes: usize) -> Result<ScanChunk>;
}

/// State carried between chunks of a streaming scan.
///
/// Engines with [`Capabilities::native_cursor`] hand back a pinned
/// [`NativeCursor`]; everything else gets the portable emulation, which
/// re-seeks from the successor of the last returned key on every chunk
/// (correct but only monotonic — concurrent writes between chunks may or
/// may not be observed).
pub enum ScanCursor {
    /// Resume-from-last-key emulation over plain [`KvsEngine::scan`].
    Emulated {
        /// Smallest key the next chunk may return.
        next: Vec<u8>,
        /// Exclusive upper bound (RANGE); `None` for open-ended SCAN.
        end: Option<Vec<u8>>,
        /// Set once the key space (or the bound) is exhausted.
        done: bool,
    },
    /// A snapshot-pinned engine iterator.
    Native(Box<dyn NativeCursor>),
}

impl ScanCursor {
    /// The emulated cursor every engine supports.
    pub fn emulated(start: &[u8], end: Option<&[u8]>) -> ScanCursor {
        ScanCursor::Emulated {
            next: start.to_vec(),
            end: end.map(<[u8]>::to_vec),
            done: false,
        }
    }
}

/// How faithful a [`BackupSource`] is to the instant the snapshot was
/// forked (recorded per shard in the backup manifest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFidelity {
    /// A true engine-level fork: the cursor streams the store exactly as
    /// of [`KvsEngine::snapshot_for_backup`], while later writes proceed
    /// untouched (lsmkv pinned snapshots, wtiger index clones).
    PointInTime,
    /// The engine has no snapshot machinery, so the entries were copied
    /// eagerly *during* the freeze call. Still consistent — the calling
    /// worker serializes the copy against the shard's writes — but the
    /// freeze pause is O(data) instead of O(1).
    Materialized,
}

impl SnapshotFidelity {
    /// Stable numeric code for journals and manifests (0 = point in
    /// time, 1 = materialized).
    pub fn code(self) -> u64 {
        match self {
            SnapshotFidelity::PointInTime => 0,
            SnapshotFidelity::Materialized => 1,
        }
    }

    /// Inverse of [`SnapshotFidelity::code`].
    pub fn from_code(code: u64) -> Option<SnapshotFidelity> {
        match code {
            0 => Some(SnapshotFidelity::PointInTime),
            1 => Some(SnapshotFidelity::Materialized),
            _ => None,
        }
    }
}

/// A forked, streamable copy of one engine instance, produced by
/// [`KvsEngine::snapshot_for_backup`] while the owning worker holds the
/// shard quiesced. The cursor is drained on a background streamer
/// thread after the worker resumes serving traffic, so it must not
/// borrow the engine mutably or block its writers.
pub struct BackupSource {
    /// What the cursor's view is pinned to.
    pub fidelity: SnapshotFidelity,
    /// Streams every live entry in key order.
    pub cursor: Box<dyn NativeCursor>,
}

/// A [`NativeCursor`] over an already-materialized entry list (the
/// default backup source for engines without snapshot machinery).
pub struct VecCursor {
    entries: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
}

impl VecCursor {
    /// Wraps `entries` (which must already be in key order).
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> VecCursor {
        VecCursor {
            entries: entries.into_iter(),
        }
    }
}

impl NativeCursor for VecCursor {
    fn next_chunk(&mut self, limit: usize, max_bytes: usize) -> Result<ScanChunk> {
        let limit = limit.max(1);
        let max_bytes = max_bytes.max(1);
        let mut entries = Vec::new();
        let mut bytes = 0usize;
        while entries.len() < limit && bytes < max_bytes {
            match self.entries.next() {
                Some((k, v)) => {
                    bytes = bytes.saturating_add(k.len() + v.len());
                    entries.push((k, v));
                }
                None => break,
            }
        }
        let done = self.entries.as_slice().is_empty();
        Ok(ScanChunk { entries, done })
    }
}

/// The smallest key strictly greater than `key` (append a zero byte).
fn successor(key: &[u8]) -> Vec<u8> {
    let mut s = Vec::with_capacity(key.len() + 1);
    s.extend_from_slice(key);
    s.push(0);
    s
}

/// Truncates `entries` to the byte budget (always keeping at least one
/// entry so a single oversized value cannot stall the cursor). Returns
/// whether anything was cut.
fn apply_byte_budget(entries: &mut Vec<(Vec<u8>, Vec<u8>)>, max_bytes: usize) -> bool {
    let mut bytes = 0usize;
    for (i, (k, v)) in entries.iter().enumerate() {
        bytes = bytes.saturating_add(k.len() + v.len());
        if bytes >= max_bytes && i + 1 < entries.len() {
            entries.truncate(i + 1);
            return true;
        }
    }
    false
}

/// A key-value engine instance owned by one worker.
pub trait KvsEngine: Send + Sync + 'static {
    /// Inserts one pair.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Deletes one key.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Applies `ops` atomically, tagged with `gsn` (0 = untagged).
    /// Engines without [`Capabilities::batch_write`] may return
    /// [`Error::Unsupported`].
    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()>;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Batched point lookups; the default loops over [`KvsEngine::get`].
    fn multiget(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Up to `count` entries with keys `>= start`, in order.
    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Entries in `[begin, end)`, in order.
    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Opens a streaming cursor over keys in `[start, end)` (open-ended
    /// when `end` is `None`). Engines with
    /// [`Capabilities::native_cursor`] should return a snapshot-pinned
    /// [`ScanCursor::Native`]; the default is resume-from-last-key
    /// emulation over [`KvsEngine::scan`].
    fn open_cursor(&self, start: &[u8], end: Option<&[u8]>) -> Result<ScanCursor> {
        Ok(ScanCursor::emulated(start, end))
    }

    /// Pulls the next chunk (at most `limit` entries / `max_bytes`
    /// payload bytes, both clamped to ≥ 1) from a cursor previously
    /// returned by [`KvsEngine::open_cursor`] on the same instance.
    fn scan_chunk(
        &self,
        cursor: &mut ScanCursor,
        limit: usize,
        max_bytes: usize,
    ) -> Result<ScanChunk> {
        let limit = limit.max(1);
        let max_bytes = max_bytes.max(1);
        match cursor {
            ScanCursor::Native(c) => c.next_chunk(limit, max_bytes),
            ScanCursor::Emulated { next, end, done } => {
                if *done {
                    return Ok(ScanChunk {
                        entries: Vec::new(),
                        done: true,
                    });
                }
                let mut entries = self.scan(next, limit)?;
                let mut finished = entries.len() < limit;
                if let Some(end) = end.as_deref() {
                    if let Some(cut) = entries.iter().position(|(k, _)| k.as_slice() >= end) {
                        entries.truncate(cut);
                        finished = true;
                    }
                }
                if apply_byte_budget(&mut entries, max_bytes) {
                    finished = false;
                }
                if let Some((k, _)) = entries.last() {
                    *next = successor(k);
                }
                *done = finished;
                Ok(ScanChunk {
                    entries,
                    done: finished,
                })
            }
        }
    }

    /// The engine's fast paths.
    fn capabilities(&self) -> Capabilities;

    /// Durability barrier for everything written so far.
    fn sync(&self) -> Result<()>;

    /// Approximate resident memory in bytes.
    fn mem_usage(&self) -> usize;

    /// Engine-internal metrics, as `(name, value)` pairs using
    /// `engine_`-prefixed Prometheus-style names. The framework samples
    /// these into its metrics registry (labeled per instance) at snapshot
    /// time, so engine internals — e.g. lsmkv's WAL/MemTable/lock write
    /// breakdown — surface through the same exposition as framework
    /// metrics. The default is no metrics.
    fn engine_metrics(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Cumulative phase clocks for trace attribution
    /// ([`EnginePhases`]); the default reports no breakdown.
    fn phase_clocks(&self) -> EnginePhases {
        EnginePhases::default()
    }

    /// Subscribes the flight recorder to this instance's background-job
    /// events. The default (engines without background jobs, or without
    /// the plumbing) never delivers anything.
    fn install_event_hook(&self, _hook: EngineEventHook) {}

    /// Forks a streamable copy of the whole instance for an online
    /// backup. Called by the owning worker while the shard is quiesced
    /// (no other thread touches this instance during the call), so the
    /// view is consistent either way; the difference is cost. Engines
    /// with real snapshots return a [`SnapshotFidelity::PointInTime`]
    /// source whose fork is O(1) and whose streaming happens later on
    /// the backup thread. The default copies every entry eagerly through
    /// [`KvsEngine::scan`] — [`SnapshotFidelity::Materialized`], an
    /// O(data) pause on the frozen shard.
    fn snapshot_for_backup(&self) -> Result<BackupSource> {
        let mut entries = Vec::new();
        let mut next: Vec<u8> = Vec::new();
        loop {
            let chunk = self.scan(&next, 1024)?;
            let full = chunk.len() == 1024;
            entries.extend(chunk);
            if !full {
                break;
            }
            let (last, _) = entries.last().expect("full chunk is non-empty");
            next = successor(last);
        }
        Ok(BackupSource {
            fidelity: SnapshotFidelity::Materialized,
            cursor: Box::new(VecCursor::new(entries)),
        })
    }
}

/// Opens engine instances, one per worker.
pub trait EngineFactory: Send + Sync + 'static {
    /// The engine type this factory produces.
    type Engine: KvsEngine;

    /// Opens (or recovers) the instance stored in `dir`. `filter`, when
    /// present, suppresses replay of WAL batches whose GSN it rejects
    /// (p2KVS transaction rollback).
    fn open(&self, dir: &Path, filter: Option<GsnFilter>) -> Result<Self::Engine>;

    /// Opens the instance with a device submission-queue hint: the
    /// shard's WAL/flush traffic should ride queue `io_queue` of a
    /// multi-queue env (DESIGN.md §13). Factories whose engine has no
    /// placement control fall back to [`EngineFactory::open`]; the hint
    /// is advisory, never a correctness requirement.
    fn open_on(
        &self,
        dir: &Path,
        filter: Option<GsnFilter>,
        io_queue: Option<usize>,
    ) -> Result<Self::Engine> {
        let _ = io_queue;
        self.open(dir, filter)
    }

    /// The environment instances live in (the framework stores its
    /// transaction log beside them).
    fn env(&self) -> p2kvs_storage::EnvRef;
}

// ---------------------------------------------------------------------
// lsmkv adapter (RocksDB / LevelDB / PebblesDB modes)
// ---------------------------------------------------------------------

/// Factory for [`lsmkv::Db`] instances sharing an options template.
pub struct LsmFactory {
    template: lsmkv::Options,
}

impl LsmFactory {
    /// Creates a factory cloning `template` per instance.
    pub fn new(template: lsmkv::Options) -> LsmFactory {
        LsmFactory { template }
    }

    /// The options template.
    pub fn options(&self) -> &lsmkv::Options {
        &self.template
    }
}

impl EngineFactory for LsmFactory {
    type Engine = lsmkv::Db;

    fn open(&self, dir: &Path, filter: Option<GsnFilter>) -> Result<lsmkv::Db> {
        self.open_on(dir, filter, self.template.io_queue)
    }

    fn open_on(
        &self,
        dir: &Path,
        filter: Option<GsnFilter>,
        io_queue: Option<usize>,
    ) -> Result<lsmkv::Db> {
        let filter = filter.map(|f| -> lsmkv::db::RecoveryFilter { Arc::new(move |gsn| f(gsn)) });
        let mut opts = self.template.clone();
        opts.io_queue = io_queue;
        Ok(lsmkv::Db::open_with_recovery_filter(opts, dir, filter)?)
    }

    fn env(&self) -> p2kvs_storage::EnvRef {
        self.template.env.clone()
    }
}

impl KvsEngine for lsmkv::Db {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Ok(lsmkv::Db::put(
            self,
            &lsmkv::WriteOptions::default(),
            key,
            value,
        )?)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        Ok(lsmkv::Db::delete(
            self,
            &lsmkv::WriteOptions::default(),
            key,
        )?)
    }

    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()> {
        let mut batch = lsmkv::WriteBatch::new();
        for op in ops {
            match op {
                WriteOp::Put { key, value } => batch.put(key, value),
                WriteOp::Delete { key } => batch.delete(key),
            }
        }
        batch.set_gsn(gsn);
        // Transactional sub-batches are synced so a persisted commit
        // record implies durable data (§4.5).
        let wo = lsmkv::WriteOptions {
            sync: gsn != 0,
            ..lsmkv::WriteOptions::default()
        };
        Ok(lsmkv::Db::write(self, &wo, batch)?)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(lsmkv::Db::get(self, key)?)
    }

    fn multiget(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>> {
        Ok(lsmkv::Db::multiget(self, keys)?)
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(lsmkv::Db::scan(self, start, count)?)
    }

    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(lsmkv::Db::range(self, begin, end)?)
    }

    fn open_cursor(&self, start: &[u8], end: Option<&[u8]>) -> Result<ScanCursor> {
        let snap = self.snapshot();
        let opts = lsmkv::ReadOptions {
            snapshot: Some(snap.sequence()),
            ..lsmkv::ReadOptions::default()
        };
        let mut iter = self.iter_with(&opts)?;
        iter.seek(start);
        Ok(ScanCursor::Native(Box::new(LsmCursor {
            _snap: snap,
            iter,
            end: end.map(<[u8]>::to_vec),
        })))
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            batch_write: true,
            multiget: self.options().has_multiget,
            native_cursor: true,
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(self.sync_wal()?)
    }

    fn mem_usage(&self) -> usize {
        self.approximate_memory_usage()
    }

    fn engine_metrics(&self) -> Vec<(String, f64)> {
        self.stats().metrics()
    }

    fn phase_clocks(&self) -> EnginePhases {
        let stats = self.stats();
        EnginePhases {
            wal_ns: stats.breakdown.wal.sum_ns(),
            memtable_ns: stats.breakdown.memtable.sum_ns(),
            read_ns: stats.read_path.sum_ns(),
        }
    }

    fn snapshot_for_backup(&self) -> Result<BackupSource> {
        // Same machinery as open_cursor: a registered snapshot pins the
        // visible versions against compaction GC, the merged iterator
        // pins the memtables and table files, and the pair moves to the
        // backup streamer thread while writers continue past the fork.
        let snap = self.snapshot();
        let opts = lsmkv::ReadOptions {
            snapshot: Some(snap.sequence()),
            ..lsmkv::ReadOptions::default()
        };
        let mut iter = self.iter_with(&opts)?;
        iter.seek(b"");
        Ok(BackupSource {
            fidelity: SnapshotFidelity::PointInTime,
            cursor: Box::new(LsmCursor {
                _snap: snap,
                iter,
                end: None,
            }),
        })
    }

    fn install_event_hook(&self, hook: EngineEventHook) {
        lsmkv::Db::install_event_hook(
            self,
            Arc::new(move |ev| {
                let mapped = match *ev {
                    lsmkv::DbEvent::FlushStart { bytes } => EngineEvent::FlushStart { bytes },
                    lsmkv::DbEvent::FlushFinish { bytes, ok } => EngineEvent::FlushFinish {
                        bytes: if ok { bytes } else { 0 },
                    },
                    lsmkv::DbEvent::CompactionStart { level, input_bytes } => {
                        EngineEvent::CompactionStart {
                            level,
                            bytes: input_bytes,
                        }
                    }
                    lsmkv::DbEvent::CompactionFinish {
                        level,
                        output_bytes,
                        ok,
                    } => EngineEvent::CompactionFinish {
                        level,
                        bytes: if ok { output_bytes } else { 0 },
                    },
                };
                hook(&mapped);
            }),
        );
    }
}

/// lsmkv's native cursor: a registered snapshot (protects visible
/// versions from compaction GC) plus a merged iterator pinned to it (the
/// iterator itself keeps the memtables and table files alive). A scan of
/// any length therefore sees exactly the store as of `open_cursor`,
/// while interleaved writes proceed untouched.
struct LsmCursor {
    _snap: lsmkv::Snapshot,
    iter: lsmkv::DbIterator,
    end: Option<Vec<u8>>,
}

impl NativeCursor for LsmCursor {
    fn next_chunk(&mut self, limit: usize, max_bytes: usize) -> Result<ScanChunk> {
        let mut entries = Vec::new();
        let mut bytes = 0usize;
        let mut bounded = false;
        while self.iter.valid() && entries.len() < limit && bytes < max_bytes {
            let key = self.iter.key();
            if let Some(end) = &self.end {
                if key >= end.as_slice() {
                    bounded = true;
                    break;
                }
            }
            bytes = bytes.saturating_add(key.len() + self.iter.value().len());
            entries.push((key.to_vec(), self.iter.value().to_vec()));
            self.iter.next();
        }
        // A child read error makes the merged iterator go invalid, which
        // otherwise looks like clean exhaustion — surface it instead.
        self.iter.status()?;
        Ok(ScanChunk {
            done: bounded || !self.iter.valid(),
            entries,
        })
    }
}

// ---------------------------------------------------------------------
// wtiger adapter (WiredTiger stand-in: no batch write)
// ---------------------------------------------------------------------

/// Factory for [`wtiger::WtDb`] instances sharing an options template.
pub struct WtFactory {
    template: wtiger::WtOptions,
}

impl WtFactory {
    /// Creates a factory cloning `template` per instance.
    pub fn new(template: wtiger::WtOptions) -> WtFactory {
        WtFactory { template }
    }
}

impl EngineFactory for WtFactory {
    type Engine = wtiger::WtDb;

    fn open(&self, dir: &Path, _filter: Option<GsnFilter>) -> Result<wtiger::WtDb> {
        // WiredTiger has no batch-write, hence no GSN tagging: the filter
        // is inapplicable (transactions are unsupported on this engine).
        Ok(wtiger::WtDb::open(self.template.clone(), dir)?)
    }

    fn env(&self) -> p2kvs_storage::EnvRef {
        self.template.env.clone()
    }
}

impl KvsEngine for wtiger::WtDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Ok(wtiger::WtDb::put(self, key, value)?)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        wtiger::WtDb::delete(self, key)?;
        Ok(())
    }

    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()> {
        if gsn != 0 {
            return Err(Error::Unsupported(
                "transactions on an engine without batch-write",
            ));
        }
        // No batch API: apply writes one by one (OBM-write disabled, §4.6).
        for op in ops {
            match op {
                WriteOp::Put { key, value } => wtiger::WtDb::put(self, key, value)?,
                WriteOp::Delete { key } => {
                    wtiger::WtDb::delete(self, key)?;
                }
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(wtiger::WtDb::get(self, key)?)
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(wtiger::WtDb::scan(self, start, count)?)
    }

    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // No bounded-range API: stream forward in chunks until `end`
        // instead of materializing the whole tail of the key space.
        let mut cursor = ScanCursor::emulated(begin, Some(end));
        let mut out = Vec::new();
        loop {
            let chunk = self.scan_chunk(&mut cursor, 512, usize::MAX)?;
            out.extend(chunk.entries);
            if chunk.done {
                return Ok(out);
            }
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            batch_write: false,
            multiget: false,
            // No snapshot machinery: chunked scans run on the emulated
            // resume-from-last-key cursor (monotonic, not snapshot-
            // consistent — see DESIGN.md §8).
            native_cursor: false,
        }
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn mem_usage(&self) -> usize {
        wtiger::WtDb::mem_usage(self)
    }

    fn snapshot_for_backup(&self) -> Result<BackupSource> {
        // wtiger forks cheaply despite having no MVCC: the snapshot
        // clones the key → journal-offset index under its latch and
        // reads values lazily from the append-only journal, whose
        // already-written bytes never change.
        Ok(BackupSource {
            fidelity: SnapshotFidelity::PointInTime,
            cursor: Box::new(WtSnapCursor(wtiger::WtDb::snapshot(self)?)),
        })
    }
}

/// Adapts [`wtiger::WtSnapshot`] batches to the [`NativeCursor`] chunk
/// protocol for backup streaming.
struct WtSnapCursor(wtiger::WtSnapshot);

impl NativeCursor for WtSnapCursor {
    fn next_chunk(&mut self, limit: usize, max_bytes: usize) -> Result<ScanChunk> {
        let (entries, done) = self.0.next_batch(limit, max_bytes)?;
        Ok(ScanChunk { entries, done })
    }
}

// ---------------------------------------------------------------------
// kvell adapter (KVell stand-in: share-nothing B-tree-indexed slabs)
// ---------------------------------------------------------------------

/// Factory for [`kvell::KvellDb`] instances sharing an options template.
///
/// KVell is itself internally sharded; under p2KVS each framework worker
/// owns one single-worker KVell instance so the two partitioning layers
/// do not fight over threads.
pub struct KvellFactory {
    template: kvell::KvellOptions,
}

impl KvellFactory {
    /// Creates a factory cloning `template` per instance.
    pub fn new(template: kvell::KvellOptions) -> KvellFactory {
        KvellFactory { template }
    }
}

impl EngineFactory for KvellFactory {
    type Engine = kvell::KvellDb;

    fn open(&self, dir: &Path, _filter: Option<GsnFilter>) -> Result<kvell::KvellDb> {
        // Like WiredTiger, KVell has no batch-write and thus no GSN
        // tagging: the recovery filter is inapplicable.
        Ok(kvell::KvellDb::open(self.template.clone(), dir)?)
    }

    fn env(&self) -> p2kvs_storage::EnvRef {
        self.template.env.clone()
    }
}

impl KvsEngine for kvell::KvellDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        Ok(kvell::KvellDb::put(self, key, value)?)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        kvell::KvellDb::delete(self, key)?;
        Ok(())
    }

    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> Result<()> {
        if gsn != 0 {
            return Err(Error::Unsupported(
                "transactions on an engine without batch-write",
            ));
        }
        for op in ops {
            match op {
                WriteOp::Put { key, value } => kvell::KvellDb::put(self, key, value)?,
                WriteOp::Delete { key } => {
                    kvell::KvellDb::delete(self, key)?;
                }
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(kvell::KvellDb::get(self, key)?)
    }

    fn scan(&self, start: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(kvell::KvellDb::scan(self, start, count)?)
    }

    fn range(&self, begin: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // No bounded-range API: stream forward in chunks until `end`, so
        // a narrow range does not read the whole tail of the key space.
        let mut cursor = ScanCursor::emulated(begin, Some(end));
        let mut out = Vec::new();
        loop {
            let chunk = self.scan_chunk(&mut cursor, 512, usize::MAX)?;
            out.extend(chunk.entries);
            if chunk.done {
                return Ok(out);
            }
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            batch_write: false,
            multiget: false,
            native_cursor: false,
        }
    }

    fn sync(&self) -> Result<()> {
        // KVell-style slabs write through the environment on every update;
        // there is no separate durability barrier to issue.
        Ok(())
    }

    fn mem_usage(&self) -> usize {
        kvell::KvellDb::mem_usage(self).unwrap_or(0)
    }

    fn snapshot_for_backup(&self) -> Result<BackupSource> {
        // No snapshot machinery: materialize eagerly while the calling
        // worker holds the shard quiesced. `dump` is one full-index pass
        // per internal KVell worker, cheaper than the default's
        // paginated re-seeks through the request channels.
        Ok(BackupSource {
            fidelity: SnapshotFidelity::Materialized,
            cursor: Box::new(VecCursor::new(kvell::KvellDb::dump(self)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2kvs_storage::MemEnv;

    #[test]
    fn lsm_adapter_roundtrip() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let db = factory.open(Path::new("e1"), None).unwrap();
        KvsEngine::put(&db, b"k", b"v").unwrap();
        assert_eq!(KvsEngine::get(&db, b"k").unwrap().unwrap(), b"v");
        db.write_batch(
            &[
                WriteOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                WriteOp::Delete { key: b"k".to_vec() },
            ],
            0,
        )
        .unwrap();
        assert_eq!(KvsEngine::get(&db, b"k").unwrap(), None);
        let caps = db.capabilities();
        assert!(caps.batch_write && caps.multiget);
        let got = KvsEngine::multiget(&db, &[b"a".to_vec(), b"zz".to_vec()]).unwrap();
        assert_eq!(got, vec![Some(b"1".to_vec()), None]);
    }

    #[test]
    fn leveldb_mode_reports_no_multiget() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let factory = LsmFactory::new(lsmkv::Options::leveldb_like(env));
        let db = factory.open(Path::new("e2"), None).unwrap();
        assert!(!db.capabilities().multiget);
        assert!(db.capabilities().batch_write);
    }

    #[test]
    fn wtiger_adapter_roundtrip() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let factory = WtFactory::new(wtiger::WtOptions::new(env));
        let db = factory.open(Path::new("e3"), None).unwrap();
        let caps = db.capabilities();
        assert!(!caps.batch_write && !caps.multiget);
        KvsEngine::put(&db, b"b", b"2").unwrap();
        KvsEngine::put(&db, b"a", b"1").unwrap();
        // Batch falls back to sequential writes.
        db.write_batch(
            &[WriteOp::Put {
                key: b"c".to_vec(),
                value: b"3".to_vec(),
            }],
            0,
        )
        .unwrap();
        assert!(db.write_batch(&[], 7).is_err(), "GSN batches unsupported");
        assert_eq!(
            KvsEngine::range(&db, b"a", b"c").unwrap(),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
    }

    /// Drains a cursor fully in `limit`-sized chunks, counting chunks.
    fn drain_cursor<E: KvsEngine>(
        engine: &E,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> (Vec<(Vec<u8>, Vec<u8>)>, usize) {
        let mut cursor = engine.open_cursor(start, end).unwrap();
        let mut out = Vec::new();
        let mut chunks = 0;
        loop {
            let chunk = engine.scan_chunk(&mut cursor, limit, usize::MAX).unwrap();
            chunks += 1;
            out.extend(chunk.entries);
            if chunk.done {
                return (out, chunks);
            }
        }
    }

    #[test]
    fn emulated_cursor_streams_in_chunks_and_matches_scan() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let db = WtFactory::new(wtiger::WtOptions::new(env))
            .open(Path::new("cur1"), None)
            .unwrap();
        for i in 0..50 {
            KvsEngine::put(&db, format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        let (all, chunks) = drain_cursor(&db, b"", None, 7);
        assert_eq!(all, KvsEngine::scan(&db, b"", 100).unwrap());
        assert!(chunks >= 50 / 7, "50 entries in 7-entry chunks");
        // Bounded cursor = RANGE.
        let (bounded, _) = drain_cursor(&db, b"k010", Some(b"k020"), 3);
        assert_eq!(bounded, KvsEngine::range(&db, b"k010", b"k020").unwrap());
        assert_eq!(bounded.len(), 10);
    }

    #[test]
    fn emulated_cursor_byte_budget_keeps_progress() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let db = WtFactory::new(wtiger::WtOptions::new(env))
            .open(Path::new("cur2"), None)
            .unwrap();
        for i in 0..10 {
            KvsEngine::put(&db, format!("k{i}").as_bytes(), &vec![b'x'; 100]).unwrap();
        }
        let mut cursor = db.open_cursor(b"", None).unwrap();
        // Budget below one entry: each chunk still returns exactly one.
        let mut total = 0;
        loop {
            let chunk = db.scan_chunk(&mut cursor, 100, 10).unwrap();
            assert!(chunk.done || chunk.entries.len() == 1);
            total += chunk.entries.len();
            if chunk.done {
                break;
            }
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn lsm_native_cursor_is_snapshot_consistent() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let db = factory.open(Path::new("cur3"), None).unwrap();
        for i in 0..20 {
            KvsEngine::put(&db, format!("k{i:02}").as_bytes(), b"old").unwrap();
        }
        assert!(db.capabilities().native_cursor);
        let mut cursor = db.open_cursor(b"", None).unwrap();
        assert!(matches!(cursor, ScanCursor::Native(_)));
        let first = db.scan_chunk(&mut cursor, 5, usize::MAX).unwrap();
        assert_eq!(first.entries.len(), 5);
        // Writes made mid-scan are invisible: overwrites, deletes and
        // fresh keys all happen after the pinned sequence.
        KvsEngine::put(&db, b"k07", b"new").unwrap();
        KvsEngine::delete(&db, b"k08").unwrap();
        KvsEngine::put(&db, b"k05a", b"inserted").unwrap();
        let mut rest = Vec::new();
        loop {
            let chunk = db.scan_chunk(&mut cursor, 5, usize::MAX).unwrap();
            rest.extend(chunk.entries);
            if chunk.done {
                break;
            }
        }
        assert_eq!(rest.len(), 15, "exactly the remaining pre-snapshot keys");
        assert!(rest.iter().all(|(_, v)| v == b"old"));
        assert!(!rest.iter().any(|(k, _)| k == b"k05a"));
        // A fresh scan sees the new state.
        let now = KvsEngine::scan(&db, b"", 100).unwrap();
        assert_eq!(now.len(), 20, "one insert, one delete");
        assert!(now.iter().any(|(k, v)| k == b"k07" && v == b"new"));
    }

    #[test]
    fn lsm_cursor_survives_flush_and_compaction_interleaving() {
        let factory = LsmFactory::new(lsmkv::Options::for_test());
        let db = factory.open(Path::new("cur4"), None).unwrap();
        for i in 0..200 {
            KvsEngine::put(&db, format!("k{i:04}").as_bytes(), &vec![b'v'; 64]).unwrap();
        }
        let mut cursor = db.open_cursor(b"", None).unwrap();
        let mut seen = 0;
        let mut round = 0;
        loop {
            let chunk = db.scan_chunk(&mut cursor, 16, usize::MAX).unwrap();
            seen += chunk.entries.len();
            if chunk.done {
                break;
            }
            // Churn the tree between chunks: overwrites plus a flush.
            for i in 0..50 {
                KvsEngine::put(&db, format!("k{i:04}").as_bytes(), &vec![b'w'; 64]).unwrap();
            }
            if round == 2 {
                db.flush().unwrap();
            }
            round += 1;
        }
        assert_eq!(seen, 200, "pinned snapshot view is complete");
    }

    #[test]
    fn kvell_adapter_roundtrip() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let mut opts = kvell::KvellOptions::new(env);
        opts.workers = 1;
        let factory = KvellFactory::new(opts);
        let db = factory.open(Path::new("e5"), None).unwrap();
        let caps = db.capabilities();
        assert!(!caps.batch_write && !caps.multiget && !caps.native_cursor);
        KvsEngine::put(&db, b"b", b"2").unwrap();
        KvsEngine::put(&db, b"a", b"1").unwrap();
        KvsEngine::put(&db, b"c", b"3").unwrap();
        assert_eq!(KvsEngine::get(&db, b"b").unwrap().unwrap(), b"2");
        assert!(db.write_batch(&[], 7).is_err(), "GSN batches unsupported");
        assert_eq!(
            KvsEngine::range(&db, b"a", b"c").unwrap(),
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"b".to_vec(), b"2".to_vec())
            ]
        );
        let (all, _) = drain_cursor(&db, b"", None, 2);
        assert_eq!(all.len(), 3);
    }

    /// Drains a backup source fully, asserting key order.
    fn drain_backup(mut src: BackupSource) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        loop {
            let chunk = src.cursor.next_chunk(16, usize::MAX).unwrap();
            out.extend(chunk.entries);
            if chunk.done {
                assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "key order");
                return out;
            }
        }
    }

    #[test]
    fn lsm_backup_snapshot_excludes_later_writes() {
        let db = LsmFactory::new(lsmkv::Options::for_test())
            .open(Path::new("bk1"), None)
            .unwrap();
        for i in 0..30 {
            KvsEngine::put(&db, format!("k{i:02}").as_bytes(), b"old").unwrap();
        }
        let src = db.snapshot_for_backup().unwrap();
        assert_eq!(src.fidelity, SnapshotFidelity::PointInTime);
        // Post-fork churn must be invisible to the stream.
        KvsEngine::put(&db, b"k00", b"new").unwrap();
        KvsEngine::delete(&db, b"k10").unwrap();
        KvsEngine::put(&db, b"later", b"x").unwrap();
        let all = drain_backup(src);
        assert_eq!(all.len(), 30);
        assert!(all.iter().all(|(_, v)| v == b"old"));
    }

    #[test]
    fn wtiger_backup_snapshot_excludes_later_writes() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let db = WtFactory::new(wtiger::WtOptions::new(env))
            .open(Path::new("bk2"), None)
            .unwrap();
        for i in 0..30 {
            KvsEngine::put(&db, format!("k{i:02}").as_bytes(), b"old").unwrap();
        }
        let src = db.snapshot_for_backup().unwrap();
        assert_eq!(src.fidelity, SnapshotFidelity::PointInTime);
        KvsEngine::put(&db, b"k00", b"new").unwrap();
        KvsEngine::put(&db, b"later", b"x").unwrap();
        let all = drain_backup(src);
        assert_eq!(all.len(), 30);
        assert!(all.iter().all(|(_, v)| v == b"old"));
    }

    #[test]
    fn kvell_backup_snapshot_materializes_at_fork() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let mut opts = kvell::KvellOptions::new(env);
        opts.workers = 2;
        let db = KvellFactory::new(opts).open(Path::new("bk3"), None).unwrap();
        for i in 0..30 {
            KvsEngine::put(&db, format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        let src = db.snapshot_for_backup().unwrap();
        assert_eq!(src.fidelity, SnapshotFidelity::Materialized);
        // Materialized at fork: later writes are invisible by construction.
        KvsEngine::put(&db, b"later", b"x").unwrap();
        assert_eq!(drain_backup(src).len(), 30);
    }

    #[test]
    fn fidelity_codes_roundtrip() {
        for f in [SnapshotFidelity::PointInTime, SnapshotFidelity::Materialized] {
            assert_eq!(SnapshotFidelity::from_code(f.code()), Some(f));
        }
        assert_eq!(SnapshotFidelity::from_code(7), None);
    }

    #[test]
    fn lsm_event_hook_and_phase_clocks_surface() {
        use std::sync::Mutex;
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let mut opts = lsmkv::Options::rocksdb_like(env);
        opts.memtable_size = 1 << 10; // flush after ~a dozen writes
        let db = LsmFactory::new(opts).open(Path::new("ev1"), None).unwrap();
        let seen: Arc<Mutex<Vec<EngineEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        KvsEngine::install_event_hook(&db, Arc::new(move |ev| sink.lock().unwrap().push(*ev)));
        for i in 0..64 {
            KvsEngine::put(&db, format!("k{i:03}").as_bytes(), &vec![b'v'; 64]).unwrap();
        }
        db.flush().unwrap();
        KvsEngine::get(&db, b"k000").unwrap();
        let events = seen.lock().unwrap().clone();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, EngineEvent::FlushStart { bytes } if *bytes > 0)),
            "no FlushStart in {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, EngineEvent::FlushFinish { bytes } if *bytes > 0)),
            "no FlushFinish in {events:?}"
        );
        let phases = db.phase_clocks();
        assert!(phases.wal_ns > 0, "WAL clock advanced");
        assert!(phases.memtable_ns > 0, "memtable clock advanced");
        assert!(phases.read_ns > 0, "read clock advanced");
    }

    #[test]
    fn lsm_recovery_filter_is_wired_through() {
        let env: p2kvs_storage::EnvRef = Arc::new(MemEnv::new());
        let opts = lsmkv::Options::rocksdb_like(env.clone());
        {
            let factory = LsmFactory::new(opts.clone());
            let db = factory.open(Path::new("e4"), None).unwrap();
            db.write_batch(
                &[WriteOp::Put {
                    key: b"x".to_vec(),
                    value: b"1".to_vec(),
                }],
                3,
            )
            .unwrap();
            db.write_batch(
                &[WriteOp::Put {
                    key: b"y".to_vec(),
                    value: b"2".to_vec(),
                }],
                9,
            )
            .unwrap();
            db.crash();
        }
        let factory = LsmFactory::new(opts);
        let filter: GsnFilter = Arc::new(|gsn| gsn <= 3);
        let db = factory.open(Path::new("e4"), Some(filter)).unwrap();
        assert_eq!(KvsEngine::get(&db, b"x").unwrap().unwrap(), b"1");
        assert_eq!(KvsEngine::get(&db, b"y").unwrap(), None);
    }
}
