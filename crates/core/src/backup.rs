//! GSN-consistent online backup: the freeze hub, the on-disk backup
//! format, and the restore-side readers (DESIGN.md §12).
//!
//! A backup is a *cut* of the store at a GSN horizon: the coordinator
//! freezes the transaction gate (no new GSNs, in-flight ones drained),
//! pushes one `Op::BackupFreeze` marker per shard through the ordinary
//! worker queues, and each owner forks an engine-level snapshot when the
//! marker is dequeued — provably behind every write acked before the
//! horizon and ahead of everything after it. The snapshots land here, in
//! the [`BackupHub`], and a background streamer drains them into the
//! backup directory while foreground traffic continues past the horizon.
//!
//! On-disk layout of a backup directory:
//!
//! ```text
//! shard-{i}.snap   length-prefixed (klen u32 LE | vlen u32 LE | key |
//!                  value) records in key order, one file per shard
//! FLIGHT.log       the source store's flight journal up to and
//!                  including the BackupComplete record — the backup is
//!                  self-describing evidence of how it was taken
//! MANIFEST         written (and synced) last: horizon, shard count, map
//!                  epoch, per-file entry/byte/CRC sums, and a
//!                  `complete` trailer. No trailer → the backup was
//!                  interrupted and restore rejects it.
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use p2kvs_obs::{Journal, JournalKind};
use p2kvs_storage::EnvRef;
use p2kvs_util::crc32c;
use parking_lot::Mutex;

use crate::engine::{BackupSource, SnapshotFidelity};
use crate::error::{Error, Result};

/// Manifest file name inside a backup directory.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST";
/// Flight-journal copy inside a backup directory (same name as the
/// store's own, so a restored directory recovers it unchanged).
pub(crate) const FLIGHT_FILE: &str = "FLIGHT.log";
/// Entry bound per cursor pull while streaming.
const STREAM_CHUNK_ENTRIES: usize = 512;
/// Payload-byte bound per cursor pull while streaming (1 MiB).
const STREAM_CHUNK_BYTES: usize = 1 << 20;

/// Per-shard snapshot file name.
pub(crate) fn snap_file(shard: u32) -> String {
    format!("shard-{shard}.snap")
}

/// The frozen snapshots of one in-flight backup, deposited by the
/// workers as each `BackupFreeze` marker executes.
pub(crate) struct FreezeSession {
    /// The backup's GSN horizon.
    pub horizon: u64,
    /// Forked engine snapshots, keyed by shard.
    pub frozen: HashMap<u32, BackupSource>,
}

/// Rendezvous between the backup coordinator and the workers: the
/// coordinator opens a session (at most one — backups serialize), each
/// worker deposits its shard's forked snapshot, and the coordinator
/// takes the full session for the streamer once every marker has acked.
#[derive(Default)]
pub(crate) struct BackupHub {
    session: Mutex<Option<FreezeSession>>,
}

impl BackupHub {
    /// Opens a freeze session at `horizon`. Fails if another backup is
    /// still collecting or streaming has not yet taken the session.
    pub fn open_session(&self, horizon: u64) -> Result<()> {
        let mut s = self.session.lock();
        if s.is_some() {
            return Err(Error::Backup("another backup is in flight".into()));
        }
        *s = Some(FreezeSession {
            horizon,
            frozen: HashMap::new(),
        });
        Ok(())
    }

    /// Deposits `shard`'s forked snapshot, returning the session horizon
    /// — or `None` for a stray marker with no open session (a crashed or
    /// failed coordinator): the caller drops the snapshot and still acks.
    pub fn deposit(&self, shard: u32, source: BackupSource) -> Option<u64> {
        let mut s = self.session.lock();
        let session = s.as_mut()?;
        session.frozen.insert(shard, source);
        Some(session.horizon)
    }

    /// Takes the session for streaming (or for teardown on error).
    pub fn take_session(&self) -> Option<FreezeSession> {
        self.session.lock().take()
    }
}

/// Per-shard file entry of a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardFileMeta {
    /// Shard index (also names the file).
    pub shard: u32,
    /// Entries in the file.
    pub entries: u64,
    /// File length in bytes.
    pub bytes: u64,
    /// CRC-32C of the whole file.
    pub crc: u32,
    /// How the snapshot was forked (evidence only; restore treats both
    /// fidelities identically).
    pub fidelity: SnapshotFidelity,
}

/// The backup manifest — written and synced last, so its presence (with
/// the `complete` trailer) certifies every other file in the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// GSN horizon of the cut.
    pub horizon: u64,
    /// Shard count of the source store (restore forces the same).
    pub shards: u32,
    /// Shard-map epoch frozen into the cut (migrations in flight at
    /// freeze time have either fully landed or not happened yet).
    pub map_epoch: u64,
    /// Flight-journal sequence as of the copy in this directory.
    pub journal_seq: u64,
    /// One entry per shard file.
    pub files: Vec<ShardFileMeta>,
}

impl Manifest {
    /// Renders the manifest, `complete` trailer included.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("p2kvs-backup 1\n");
        out.push_str(&format!("horizon {}\n", self.horizon));
        out.push_str(&format!("shards {}\n", self.shards));
        out.push_str(&format!("map_epoch {}\n", self.map_epoch));
        out.push_str(&format!("journal_seq {}\n", self.journal_seq));
        for f in &self.files {
            out.push_str(&format!(
                "shard {} {} {} {} {}\n",
                f.shard,
                f.entries,
                f.bytes,
                f.crc,
                f.fidelity.code()
            ));
        }
        out.push_str("complete\n");
        out
    }

    /// Parses a manifest, rejecting torn or incomplete ones.
    pub fn parse(data: &[u8]) -> Result<Manifest> {
        let bad = |msg: &str| Error::Backup(format!("MANIFEST: {msg}"));
        let text = std::str::from_utf8(data).map_err(|_| bad("not utf-8"))?;
        let mut lines = text.lines();
        if lines.next() != Some("p2kvs-backup 1") {
            return Err(bad("bad magic — not a p2kvs backup"));
        }
        let mut horizon = None;
        let mut shards = None;
        let mut map_epoch = None;
        let mut journal_seq = None;
        let mut files = Vec::new();
        let mut complete = false;
        for line in lines {
            let mut tok = line.split_ascii_whitespace();
            match tok.next() {
                Some("horizon") => horizon = tok.next().and_then(|v| v.parse().ok()),
                Some("shards") => shards = tok.next().and_then(|v| v.parse().ok()),
                Some("map_epoch") => map_epoch = tok.next().and_then(|v| v.parse().ok()),
                Some("journal_seq") => journal_seq = tok.next().and_then(|v| v.parse().ok()),
                Some("shard") => {
                    let mut field = || -> Result<u64> {
                        tok.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("malformed shard line"))
                    };
                    let (shard, entries, bytes, crc, fid) =
                        (field()?, field()?, field()?, field()?, field()?);
                    files.push(ShardFileMeta {
                        shard: shard as u32,
                        entries,
                        bytes,
                        crc: crc as u32,
                        fidelity: SnapshotFidelity::from_code(fid)
                            .ok_or_else(|| bad("unknown snapshot fidelity"))?,
                    });
                }
                Some("complete") => complete = true,
                _ => return Err(bad("unrecognized line")),
            }
        }
        if !complete {
            return Err(bad(
                "missing `complete` trailer — the backup was interrupted mid-write",
            ));
        }
        let manifest = Manifest {
            horizon: horizon.ok_or_else(|| bad("missing horizon"))?,
            shards: shards.ok_or_else(|| bad("missing shard count"))?,
            map_epoch: map_epoch.ok_or_else(|| bad("missing map_epoch"))?,
            journal_seq: journal_seq.ok_or_else(|| bad("missing journal_seq"))?,
            files,
        };
        if manifest.files.len() != manifest.shards as usize {
            return Err(bad("shard-file list does not cover every shard"));
        }
        Ok(manifest)
    }
}

/// Streams one shard's snapshot cursor into `dir/shard-{i}.snap`,
/// returning its manifest entry.
fn stream_shard(
    env: &EnvRef,
    dir: &Path,
    shard: u32,
    mut source: BackupSource,
) -> Result<ShardFileMeta> {
    let mut file = env.new_writable(&dir.join(snap_file(shard)))?;
    let mut crc = 0u32;
    let (mut entries, mut bytes) = (0u64, 0u64);
    let mut buf = Vec::new();
    loop {
        let chunk = source
            .cursor
            .next_chunk(STREAM_CHUNK_ENTRIES, STREAM_CHUNK_BYTES)?;
        buf.clear();
        for (k, v) in &chunk.entries {
            buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(k);
            buf.extend_from_slice(v);
        }
        entries += chunk.entries.len() as u64;
        bytes += buf.len() as u64;
        crc = crc32c::extend(crc, &buf);
        file.append(&buf)?;
        if chunk.done {
            break;
        }
    }
    file.sync()?;
    Ok(ShardFileMeta {
        shard,
        entries,
        bytes,
        crc,
        fidelity: source.fidelity,
    })
}

/// Decodes a snap file after validating it against its manifest entry.
fn decode_snap(meta: &ShardFileMeta, data: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let bad = |msg: String| Error::Backup(format!("{}: {msg}", snap_file(meta.shard)));
    if data.len() as u64 != meta.bytes {
        return Err(bad(format!(
            "truncated: {} bytes on disk, manifest says {}",
            data.len(),
            meta.bytes
        )));
    }
    if crc32c::crc32c(data) != meta.crc {
        return Err(bad("checksum mismatch — the file is corrupt".into()));
    }
    let mut entries = Vec::with_capacity(meta.entries as usize);
    let mut off = 0usize;
    while off < data.len() {
        if off + 8 > data.len() {
            return Err(bad("torn record header".into()));
        }
        let klen = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")) as usize;
        let vlen = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes")) as usize;
        off += 8;
        if off + klen + vlen > data.len() {
            return Err(bad("torn record payload".into()));
        }
        entries.push((
            data[off..off + klen].to_vec(),
            data[off + klen..off + klen + vlen].to_vec(),
        ));
        off += klen + vlen;
    }
    if entries.len() as u64 != meta.entries {
        return Err(bad(format!(
            "{} records decoded, manifest says {}",
            entries.len(),
            meta.entries
        )));
    }
    Ok(entries)
}

/// Streams a taken freeze session into `dir`. Shard files first, then
/// the `BackupComplete` journal record (durable — the source journal is
/// synced before it is copied here), then the journal copy, and the
/// manifest last: a crash at any point leaves a directory
/// [`read_backup`] rejects, never a silently short restore.
pub(crate) fn stream_session(
    env: &EnvRef,
    store_dir: &Path,
    dir: &Path,
    mut session: FreezeSession,
    map_epoch: u64,
    journal: Option<&Journal>,
) -> Result<BackupReport> {
    env.create_dir_all(dir)?;
    let shards = session.frozen.len() as u32;
    let mut files = Vec::with_capacity(shards as usize);
    for shard in 0..shards {
        let source = session.frozen.remove(&shard).ok_or_else(|| {
            Error::Backup(format!("shard {shard} deposited no snapshot"))
        })?;
        files.push(stream_shard(env, dir, shard, source)?);
    }
    let entries: u64 = files.iter().map(|f| f.entries).sum();
    let bytes: u64 = files.iter().map(|f| f.bytes).sum();
    if let Some(j) = journal {
        j.record(
            JournalKind::BackupComplete,
            shards as u64,
            entries,
            bytes,
            session.horizon,
        );
    }
    // Copy the flight journal *after* BackupComplete so the copy carries
    // the backup's own evidence, and *before* the manifest so the
    // manifest's journal_seq certifies the copy.
    let src_flight = store_dir.join(FLIGHT_FILE);
    if journal.is_some() && env.exists(&src_flight) {
        let data = p2kvs_storage::env::read_all(&**env, &src_flight)?;
        p2kvs_storage::env::write_all(&**env, &dir.join(FLIGHT_FILE), &data)?;
    }
    let manifest = Manifest {
        horizon: session.horizon,
        shards,
        map_epoch,
        journal_seq: journal.map(|j| j.last_seq()).unwrap_or(0),
        files,
    };
    p2kvs_storage::env::write_all(
        &**env,
        &dir.join(MANIFEST_FILE),
        manifest.encode().as_bytes(),
    )?;
    Ok(BackupReport {
        horizon: manifest.horizon,
        shards,
        entries,
        bytes,
        dir: dir.to_path_buf(),
    })
}

/// Reads and fully validates a backup directory: manifest trailer,
/// per-file length, CRC, and record counts — all before the caller
/// touches any destination state. Returns the manifest and each shard's
/// entries (indexed by shard).
pub(crate) fn read_backup(
    env: &EnvRef,
    dir: &Path,
) -> Result<(Manifest, Vec<Vec<(Vec<u8>, Vec<u8>)>>)> {
    let manifest_path = dir.join(MANIFEST_FILE);
    if !env.exists(&manifest_path) {
        return Err(Error::Backup(format!(
            "{}: no MANIFEST — not a backup directory, or the backup never completed",
            dir.display()
        )));
    }
    let manifest = Manifest::parse(&p2kvs_storage::env::read_all(&**env, &manifest_path)?)?;
    let mut shards = vec![Vec::new(); manifest.shards as usize];
    for meta in &manifest.files {
        let path = dir.join(snap_file(meta.shard));
        if !env.exists(&path) {
            return Err(Error::Backup(format!(
                "{}: missing from the backup directory",
                snap_file(meta.shard)
            )));
        }
        let data = p2kvs_storage::env::read_all(&**env, &path)?;
        shards[meta.shard as usize] = decode_snap(meta, &data)?;
    }
    Ok((manifest, shards))
}

/// What a completed backup streamed.
#[derive(Debug, Clone)]
pub struct BackupReport {
    /// The GSN horizon of the cut.
    pub horizon: u64,
    /// Shards streamed.
    pub shards: u32,
    /// Total entries across all shard files.
    pub entries: u64,
    /// Total payload bytes across all shard files.
    pub bytes: u64,
    /// The backup directory.
    pub dir: PathBuf,
}

/// Handle to an in-flight background backup returned by
/// [`crate::P2Kvs::backup`]. The freeze is already over when the handle
/// exists — foreground traffic proceeds while the streamer drains the
/// snapshots — so [`BackupHandle::wait`] only blocks on the streaming
/// I/O itself.
pub struct BackupHandle {
    pub(crate) thread: JoinHandle<Result<BackupReport>>,
}

impl BackupHandle {
    /// Blocks until the streamer finishes; returns its report.
    pub fn wait(self) -> Result<BackupReport> {
        self.thread
            .join()
            .map_err(|_| Error::Backup("backup streamer panicked".into()))?
    }

    /// Whether the streamer has already finished (non-blocking).
    pub fn is_done(&self) -> bool {
        self.thread.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VecCursor;
    use p2kvs_storage::MemEnv;
    use std::sync::Arc;

    fn env() -> EnvRef {
        Arc::new(MemEnv::new())
    }

    fn manifest() -> Manifest {
        Manifest {
            horizon: 17,
            shards: 2,
            map_epoch: 3,
            journal_seq: 120,
            files: vec![
                ShardFileMeta {
                    shard: 0,
                    entries: 10,
                    bytes: 256,
                    crc: 0xdead_beef,
                    fidelity: SnapshotFidelity::PointInTime,
                },
                ShardFileMeta {
                    shard: 1,
                    entries: 0,
                    bytes: 0,
                    crc: 0,
                    fidelity: SnapshotFidelity::Materialized,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = manifest();
        assert_eq!(Manifest::parse(m.encode().as_bytes()).unwrap(), m);
    }

    #[test]
    fn manifest_without_trailer_is_rejected() {
        let text = manifest().encode();
        let torn = text.strip_suffix("complete\n").unwrap();
        let err = Manifest::parse(torn.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("complete"), "{err}");
        // Cut mid-line too: still rejected, never mis-parsed.
        let err = Manifest::parse(&text.as_bytes()[..text.len() - 3]).unwrap_err();
        assert!(matches!(err, Error::Backup(_)), "{err}");
    }

    #[test]
    fn manifest_with_missing_shard_file_entry_is_rejected() {
        let mut m = manifest();
        m.files.pop();
        let err = Manifest::parse(m.encode().as_bytes()).unwrap_err();
        assert!(err.to_string().contains("every shard"), "{err}");
    }

    #[test]
    fn manifest_with_bad_magic_is_rejected() {
        let err = Manifest::parse(b"rocksdb-backup 1\ncomplete\n").unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    fn entries(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key-{i:04}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn snap_file_roundtrips_through_stream_and_decode() {
        let env = env();
        let dir = Path::new("bk");
        env.create_dir_all(dir).unwrap();
        let want = entries(700); // several cursor chunks
        let source = BackupSource {
            fidelity: SnapshotFidelity::Materialized,
            cursor: Box::new(VecCursor::new(want.clone())),
        };
        let meta = stream_shard(&env, dir, 0, source).unwrap();
        assert_eq!(meta.entries, 700);
        let data = p2kvs_storage::env::read_all(&*env, &dir.join(snap_file(0))).unwrap();
        assert_eq!(decode_snap(&meta, &data).unwrap(), want);
    }

    #[test]
    fn corrupt_snap_file_is_rejected() {
        let env = env();
        let dir = Path::new("bk");
        env.create_dir_all(dir).unwrap();
        let source = BackupSource {
            fidelity: SnapshotFidelity::PointInTime,
            cursor: Box::new(VecCursor::new(entries(50))),
        };
        let meta = stream_shard(&env, dir, 3, source).unwrap();
        let path = dir.join(snap_file(3));
        let mut data = p2kvs_storage::env::read_all(&*env, &path).unwrap();
        data[20] ^= 0x01;
        let err = decode_snap(&meta, &data).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation is caught by the length check before the CRC.
        data[20] ^= 0x01;
        data.truncate(data.len() - 5);
        let err = decode_snap(&meta, &data).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn hub_serializes_sessions_and_ignores_strays() {
        let hub = BackupHub::default();
        let stray = BackupSource {
            fidelity: SnapshotFidelity::PointInTime,
            cursor: Box::new(VecCursor::new(Vec::new())),
        };
        assert_eq!(hub.deposit(0, stray), None, "no session: stray is dropped");
        hub.open_session(9).unwrap();
        assert!(hub.open_session(10).is_err(), "backups serialize");
        let src = BackupSource {
            fidelity: SnapshotFidelity::PointInTime,
            cursor: Box::new(VecCursor::new(Vec::new())),
        };
        assert_eq!(hub.deposit(1, src), Some(9));
        let session = hub.take_session().unwrap();
        assert_eq!(session.horizon, 9);
        assert_eq!(session.frozen.len(), 1);
        assert!(hub.take_session().is_none());
        hub.open_session(11).unwrap();
    }

    #[test]
    fn read_backup_rejects_a_directory_without_a_manifest() {
        let env = env();
        env.create_dir_all(Path::new("empty")).unwrap();
        let err = read_backup(&env, Path::new("empty")).unwrap_err();
        assert!(err.to_string().contains("MANIFEST"), "{err}");
    }

    #[test]
    fn stream_session_then_read_backup_roundtrips() {
        let env = env();
        let mut frozen = HashMap::new();
        let per_shard: Vec<_> = (0..3u32).map(|s| entries(10 + s as usize)).collect();
        for (s, e) in per_shard.iter().enumerate() {
            frozen.insert(
                s as u32,
                BackupSource {
                    fidelity: SnapshotFidelity::PointInTime,
                    cursor: Box::new(VecCursor::new(e.clone())),
                },
            );
        }
        let session = FreezeSession { horizon: 5, frozen };
        let report =
            stream_session(&env, Path::new("store"), Path::new("bk"), session, 2, None).unwrap();
        assert_eq!(report.horizon, 5);
        assert_eq!(report.shards, 3);
        assert_eq!(report.entries, 10 + 11 + 12);
        let (manifest, shards) = read_backup(&env, Path::new("bk")).unwrap();
        assert_eq!(manifest.horizon, 5);
        assert_eq!(manifest.map_epoch, 2);
        assert_eq!(shards, per_shard);
        // Deleting one shard file turns the directory into a partial
        // backup that restore must reject.
        let env2 = env;
        // MemEnv has no remove_file; emulate the partial state by
        // truncating the manifest's view instead: corrupt the file.
        p2kvs_storage::env::write_all(&*env2, &Path::new("bk").join(snap_file(1)), b"junk")
            .unwrap();
        let err = read_backup(&env2, Path::new("bk")).unwrap_err();
        assert!(matches!(err, Error::Backup(_)), "{err}");
    }
}
