//! Framework error type.

use std::fmt;
use std::io;

/// Errors surfaced by the framework or its engines.
#[derive(Debug)]
pub enum Error {
    /// An engine-level failure.
    Engine(String),
    /// An IO failure in the framework's own files (transaction log).
    Io(io::Error),
    /// The requested operation is unsupported by the engine (e.g. batch
    /// writes on WiredTiger).
    Unsupported(&'static str),
    /// Invalid store configuration detected at `open` (e.g. a custom
    /// partitioner whose `partitions()` does not match the shard count).
    Config(String),
    /// A backup or restore failed: the backup directory is incomplete,
    /// corrupt, or the snapshot machinery could not run to completion.
    Backup(String),
    /// The store has been closed.
    Closed,
}

/// Result alias for framework operations.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Engine(msg) => write!(f, "engine error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Backup(msg) => write!(f, "invalid backup: {msg}"),
            Error::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<lsmkv::Error> for Error {
    fn from(e: lsmkv::Error) -> Self {
        Error::Engine(e.to_string())
    }
}

impl Clone for Error {
    fn clone(&self) -> Self {
        match self {
            Error::Engine(m) => Error::Engine(m.clone()),
            Error::Io(e) => Error::Engine(format!("io error: {e}")),
            Error::Unsupported(w) => Error::Unsupported(w),
            Error::Config(m) => Error::Config(m.clone()),
            Error::Backup(m) => Error::Backup(m.clone()),
            Error::Closed => Error::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_clone() {
        let e = Error::Engine("boom".into());
        assert_eq!(e.to_string(), "engine error: boom");
        let io_err: Error = io::Error::new(io::ErrorKind::Other, "disk").into();
        let cloned = io_err.clone();
        assert!(cloned.to_string().contains("disk"));
        assert_eq!(Error::Closed.to_string(), "store is closed");
        assert!(Error::Unsupported("batch").to_string().contains("batch"));
        let cfg = Error::Config("partitions mismatch".into());
        assert!(cfg.to_string().contains("invalid configuration"));
        assert!(cfg.clone().to_string().contains("partitions mismatch"));
    }
}
