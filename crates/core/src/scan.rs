//! Lazy K-way merge cursor over per-shard scan streams.
//!
//! [`StoreIter`] is the store-level half of the streaming scan subsystem
//! (§4.4): it opens one engine cursor per **shard** (`Op::ScanOpen`),
//! then merges the per-shard streams on demand. Partitions are disjoint,
//! so picking the smallest buffered head key yields the globally sorted
//! order exactly — no heap is needed for the default `S ≤ 32` shards; a
//! linear min scan over at most `S` heads is cheaper than maintaining
//! one.
//!
//! Every request is routed through the live [`MapCell`], so an iterator
//! keeps working across shard migrations: a chunk request that races a
//! handoff is stashed by the incoming owner and served once the shard's
//! cursor table (this stream's parked cursor included) is installed.
//!
//! The merge is *lazy* in both directions:
//!
//! * Only streams whose buffer has drained are refilled
//!   (`Op::ScanNext`), so a stream holding distant keys is pulled at
//!   most once per `chunk_entries` consumed from it.
//! * Nothing is fetched beyond what [`StoreIter::next_entry`] /
//!   [`StoreIter::next_chunk`] demand, so `scan(start, 5)` over a
//!   million-entry store reads a handful of chunks, not the world.
//!
//! Because every chunk is a bounded request through the worker queue,
//! point operations interleave (and OBM-merge) between chunks — the
//! head-of-line blocking the old monolithic `Op::Scan` caused is gone
//! (see `crate::worker`).
//!
//! Dropping the iterator closes every still-parked cursor with a
//! fire-and-forget `Op::ScanClose`, releasing engine snapshots without
//! blocking the dropping thread.

use std::collections::VecDeque;

use crate::error::{Error, Result};
use crate::pool::QueueTable;
use crate::shard::MapCell;
use crate::types::{Op, Request, Response};

/// One per-shard scan stream: the shard it reads, the parked cursor id
/// (if the stream is not exhausted), and locally buffered entries not
/// yet consumed by the merge. The worker serving the stream is resolved
/// per request from the shard map — it changes under migration.
struct Stream {
    shard: usize,
    cursor: Option<u64>,
    buf: VecDeque<(Vec<u8>, Vec<u8>)>,
}

/// A pull-based, globally sorted iterator over the whole store (or a
/// `[begin, end)` slice of it). Obtained from [`P2Kvs::iter`],
/// [`P2Kvs::iter_from`], or [`P2Kvs::iter_range`].
///
/// Consume it either through the [`Iterator`] impl (per entry) or with
/// [`StoreIter::next_chunk`] for paginated pulls. Errors poison the
/// iterator: the failed call reports the error, later calls yield
/// nothing.
///
/// [`P2Kvs::iter`]: crate::store::P2Kvs::iter
/// [`P2Kvs::iter_from`]: crate::store::P2Kvs::iter_from
/// [`P2Kvs::iter_range`]: crate::store::P2Kvs::iter_range
pub struct StoreIter<'a> {
    queues: &'a QueueTable,
    map: &'a MapCell,
    streams: Vec<Stream>,
    chunk_entries: usize,
    chunk_bytes: usize,
    poisoned: bool,
}

impl<'a> StoreIter<'a> {
    /// Fans `ScanOpen` out to every shard's owning worker and assembles
    /// the merge state. `first_limit` is the per-shard quota for the
    /// opening chunk (the scan-strategy knob); refills use
    /// `chunk_entries`.
    pub(crate) fn open(
        queues: &'a QueueTable,
        map: &'a MapCell,
        shards: usize,
        start: &[u8],
        end: Option<&[u8]>,
        first_limit: usize,
        chunk_entries: usize,
        chunk_bytes: usize,
    ) -> Result<StoreIter<'a>> {
        let mut completions = Vec::with_capacity(shards);
        let mut push_err = None;
        // Pin once for the whole fan-out: the epoch fence then orders
        // every open against any concurrent migration.
        let pin = map.pin();
        for shard in 0..shards {
            let (req, done) = Request::sync(Op::ScanOpen {
                start: start.to_vec(),
                end: end.map(|e| e.to_vec()),
                limit: first_limit.max(1),
                max_bytes: chunk_bytes,
            });
            match queues.push_to(pin.owner(shard), req.on_shard(shard as u64)) {
                Ok(()) => completions.push((shard, done)),
                Err(_) => {
                    push_err = Some(Error::Closed);
                    break;
                }
            }
        }
        drop(pin);
        // A mid-loop push failure must not abandon the completions that
        // were already enqueued: their pooled slots are still in flight
        // and a fulfilled-but-never-awaited slot would be recycled in a
        // dirty state. Drain every pushed completion — closing any
        // cursor that still came back — before reporting the error.
        if let Some(e) = push_err {
            let mut streams = Vec::new();
            for (shard, done) in completions {
                if let Ok(Response::Chunk {
                    cursor: Some(id), ..
                }) = done.wait()
                {
                    streams.push(Stream {
                        shard,
                        cursor: Some(id),
                        buf: VecDeque::new(),
                    });
                }
            }
            close_streams(queues, map, &mut streams);
            return Err(e);
        }
        let mut streams = Vec::with_capacity(completions.len());
        let mut first_err: Option<Error> = None;
        for (shard, done) in completions {
            match done.wait() {
                Ok(Response::Chunk { entries, cursor }) => streams.push(Stream {
                    shard,
                    cursor,
                    buf: entries.into(),
                }),
                Ok(other) => {
                    first_err
                        .get_or_insert(Error::Engine(format!("unexpected response {other:?}")));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            close_streams(queues, map, &mut streams);
            return Err(e);
        }
        Ok(StoreIter {
            queues,
            map,
            streams,
            chunk_entries: chunk_entries.max(1),
            chunk_bytes: chunk_bytes.max(1),
            poisoned: false,
        })
    }

    /// Pulls the next chunk for stream `i` from its worker. The engine
    /// contract guarantees progress (a non-final chunk holds at least
    /// one entry), so the loop terminates.
    fn refill(&mut self, i: usize) -> Result<()> {
        while self.streams[i].buf.is_empty() {
            let Some(id) = self.streams[i].cursor else {
                return Ok(());
            };
            let (req, done) = Request::sync(Op::ScanNext {
                cursor: id,
                limit: self.chunk_entries,
                max_bytes: self.chunk_bytes,
            });
            let stream = &mut self.streams[i];
            // Resolve the owner *under a pin held across the push*: the
            // cursor follows its shard across migrations, and the pin
            // is the epoch fence that keeps a concurrent migration (or
            // a pool scale-down draining the owner) from retiring the
            // resolved ring between the read and the push.
            let pushed = {
                let pin = self.map.pin();
                self.queues
                    .push_to(pin.owner(stream.shard), req.on_shard(stream.shard as u64))
            };
            if pushed.is_err() {
                // Queue closed: the worker is gone and its cursor table
                // with it — nothing left to close.
                stream.cursor = None;
                return Err(Error::Closed);
            }
            match done.wait() {
                Ok(Response::Chunk { entries, cursor }) => {
                    stream.buf = entries.into();
                    stream.cursor = cursor;
                }
                Ok(other) => {
                    return Err(Error::Engine(format!("unexpected response {other:?}")));
                }
                Err(e) => {
                    // The worker drops a cursor that failed, so do not
                    // try to close it again.
                    stream.cursor = None;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The next entry in global key order, or `None` when the range is
    /// exhausted.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if self.poisoned {
            return Err(Error::Engine(
                "scan iterator poisoned by a previous error".into(),
            ));
        }
        // Refill only drained streams: one with an empty buffer and a
        // live cursor may hold the globally smallest key, so it must be
        // pulled before the heads can be compared.
        for i in 0..self.streams.len() {
            if self.streams[i].buf.is_empty() && self.streams[i].cursor.is_some() {
                if let Err(e) = self.refill(i) {
                    self.poison();
                    return Err(e);
                }
            }
        }
        let mut best: Option<usize> = None;
        for i in 0..self.streams.len() {
            if self.streams[i].buf.front().is_none() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let head = |j: usize| &self.streams[j].buf.front().unwrap().0;
                    if head(i) < head(b) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        Ok(best.and_then(|i| self.streams[i].buf.pop_front()))
    }

    /// Pulls up to `n` entries in global key order (fewer only at the
    /// end of the range) — the paginated interface.
    pub fn next_chunk(&mut self, n: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::with_capacity(n.min(1024));
        while out.len() < n {
            match self.next_entry()? {
                Some(e) => out.push(e),
                None => break,
            }
        }
        Ok(out)
    }

    /// Marks the iterator failed and releases every parked cursor.
    fn poison(&mut self) {
        self.poisoned = true;
        close_streams(self.queues, self.map, &mut self.streams);
    }
}

/// Fire-and-forget `ScanClose` for every stream that still holds a
/// cursor. Uses an asynchronous request so neither `Drop` nor an error
/// path blocks on the worker; a closed queue means the worker (and its
/// cursor table) is already gone. The pin is held across each push so a
/// concurrent migration or scale-down cannot retire the resolved ring
/// mid-send (the close would silently leak the parked cursor).
fn close_streams(queues: &QueueTable, map: &MapCell, streams: &mut [Stream]) {
    for s in streams {
        if let Some(id) = s.cursor.take() {
            let req = Request::asynchronous(Op::ScanClose { cursor: id }, Box::new(|_| {}))
                .on_shard(s.shard as u64);
            let pin = map.pin();
            let _ = queues.push_to(pin.owner(s.shard), req);
        }
    }
}

impl Iterator for StoreIter<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    /// Yields `Err` once on failure, then ends the iteration.
    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        match self.next_entry() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

impl Drop for StoreIter<'_> {
    fn drop(&mut self) {
        close_streams(self.queues, self.map, &mut self.streams);
    }
}
