//! End-to-end tests of the p2KVS framework over its engines: partitioned
//! CRUD, OBM batching, range/scan strategies, transactions, crash
//! recovery, async interface, and portability (LevelDB mode, WiredTiger).

use std::sync::Arc;

use p2kvs::engine::{Capabilities, EngineFactory, GsnFilter, KvellFactory, LsmFactory, WtFactory};
use p2kvs::{KvsEngine, MetricsSnapshot, P2Kvs, P2KvsOptions, ScanStrategy, WriteOp};
use p2kvs_storage::{EnvRef, MemEnv};

fn lsm_factory() -> LsmFactory {
    LsmFactory::new(lsmkv::Options::for_test())
}

fn open_lsm(workers: usize) -> P2Kvs<lsmkv::Db> {
    let mut opts = P2KvsOptions::with_workers(workers);
    opts.pin_workers = false;
    P2Kvs::open(lsm_factory(), "p2", opts).unwrap()
}

/// Waits for the fire-and-forget `ScanClose` requests issued when an
/// iterator drops to be processed by the workers (bounded, not racy).
fn wait_no_active_scans<E: KvsEngine>(store: &P2Kvs<E>) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let active: u64 = store.snapshot().workers.iter().map(|w| w.active_scans).sum();
        if active == 0 {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "parked cursors were never released ({active} still active)"
        );
        std::thread::yield_now();
    }
}

#[test]
fn crud_roundtrip_across_partitions() {
    let store = open_lsm(4);
    for i in 0..500 {
        store
            .put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    for i in 0..500 {
        assert_eq!(
            store.get(format!("key{i:04}").as_bytes()).unwrap().unwrap(),
            format!("v{i}").as_bytes()
        );
    }
    store.delete(b"key0100").unwrap();
    assert_eq!(store.get(b"key0100").unwrap(), None);
    assert_eq!(store.get(b"missing").unwrap(), None);
    // Data really is spread across the shard instances (4 workers →
    // 16 shards by default).
    let populated = store
        .engines()
        .iter()
        .filter(|e| e.visible_sequence() > 0)
        .count();
    assert_eq!(
        populated,
        store.shards(),
        "every shard instance should own some keys"
    );
}

#[test]
fn concurrent_user_threads() {
    let store = Arc::new(open_lsm(4));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..300 {
                    let k = format!("t{t}-{i:04}");
                    store.put(k.as_bytes(), k.as_bytes()).unwrap();
                }
                for i in (0..300).step_by(7) {
                    let k = format!("t{t}-{i:04}");
                    assert_eq!(store.get(k.as_bytes()).unwrap().unwrap(), k.as_bytes());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = store.snapshot();
    assert!(snap.total_ops() >= 8 * 300);
    // Concurrency should produce some OBM merging.
    assert!(snap.avg_batch_size() >= 1.0);
}

#[test]
fn obm_merges_under_concurrency() {
    let mut opts = P2KvsOptions::with_workers(1);
    opts.pin_workers = false;
    let store = Arc::new(P2Kvs::open(lsm_factory(), "p2", opts).unwrap());
    // Many async writes into one worker queue back up and merge.
    let (tx, rx) = std::sync::mpsc::channel();
    const N: usize = 2000;
    for i in 0..N {
        let tx = tx.clone();
        store
            .put_async(
                format!("k{i:05}").as_bytes(),
                b"v",
                move |r| {
                    r.unwrap();
                    tx.send(()).unwrap();
                },
            )
            .unwrap();
    }
    for _ in 0..N {
        rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
    }
    let snap = store.snapshot();
    assert!(
        snap.merge_ratio() > 0.5,
        "async flood should batch heavily, got {}",
        snap.merge_ratio()
    );
    assert!(snap.avg_batch_size() > 2.0, "avg batch {}", snap.avg_batch_size());
}

#[test]
fn obm_disabled_never_merges() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.obm = false;
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2", opts).unwrap();
    for i in 0..200 {
        store.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let snap = store.snapshot();
    assert_eq!(snap.merge_ratio(), 0.0);
    assert_eq!(snap.avg_batch_size(), 1.0);
}

#[test]
fn get_many_batches_reads() {
    let store = open_lsm(4);
    for i in 0..300 {
        store
            .put(format!("k{i:04}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    let keys: Vec<Vec<u8>> = (0..300).map(|i| format!("k{i:04}").into_bytes()).collect();
    let got = store.get_many(&keys).unwrap();
    assert_eq!(got.len(), 300);
    for (i, v) in got.iter().enumerate() {
        assert_eq!(v.as_deref().unwrap(), format!("{i}").as_bytes());
    }
    let missing = store.get_many(&[b"zzz".to_vec()]).unwrap();
    assert_eq!(missing, vec![None]);
}

#[test]
fn range_is_exact_across_partitions() {
    let store = open_lsm(4);
    for i in 0..1000 {
        store
            .put(format!("key{i:04}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    let got = store.range(b"key0100", b"key0200").unwrap();
    assert_eq!(got.len(), 100);
    assert_eq!(got[0].0, b"key0100");
    assert_eq!(got[99].0, b"key0199");
    // Sorted.
    for w in got.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    assert!(store.range(b"z", b"zz").unwrap().is_empty());
}

#[test]
fn scan_strategies_agree() {
    for strategy in [ScanStrategy::ParallelFull, ScanStrategy::Adaptive] {
        let mut opts = P2KvsOptions::with_workers(4);
        opts.scan_strategy = strategy;
        opts.pin_workers = false;
        let store = P2Kvs::open(lsm_factory(), "p2", opts).unwrap();
        for i in 0..1000 {
            store
                .put(format!("key{i:04}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        for (start, n) in [(b"key0000".as_slice(), 10), (b"key0500", 137), (b"key0990", 50)] {
            let got = store.scan(start, n).unwrap();
            // Expected: the n smallest keys >= start.
            let expect: Vec<Vec<u8>> = (0..1000)
                .map(|i| format!("key{i:04}").into_bytes())
                .filter(|k| k.as_slice() >= start)
                .take(n)
                .collect();
            let got_keys: Vec<Vec<u8>> = got.iter().map(|(k, _)| k.clone()).collect();
            assert_eq!(got_keys, expect, "strategy {strategy:?} start {start:?} n {n}");
        }
    }
}

#[test]
fn scan_count_zero_is_empty() {
    // Regression: the old quota merge panicked on `count == 0` because
    // every empty per-worker result hit `entries.last().expect(..)`.
    let store = open_lsm(4);
    assert!(store.scan(b"", 0).unwrap().is_empty());
    for i in 0..50 {
        store.put(format!("z{i:02}").as_bytes(), b"v").unwrap();
    }
    assert!(store.scan(b"", 0).unwrap().is_empty());
    assert!(store.scan(b"z25", 0).unwrap().is_empty());
}

#[test]
fn chunked_scan_is_byte_identical_to_blocking() {
    // The streaming path must return exactly what the old blocking path
    // returned on static data. `scan_chunk_entries = usize::MAX`
    // reproduces the blocking behavior (one unbounded chunk per
    // instance).
    let fill = |store: &P2Kvs<lsmkv::Db>| {
        for i in 0..2000 {
            store
                .put(
                    format!("key{i:05}").as_bytes(),
                    format!("value-{i}").as_bytes(),
                )
                .unwrap();
        }
    };
    let mut chunked_opts = P2KvsOptions::with_workers(4);
    chunked_opts.pin_workers = false;
    chunked_opts.scan_chunk_entries = 16;
    let chunked = P2Kvs::open(lsm_factory(), "p2c", chunked_opts).unwrap();
    let mut blocking_opts = P2KvsOptions::with_workers(4);
    blocking_opts.pin_workers = false;
    blocking_opts.scan_chunk_entries = usize::MAX;
    blocking_opts.scan_chunk_bytes = usize::MAX;
    let blocking = P2Kvs::open(lsm_factory(), "p2b", blocking_opts).unwrap();
    fill(&chunked);
    fill(&blocking);
    for (start, n) in [
        (b"".as_slice(), 2000),
        (b"key00500".as_slice(), 137),
        (b"key01990".as_slice(), 50),
    ] {
        assert_eq!(
            chunked.scan(start, n).unwrap(),
            blocking.scan(start, n).unwrap(),
            "start {start:?} n {n}"
        );
    }
    assert_eq!(
        chunked.range(b"key00100", b"key00250").unwrap(),
        blocking.range(b"key00100", b"key00250").unwrap()
    );
}

#[test]
fn iter_streams_sorted_with_pagination_and_bounds() {
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 32; // force many resumes
    let store = P2Kvs::open(lsm_factory(), "p2i", opts).unwrap();
    for i in 0..800 {
        store
            .put(format!("it{i:04}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    // Full iteration, via the Iterator impl.
    let all: Vec<_> = store
        .iter()
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(all.len(), 800);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "globally sorted");
    assert_eq!(all[0].0, b"it0000");
    assert_eq!(all[799].0, b"it0799");
    // Paginated pull.
    let mut iter = store.iter_from(b"it0100").unwrap();
    let page1 = iter.next_chunk(25).unwrap();
    let page2 = iter.next_chunk(25).unwrap();
    assert_eq!(page1.len(), 25);
    assert_eq!(page1[0].0, b"it0100");
    assert_eq!(page2[0].0, b"it0125");
    // Abandoning the iterator mid-scan must release its parked cursors.
    drop(iter);
    // Bounded iteration stops exactly at the end key.
    let bounded: Vec<_> = store
        .iter_range(b"it0200", b"it0210")
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(bounded.len(), 10);
    assert_eq!(bounded.last().unwrap().0, b"it0209");
    // The workers resumed parked cursors rather than scanning blocking.
    let snap = store.snapshot();
    let resumes: u64 = snap.workers.iter().map(|w| w.scan_resumes).sum();
    assert!(resumes > 0, "32-entry chunks over 800 keys must resume");
    wait_no_active_scans(&store);
}

#[test]
fn lsm_iter_is_snapshot_consistent_across_writes() {
    // lsmkv has native cursors: every per-instance stream pins a
    // snapshot at open, so writes issued mid-iteration are invisible.
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 8;
    let store = P2Kvs::open(lsm_factory(), "p2s", opts).unwrap();
    for i in 0..200 {
        store.put(format!("s{i:03}").as_bytes(), b"old").unwrap();
    }
    let mut iter = store.iter().unwrap();
    let first = iter.next_chunk(10).unwrap();
    assert_eq!(first.len(), 10);
    // Overwrite, delete, and insert while the scan is mid-flight.
    for i in 0..200 {
        store.put(format!("s{i:03}").as_bytes(), b"new").unwrap();
    }
    store.delete(b"s150").unwrap();
    store.put(b"s999", b"new").unwrap();
    let rest: Vec<_> = iter.collect::<Result<Vec<_>, _>>().unwrap();
    let mut seen = first;
    seen.extend(rest);
    assert_eq!(seen.len(), 200, "the pinned view has exactly the old keys");
    assert!(
        seen.iter().all(|(_, v)| v == b"old"),
        "mid-scan writes must be invisible to a native cursor"
    );
}

/// An lsmkv instance that hides its native cursor support: the default
/// resume-from-last-key emulation must carry chunked scans while OBM
/// keeps merging point ops between chunks.
struct EmulatedCursorDb(lsmkv::Db);

impl KvsEngine for EmulatedCursorDb {
    fn put(&self, key: &[u8], value: &[u8]) -> p2kvs::Result<()> {
        KvsEngine::put(&self.0, key, value)
    }
    fn delete(&self, key: &[u8]) -> p2kvs::Result<()> {
        KvsEngine::delete(&self.0, key)
    }
    fn write_batch(&self, ops: &[WriteOp], gsn: u64) -> p2kvs::Result<()> {
        KvsEngine::write_batch(&self.0, ops, gsn)
    }
    fn get(&self, key: &[u8]) -> p2kvs::Result<Option<Vec<u8>>> {
        KvsEngine::get(&self.0, key)
    }
    fn multiget(&self, keys: &[Vec<u8>]) -> p2kvs::Result<Vec<Option<Vec<u8>>>> {
        KvsEngine::multiget(&self.0, keys)
    }
    fn scan(&self, start: &[u8], count: usize) -> p2kvs::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        KvsEngine::scan(&self.0, start, count)
    }
    fn range(&self, begin: &[u8], end: &[u8]) -> p2kvs::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        KvsEngine::range(&self.0, begin, end)
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            native_cursor: false,
            ..KvsEngine::capabilities(&self.0)
        }
    }
    fn sync(&self) -> p2kvs::Result<()> {
        KvsEngine::sync(&self.0)
    }
    fn mem_usage(&self) -> usize {
        KvsEngine::mem_usage(&self.0)
    }
}

struct EmulatedCursorFactory(LsmFactory);

impl EngineFactory for EmulatedCursorFactory {
    type Engine = EmulatedCursorDb;

    fn open(&self, dir: &std::path::Path, filter: Option<GsnFilter>) -> p2kvs::Result<EmulatedCursorDb> {
        Ok(EmulatedCursorDb(self.0.open(dir, filter)?))
    }

    fn env(&self) -> EnvRef {
        self.0.env()
    }
}

#[test]
fn engine_without_native_cursor_degrades_to_emulated_chunks_with_obm() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 8;
    let store = Arc::new(
        P2Kvs::open(EmulatedCursorFactory(lsm_factory()), "p2e", opts).unwrap(),
    );
    for i in 0..300 {
        store
            .put(format!("e{i:03}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    // Start the scan, then flood point writes so OBM has runs to merge
    // while cursors are parked between chunks.
    let mut iter = store.iter().unwrap();
    let mut seen = iter.next_chunk(20).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    for i in 0..600 {
        let tx = tx.clone();
        store
            .put_async(format!("flood{i:03}").as_bytes(), b"v", move |r| {
                r.unwrap();
                tx.send(()).unwrap();
            })
            .unwrap();
    }
    // Drain the rest of the scan while the flood lands.
    loop {
        let chunk = iter.next_chunk(40).unwrap();
        if chunk.is_empty() {
            break;
        }
        seen.extend(chunk);
    }
    for _ in 0..600 {
        rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
    }
    // The emulated cursor is monotonic: sorted, no duplicates, and every
    // pre-scan key appears (flood keys sort before "e..." and may or may
    // not be seen — read-committed, not snapshot).
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
    let e_keys: Vec<_> = seen.iter().filter(|(k, _)| k.starts_with(b"e")).collect();
    assert_eq!(e_keys.len(), 300, "every pre-existing key is returned");
    let snap = store.snapshot();
    assert!(
        snap.workers.iter().map(|w| w.scan_resumes).sum::<u64>() > 0,
        "emulation must serve multiple chunks per stream"
    );
    assert!(
        snap.workers.iter().map(|w| w.merged_ops).sum::<u64>() > 0,
        "OBM must keep merging point ops between scan chunks"
    );
}

#[test]
fn works_over_kvell() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let factory = KvellFactory::new(kvell::KvellOptions::new(env));
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 16;
    let store = P2Kvs::open(factory, "p2kv", opts).unwrap();
    for i in 0..300 {
        store
            .put(format!("k{i:03}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    assert_eq!(store.get(b"k123").unwrap().unwrap(), b"123");
    store.delete(b"k100").unwrap();
    assert_eq!(store.get(b"k100").unwrap(), None);
    let scan = store.scan(b"k050", 10).unwrap();
    assert_eq!(scan.len(), 10);
    assert_eq!(scan[0].0, b"k050");
    let range = store.range(b"k200", b"k210").unwrap();
    assert_eq!(range.len(), 10);
    // KVell has no atomic batch-write: cross-instance transactions are
    // rejected rather than silently partially applied.
    let err = store.write_batch(
        (0..50)
            .map(|i| WriteOp::Put {
                key: format!("t{i}").into_bytes(),
                value: b"v".to_vec(),
            })
            .collect(),
    );
    assert!(err.is_err(), "KVell transactions must be rejected");
}

#[test]
fn scan_metrics_surface_in_snapshots() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 8;
    let store = P2Kvs::open(lsm_factory(), "p2m", opts).unwrap();
    for i in 0..200 {
        store.put(format!("m{i:03}").as_bytes(), b"v").unwrap();
    }
    let got = store.scan(b"", 200).unwrap();
    assert_eq!(got.len(), 200);
    let snap = store.metrics_snapshot();
    let scans: u64 = (0..2)
        .map(|w| {
            snap.counter(&format!("p2kvs_worker_scans_total{{worker=\"{w}\"}}"))
                .unwrap()
        })
        .sum();
    let chunks: u64 = (0..2)
        .map(|w| {
            snap.counter(&format!("p2kvs_worker_scan_chunks_total{{worker=\"{w}\"}}"))
                .unwrap()
        })
        .sum();
    assert_eq!(
        scans,
        store.shards() as u64,
        "one stream opened per shard"
    );
    assert!(chunks > scans, "8-entry chunks over 200 keys need resumes");
    wait_no_active_scans(&store);
    let snap = store.metrics_snapshot();
    for w in 0..2 {
        assert_eq!(
            snap.gauge(&format!("p2kvs_active_scans{{worker=\"{w}\"}}")),
            Some(0.0),
            "no cursor may remain parked after the scan"
        );
    }
}

#[test]
fn write_batch_single_partition_is_atomic() {
    let store = open_lsm(1);
    store
        .write_batch(vec![
            WriteOp::Put { key: b"a".to_vec(), value: b"1".to_vec() },
            WriteOp::Put { key: b"b".to_vec(), value: b"2".to_vec() },
            WriteOp::Delete { key: b"a".to_vec() },
        ])
        .unwrap();
    assert_eq!(store.get(b"a").unwrap(), None);
    assert_eq!(store.get(b"b").unwrap().unwrap(), b"2");
}

#[test]
fn cross_instance_transaction_commits() {
    let store = open_lsm(4);
    let ops: Vec<WriteOp> = (0..100)
        .map(|i| WriteOp::Put {
            key: format!("txn{i:03}").into_bytes(),
            value: b"committed".to_vec(),
        })
        .collect();
    store.write_batch(ops).unwrap();
    for i in 0..100 {
        assert_eq!(
            store.get(format!("txn{i:03}").as_bytes()).unwrap().unwrap(),
            b"committed"
        );
    }
}

#[test]
fn uncommitted_transaction_rolls_back_at_recovery() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
    let opts = || {
        let mut o = P2KvsOptions::with_workers(4);
        o.pin_workers = false;
        o
    };
    {
        let store = P2Kvs::open(factory(), "p2", opts()).unwrap();
        // A committed transaction...
        store
            .write_batch(
                (0..40)
                    .map(|i| WriteOp::Put {
                        key: format!("ok{i:02}").into_bytes(),
                        value: b"yes".to_vec(),
                    })
                    .collect(),
            )
            .unwrap();
        // ...and an uncommitted one: simulate the crash window by writing
        // GSN-tagged sub-batches directly without a commit record.
        let gsn = 999_999u64; // Never recorded as committed.
        for (i, engine) in store.engines().iter().enumerate() {
            use p2kvs::KvsEngine;
            engine
                .write_batch(
                    &[WriteOp::Put {
                        key: format!("ghost{i}").into_bytes(),
                        value: b"no".to_vec(),
                    }],
                    gsn,
                )
                .unwrap();
        }
        // Crash every instance without syncing framework state.
        store.close();
    }
    let store = P2Kvs::open(factory(), "p2", opts()).unwrap();
    for i in 0..40 {
        assert_eq!(
            store.get(format!("ok{i:02}").as_bytes()).unwrap().unwrap(),
            b"yes",
            "committed transaction must survive"
        );
    }
    for i in 0..store.shards() {
        assert_eq!(
            store.get(format!("ghost{i}").as_bytes()).unwrap(),
            None,
            "uncommitted sub-batch must be rolled back"
        );
    }
}

#[test]
fn reopen_preserves_data_and_gsns() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let factory = || LsmFactory::new(lsmkv::Options::rocksdb_like(env.clone()));
    let mk_opts = || {
        let mut o = P2KvsOptions::with_workers(2);
        o.pin_workers = false;
        o
    };
    {
        let store = P2Kvs::open(factory(), "p2", mk_opts()).unwrap();
        for i in 0..200 {
            store.put(format!("k{i}").as_bytes(), b"v1").unwrap();
        }
        store
            .write_batch(vec![
                WriteOp::Put { key: b"tx-a".to_vec(), value: b"1".to_vec() },
                WriteOp::Put { key: b"tx-b".to_vec(), value: b"2".to_vec() },
            ])
            .unwrap();
        store.close();
    }
    let store = P2Kvs::open(factory(), "p2", mk_opts()).unwrap();
    assert_eq!(store.get(b"k0").unwrap().unwrap(), b"v1");
    assert_eq!(store.get(b"k199").unwrap().unwrap(), b"v1");
    assert_eq!(store.get(b"tx-a").unwrap().unwrap(), b"1");
    assert_eq!(store.get(b"tx-b").unwrap().unwrap(), b"2");
    // New transactions must get fresh GSNs (no reuse after recovery).
    store
        .write_batch(vec![
            WriteOp::Put { key: b"tx-c".to_vec(), value: b"3".to_vec() },
            WriteOp::Put { key: b"tx-d".to_vec(), value: b"4".to_vec() },
        ])
        .unwrap();
    assert_eq!(store.get(b"tx-c").unwrap().unwrap(), b"3");
}

#[test]
fn async_writes_complete() {
    let store = Arc::new(open_lsm(2));
    let (tx, rx) = std::sync::mpsc::channel();
    for i in 0..100 {
        let tx = tx.clone();
        store
            .put_async(format!("a{i}").as_bytes(), b"v", move |r| {
                tx.send(r.is_ok()).unwrap();
            })
            .unwrap();
    }
    for _ in 0..100 {
        assert!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
    }
    assert_eq!(store.get(b"a99").unwrap().unwrap(), b"v");
}

#[test]
fn works_over_leveldb_mode() {
    // LevelDB mode: no multiget, no concurrent memtable; OBM write-merge
    // still applies (LevelDB has WriteBatch).
    let env: EnvRef = Arc::new(MemEnv::new());
    let factory = LsmFactory::new(lsmkv::Options::leveldb_like(env));
    let mut opts = P2KvsOptions::with_workers(3);
    opts.pin_workers = false;
    let store = P2Kvs::open(factory, "p2l", opts).unwrap();
    for i in 0..300 {
        store.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
    }
    for i in (0..300).step_by(11) {
        assert_eq!(store.get(format!("k{i:03}").as_bytes()).unwrap().unwrap(), b"v");
    }
    let scan = store.scan(b"k100", 5).unwrap();
    assert_eq!(scan.len(), 5);
    assert_eq!(scan[0].0, b"k100");
}

#[test]
fn works_over_wiredtiger() {
    let env: EnvRef = Arc::new(MemEnv::new());
    let factory = WtFactory::new(wtiger::WtOptions::new(env));
    let mut opts = P2KvsOptions::with_workers(3);
    opts.pin_workers = false;
    let store = P2Kvs::open(factory, "p2w", opts).unwrap();
    for i in 0..300 {
        store
            .put(format!("k{i:03}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    for i in (0..300).step_by(13) {
        assert_eq!(
            store.get(format!("k{i:03}").as_bytes()).unwrap().unwrap(),
            format!("{i}").as_bytes()
        );
    }
    store.delete(b"k100").unwrap();
    assert_eq!(store.get(b"k100").unwrap(), None);
    let range = store.range(b"k200", b"k205").unwrap();
    assert_eq!(range.len(), 5);
    // Cross-instance transactions are unsupported without batch-write.
    let err = store.write_batch(
        (0..50)
            .map(|i| WriteOp::Put {
                key: format!("t{i}").into_bytes(),
                value: b"v".to_vec(),
            })
            .collect(),
    );
    assert!(err.is_err(), "WiredTiger transactions must be rejected");
}

#[test]
fn snapshot_reports_worker_activity() {
    let store = open_lsm(2);
    for i in 0..200 {
        store.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let snap = store.snapshot();
    assert_eq!(snap.workers.len(), 2);
    assert_eq!(snap.total_ops(), 200);
    assert!(snap.mem_usage > 0);
    assert!(snap.workers.iter().all(|w| w.queue_depth == 0));
    let util = snap.worker_utilization();
    assert!(util.iter().all(|u| (0.0..=1.0).contains(u)));
}

#[test]
fn empty_batch_is_noop() {
    let store = open_lsm(2);
    store.write_batch(vec![]).unwrap();
}

#[test]
fn metrics_snapshot_covers_lifecycle_engines_and_renders() {
    // The acceptance scenario of the observability layer: a mixed
    // PUT/GET workload over a store with metrics enabled must yield
    // per-class queue-wait and service histograms, live queue-depth
    // gauges, engine_* metrics from lsmkv's write breakdown, and
    // Prometheus/JSON renders that agree.
    let mut opts = P2KvsOptions::with_workers(4);
    opts.pin_workers = false;
    // Trace everything so the slow-request ring provably fills.
    opts.slow_request_threshold = std::time::Duration::ZERO;
    let store = P2Kvs::open(lsm_factory(), "p2-obs", opts).unwrap();
    for i in 0..300 {
        store
            .put(format!("key{i:04}").as_bytes(), b"value")
            .unwrap();
    }
    for i in 0..200 {
        store.get(format!("key{i:04}").as_bytes()).unwrap();
    }

    // Lifecycle histograms are recorded by the worker *after* a request
    // is acked, so a snapshot taken immediately after the last ack can be
    // one batch short; poll (bounded) until the counts settle.
    let snap = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let snap = store.metrics_snapshot();
            let count = |base: &str, class: &str| -> u64 {
                snap.histograms_of(base)
                    .iter()
                    .filter(|(n, _)| n.contains(&format!("class=\"{class}\"")))
                    .map(|(_, h)| h.count)
                    .sum()
            };
            if ["p2kvs_queue_wait_ns", "p2kvs_service_ns"]
                .iter()
                .all(|b| count(b, "write") == 300 && count(b, "read") == 200)
            {
                break snap;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "lifecycle histogram counts never settled"
            );
            std::thread::yield_now();
        }
    };

    // Per-class lifecycle histograms: non-zero counts, ordered tails.
    for base in ["p2kvs_queue_wait_ns", "p2kvs_service_ns"] {
        for class in ["write", "read"] {
            let series = snap.histograms_of(base);
            let total: u64 = series
                .iter()
                .filter(|(n, _)| n.contains(&format!("class=\"{class}\"")))
                .map(|(_, h)| h.count)
                .sum();
            let expected = if class == "write" { 300 } else { 200 };
            assert_eq!(total, expected, "{base}/{class} must count every request");
            for (name, h) in series {
                assert!(
                    h.p50 <= h.p99 && h.p99 <= h.p999 && h.p999 <= h.max,
                    "percentiles must be ordered in {name}"
                );
            }
        }
    }

    // Worker counters and queue-depth gauges exist for every worker.
    for w in 0..4 {
        let ops = snap
            .counter(&format!("p2kvs_worker_ops_total{{worker=\"{w}\"}}"))
            .unwrap();
        assert!(ops > 0, "worker {w} processed requests");
        assert!(snap
            .gauge(&format!("p2kvs_queue_depth{{worker=\"{w}\"}}"))
            .is_some());
    }
    assert_eq!(
        (0..4)
            .map(|w| snap
                .counter(&format!("p2kvs_worker_ops_total{{worker=\"{w}\"}}"))
                .unwrap())
            .sum::<u64>(),
        500
    );

    // lsmkv's write breakdown surfaces under engine_* names.
    let wal: f64 = (0..4)
        .map(|i| snap.gauge(&format!("engine_wal_us{{instance=\"{i}\"}}")).unwrap())
        .sum();
    assert!(wal > 0.0, "WAL component of the write breakdown must be non-zero");
    assert!(snap.gauge("engine_writes_total{instance=\"0\"}").is_some());

    // With a zero threshold, slow-request tracing captured events.
    assert!(snap.counter("p2kvs_slow_requests_total").unwrap() > 0);
    let events = store.recent_slow_requests(8);
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.batch_size >= 1));

    // The two renders agree on every value they share.
    let prom = MetricsSnapshot::parse_prometheus(&snap.render_prometheus());
    let json = snap.render_json();
    for (name, v) in &snap.counters {
        assert_eq!(
            prom.iter().find(|(n, _)| n == name).map(|(_, p)| *p as u64),
            Some(*v),
            "{name} must round-trip through the Prometheus render"
        );
        assert!(json.contains(&format!("\"{}\"", name.replace('"', "\\\""))));
    }
    for (name, h) in &snap.histograms {
        let brace = name.find('{').expect("lifecycle histograms are labeled");
        let count_series =
            format!("{}_count{{{}}}", &name[..brace], &name[brace + 1..name.len() - 1]);
        assert_eq!(
            prom.iter()
                .find(|(n, _)| n == &count_series)
                .map(|(_, p)| *p as u64),
            Some(h.count),
            "{name} count must round-trip"
        );
        assert!(json.contains(&format!("\"count\": {}", h.count)));
    }
    store.close();
}

#[test]
fn metrics_disabled_store_still_snapshots() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.metrics = false;
    let store = P2Kvs::open(lsm_factory(), "p2-noobs", opts).unwrap();
    store.put(b"k", b"v").unwrap();
    assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
    let snap = store.metrics_snapshot();
    // No lifecycle histograms, but sampled counters/gauges still work.
    assert!(snap.histograms_of("p2kvs_queue_wait_ns").is_empty());
    assert!(snap.counter("p2kvs_worker_ops_total{worker=\"0\"}").is_some());
    assert!(store.recent_slow_requests(4).is_empty());
}

#[test]
fn mismatched_partitioner_is_rejected_at_open() {
    // Regression: a custom partitioner whose partitions() disagrees
    // with the shard count used to index workers out of bounds on the
    // first submit; it must be a config error at open instead.
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.shards = 4;
    opts.partitioner = Some(Arc::new(p2kvs::HashPartitioner::new(3)));
    match P2Kvs::open(lsm_factory(), "p2-mismatch", opts) {
        Err(p2kvs::Error::Config(msg)) => {
            assert!(msg.contains('3') && msg.contains('4'), "diagnostic: {msg}");
        }
        Err(other) => panic!("expected a config error, got {other:?}"),
        Ok(_) => panic!("mismatched partitioner must not open"),
    }
    // A matching custom partitioner opens fine and derives the shard
    // count when `shards` is left at auto.
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.partitioner = Some(Arc::new(p2kvs::HashPartitioner::new(6)));
    let store = P2Kvs::open(lsm_factory(), "p2-custom", opts).unwrap();
    assert_eq!(store.shards(), 6);
    store.put(b"k", b"v").unwrap();
    assert_eq!(store.get(b"k").unwrap().unwrap(), b"v");
}

#[test]
fn paper_layout_is_identity_and_static() {
    let mut opts = P2KvsOptions::paper_layout(4);
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2-paper", opts).unwrap();
    assert_eq!(store.shards(), 4);
    assert_eq!(store.shard_owners(), vec![0, 1, 2, 3]);
    assert_eq!(store.map_epoch(), 1);
    for i in 0..200 {
        store.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    assert_eq!(store.map_epoch(), 1, "no balancer, no migrations");
    assert_eq!(store.migrations(), 0);
}

#[test]
fn migrate_shard_moves_ownership_without_moving_data() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2-mig", opts).unwrap();
    let mut expected = std::collections::BTreeMap::new();
    for i in 0..400 {
        let k = format!("mig{i:04}");
        store.put(k.as_bytes(), format!("{i}").as_bytes()).unwrap();
        expected.insert(k.into_bytes(), format!("{i}").into_bytes());
    }
    let owners = store.shard_owners();
    let epoch = store.map_epoch();
    // Move every shard the other way, one at a time.
    for (s, &o) in owners.iter().enumerate() {
        store.migrate_shard(s, 1 - o).unwrap();
    }
    assert_eq!(store.migrations(), owners.len() as u64);
    assert_eq!(store.map_epoch(), epoch + owners.len() as u64);
    let flipped: Vec<usize> = owners.iter().map(|o| 1 - o).collect();
    assert_eq!(store.shard_owners(), flipped);
    // Same-owner migration is a no-op, not a deadlock.
    store.migrate_shard(0, flipped[0]).unwrap();
    // Every key reads back byte-identical through the new owners, and
    // writes keep landing.
    for (k, v) in &expected {
        assert_eq!(store.get(k).unwrap().unwrap(), *v);
    }
    for i in 0..100 {
        let k = format!("post{i:03}");
        store.put(k.as_bytes(), b"after").unwrap();
        assert_eq!(store.get(k.as_bytes()).unwrap().unwrap(), b"after");
    }
    // Out-of-range arguments are config errors, not panics.
    assert!(matches!(
        store.migrate_shard(store.shards(), 0),
        Err(p2kvs::Error::Config(_))
    ));
    assert!(matches!(
        store.migrate_shard(0, 99),
        Err(p2kvs::Error::Config(_))
    ));
    let snap = store.snapshot();
    let outs: u64 = snap.workers.iter().map(|w| w.handoffs_out).sum();
    let ins: u64 = snap.workers.iter().map(|w| w.handoffs_in).sum();
    assert_eq!(outs, owners.len() as u64);
    assert_eq!(ins, owners.len() as u64);
    store.close();
}

#[test]
fn open_scan_survives_shard_migration() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 16; // force resumes after the handoff
    let store = P2Kvs::open(lsm_factory(), "p2-migscan", opts).unwrap();
    for i in 0..600 {
        store
            .put(format!("ms{i:04}").as_bytes(), format!("{i}").as_bytes())
            .unwrap();
    }
    let mut iter = store.iter().unwrap();
    let mut seen = iter.next_chunk(50).unwrap();
    // Consolidate every shard onto worker 0 while cursors are parked.
    for s in 0..store.shards() {
        store.migrate_shard(s, 0).unwrap();
    }
    // The parked cursors travelled with their shards; the scan resumes
    // against the new owner and stays exact.
    loop {
        let chunk = iter.next_chunk(64).unwrap();
        if chunk.is_empty() {
            break;
        }
        seen.extend(chunk);
    }
    assert_eq!(seen.len(), 600);
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "globally sorted");
    for (i, (k, v)) in seen.iter().enumerate() {
        assert_eq!(k, format!("ms{i:04}").as_bytes());
        assert_eq!(v, format!("{i}").as_bytes());
    }
    drop(iter);
    wait_no_active_scans(&store);
    store.close();
}

#[test]
fn rebalance_moves_hot_shards_off_a_saturated_worker() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2-rebal", opts).unwrap();
    // Default layout: 8 shards round-robin, worker 0 owns {0,2,4,6}.
    // Drive all load at two shards of worker 0 so the planner has a
    // movable candidate (a single hot shard can never improve the max).
    let p = p2kvs::HashPartitioner::new(store.shards());
    use p2kvs::Partitioner;
    let hot: Vec<String> = (0..200_000)
        .map(|i| format!("hot{i}"))
        .filter(|k| {
            let s = p.shard_of(k.as_bytes());
            s == 0 || s == 2
        })
        .take(4000)
        .collect();
    for k in &hot {
        store.put(k.as_bytes(), b"v").unwrap();
    }
    let moved = store.rebalance_once().unwrap();
    assert!(moved >= 1, "skewed load must trigger a migration");
    assert_eq!(store.migrations(), moved as u64);
    let owners = store.shard_owners();
    assert!(
        owners[0] == 1 || owners[2] == 1,
        "a hot shard moved to the idle worker: {owners:?}"
    );
    // Byte-identical reads after the move.
    for k in hot.iter().step_by(17) {
        assert_eq!(store.get(k.as_bytes()).unwrap().unwrap(), b"v");
    }
    // A balanced store does not oscillate: repeated ticks with no new
    // load settle to zero moves.
    let mut last = moved;
    for _ in 0..4 {
        last = store.rebalance_once().unwrap();
    }
    assert_eq!(last, 0, "idle ticks must not keep migrating");
    store.close();
}

#[test]
fn background_balancer_runs_and_stops() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.balance_interval = Some(std::time::Duration::from_millis(25));
    let store = P2Kvs::open(lsm_factory(), "p2-bal-bg", opts).unwrap();
    for i in 0..500 {
        store.put(format!("bg{i:03}").as_bytes(), b"v").unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    for i in 0..500 {
        assert_eq!(store.get(format!("bg{i:03}").as_bytes()).unwrap().unwrap(), b"v");
    }
    // Closing must stop the balancer thread promptly (no hang).
    store.close();
}

#[test]
fn reporter_thread_runs_and_stops() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.report_interval = Some(std::time::Duration::from_millis(40));
    let store = P2Kvs::open(lsm_factory(), "p2-reporter", opts).unwrap();
    for i in 0..50 {
        store.put(format!("r{i}").as_bytes(), b"v").unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(120));
    // Closing must stop the reporter thread promptly (no hang, no panic).
    store.close();
}

// ---------------------------------------------------------------------
// Causal tracing, the flight recorder, and live introspection
// ---------------------------------------------------------------------

#[test]
fn trace_spans_form_nested_trees_and_export_chrome_json() {
    use p2kvs::SpanKind;
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.trace_sample = 1; // sample every request
    let store = P2Kvs::open(lsm_factory(), "p2-trace", opts).unwrap();
    for i in 0..200 {
        store.put(format!("t{i:03}").as_bytes(), b"v").unwrap();
    }
    for i in 0..50 {
        store.get(format!("t{i:03}").as_bytes()).unwrap();
    }
    let spans = store.trace_spans();
    assert!(!spans.is_empty(), "sample=1 must record spans");
    let mut by_id: std::collections::HashMap<u64, Vec<&p2kvs::SpanRecord>> =
        std::collections::HashMap::new();
    for s in &spans {
        by_id.entry(s.trace_id).or_default().push(s);
    }
    let mut full_chains = 0;
    for tree in by_id.values() {
        let find = |k: SpanKind| tree.iter().find(|s| s.kind == k);
        let (Some(qw), Some(batch), Some(engine)) = (
            find(SpanKind::QueueWait),
            find(SpanKind::Batch),
            find(SpanKind::Engine),
        ) else {
            continue; // ring overwrote part of this tree
        };
        full_chains += 1;
        // Consistent nesting: the queue wait ends exactly where the OBM
        // batch begins, and the engine call sits inside the batch span.
        assert_eq!(
            qw.start_us + qw.dur_us,
            batch.start_us,
            "queue_wait must end at dequeue"
        );
        assert!(batch.start_us <= engine.start_us, "engine starts inside the batch");
        assert!(
            engine.start_us + engine.dur_us <= batch.start_us + batch.dur_us + 1,
            "engine ends inside the batch (±1us rounding)"
        );
        assert!(batch.batch_size >= 1, "merged-run size is recorded");
        // Engine-phase children are clamped into the engine window.
        for ph in tree.iter().filter(|s| {
            matches!(
                s.kind,
                SpanKind::PhaseWal | SpanKind::PhaseMemtable | SpanKind::PhaseRead
            )
        }) {
            assert!(ph.start_us >= engine.start_us);
            assert!(ph.start_us + ph.dur_us <= engine.start_us + engine.dur_us);
        }
        for io in tree.iter().filter(|s| s.kind == SpanKind::DeviceIo) {
            assert!(io.start_us >= engine.start_us);
            assert!(io.start_us + io.dur_us <= engine.start_us + engine.dur_us);
        }
    }
    assert!(full_chains >= 10, "only {full_chains} complete span trees");
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::PhaseWal),
        "writes must surface a WAL phase span"
    );
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::PhaseMemtable),
        "writes must surface a MemTable phase span"
    );
    let json = store.export_trace();
    assert!(json.starts_with("{\"traceEvents\":["), "chrome-trace envelope");
    for needle in ["\"queue_wait\"", "\"obm_batch\"", "\"engine\"", "\"ph\":\"X\""] {
        assert!(json.contains(needle), "export missing {needle}");
    }
    store.close();
}

#[test]
fn trace_sampling_zero_disables_and_default_is_sparse() {
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    opts.trace_sample = 0;
    let store = P2Kvs::open(lsm_factory(), "p2-trace-off", opts).unwrap();
    for i in 0..100 {
        store.put(format!("o{i}").as_bytes(), b"v").unwrap();
    }
    assert!(store.trace_spans().is_empty(), "sample=0 disables tracing");
    // The export still carries flight-recorder instants, but no spans.
    assert!(!store.export_trace().contains("\"ph\":\"X\""));
    store.close();

    // Default 1/64: some but far from all requests sampled.
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2-trace-def", opts).unwrap();
    for i in 0..640 {
        store.put(format!("d{i}").as_bytes(), b"v").unwrap();
    }
    let ids: std::collections::HashSet<u64> =
        store.trace_spans().iter().map(|s| s.trace_id).collect();
    assert!(!ids.is_empty(), "1/64 sampling must trace something in 640 ops");
    assert!(ids.len() <= 640 / 64 + 2, "sampled {} of 640", ids.len());
    store.close();
}

#[test]
fn introspection_reports_map_and_worker_state() {
    let mut opts = P2KvsOptions::paper_layout(2);
    opts.pin_workers = false;
    let store = P2Kvs::open(lsm_factory(), "p2-intro", opts).unwrap();
    for i in 0..100 {
        store.put(format!("i{i}").as_bytes(), b"v").unwrap();
    }
    let view = store.introspect();
    assert_eq!(view.shard_owners, vec![0, 1]);
    assert_eq!(view.workers.len(), 2);
    assert_eq!(view.workers[0].shards, vec![0]);
    assert_eq!(view.workers[1].shards, vec![1]);
    assert!(!view.balancer_active);
    assert_eq!(view.migrations, 0);
    let epoch0 = view.map_epoch;
    store.migrate_shard(0, 1).unwrap();
    let view = store.introspect();
    assert_eq!(view.shard_owners, vec![1, 1], "the map reflects the migration");
    assert!(view.map_epoch > epoch0, "migration bumps the epoch");
    assert_eq!(view.workers[0].shards, Vec::<usize>::new());
    assert_eq!(view.workers[1].shards, vec![0, 1]);
    assert_eq!(view.migrations, 1);
    assert!(view.flight_last_seq > 0, "the flight recorder saw the handoff");
    assert!(view.trace_spans_recorded > 0, "default sampling recorded spans");
    store.close();
}

#[test]
fn flight_recorder_persists_and_recovers_gap_free() {
    use p2kvs::JournalKind;
    let engine_opts = lsmkv::Options::for_test();
    let mut opts = P2KvsOptions::with_workers(2);
    opts.pin_workers = false;
    let store = P2Kvs::open(
        LsmFactory::new(engine_opts.clone()),
        "p2-flight",
        opts.clone(),
    )
    .unwrap();
    for i in 0..50 {
        store.put(format!("f{i}").as_bytes(), b"v").unwrap();
    }
    store.migrate_shard(0, 1).unwrap();
    store
        .write_batch(vec![
            WriteOp::Put { key: b"a".to_vec(), value: b"1".to_vec() },
            WriteOp::Put { key: b"zz".to_vec(), value: b"2".to_vec() },
        ])
        .unwrap();
    let live = store.flight_records(usize::MAX);
    for kind in [JournalKind::StoreOpen, JournalKind::HandoffOut, JournalKind::ShardInstall] {
        assert!(live.iter().any(|r| r.kind == kind), "live journal missing {kind:?}");
    }
    store.close();

    // Reopen over the same env: the journal survives, gap-free, with
    // open/close bracketing and the handoff evidence intact, and the
    // new incarnation continues the sequence without reusing numbers.
    let store2 = P2Kvs::open(LsmFactory::new(engine_opts), "p2-flight", opts).unwrap();
    let recovered = store2.recovered_flight_records().to_vec();
    assert!(!recovered.is_empty(), "FLIGHT.log must be recovered");
    assert_eq!(
        p2kvs::obs::sequence_gap(&recovered),
        None,
        "recovered journal must be gap-free"
    );
    for kind in [
        JournalKind::StoreOpen,
        JournalKind::StoreClose,
        JournalKind::HandoffOut,
        JournalKind::ShardInstall,
        JournalKind::TxnCommit,
    ] {
        assert!(
            recovered.iter().any(|r| r.kind == kind),
            "recovered journal missing {kind:?}"
        );
    }
    let last_recovered = recovered.last().unwrap().seq;
    let all = store2.flight_records(usize::MAX);
    let reopen = all
        .iter()
        .find(|r| r.kind == JournalKind::StoreOpen && r.seq > last_recovered)
        .expect("the reopen is journaled");
    assert_eq!(reopen.seq, last_recovered + 1, "sequence continues across restart");
    assert_eq!(p2kvs::obs::sequence_gap(&all), None, "ring spans the restart seam");
    store2.close();
}

#[test]
fn scan_gauge_is_conserved_across_migration_and_iterator_drop() {
    let mut opts = P2KvsOptions::paper_layout(2);
    opts.pin_workers = false;
    opts.scan_chunk_entries = 4;
    let store = P2Kvs::open(lsm_factory(), "p2-scan-gauge", opts).unwrap();
    for i in 0..200 {
        store.put(format!("sg{i:03}").as_bytes(), b"v").unwrap();
    }
    let mut iter = store.iter().unwrap();
    for _ in 0..3 {
        iter.next_entry().unwrap().unwrap();
    }
    let active = |s: &P2Kvs<lsmkv::Db>| -> u64 {
        s.snapshot().workers.iter().map(|w| w.active_scans).sum()
    };
    let parked = active(&store);
    assert!(parked >= 1, "the streaming iterator parks cursors");
    assert!(parked < 1 << 60, "gauge must never underflow");
    // Ownership moves; the parked cursors travel and the gauge total is
    // conserved — debited at the source exactly once, credited at the
    // target exactly once.
    store.migrate_shard(0, 1).unwrap();
    store.migrate_shard(1, 0).unwrap();
    assert_eq!(active(&store), parked, "migration conserves the scan gauge");
    for _ in 0..3 {
        iter.next_entry().unwrap().unwrap();
    }
    drop(iter);
    wait_no_active_scans(&store);
    store.close();
}
