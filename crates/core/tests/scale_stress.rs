//! Stress test for the elastic worker pool: writers, readers, and a
//! streaming scanner run flat out while a thrasher cycles
//! `scale_workers` across the pool's whole range (1 ↔ 4), so every
//! retirement drains live shards — with parked scan cursors riding the
//! handoff depot — and every spawn hands a fresh ring shards the next
//! resize takes away again.
//!
//! The guarantees pinned down here:
//!
//! * **no request ever fails because a resize is in flight** — every
//!   put/get/batch/scan in the test unwraps;
//! * **read-your-writes holds across drains** — a writer re-reading its
//!   acked put must see it even when the key's shard is mid-handoff,
//!   and readers never observe a per-key version going backwards;
//! * **counters are conserved** — retired slots keep their final
//!   counters (nothing a dead worker did is forgotten) with zeroed
//!   ownership gauges, and the live slots' `shards_owned` sum to the
//!   shard count at all times the pool is quiescent.
//!
//! CI additionally runs this file under `--release` to shake out
//! orderings the debug interleavings miss.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use p2kvs::engine::LsmFactory;
use p2kvs::{P2Kvs, P2KvsOptions, WriteOp};

const MAX_WORKERS: usize = 4;
const SHARDS: usize = 8;
const WRITERS: usize = 2;
const KEYS_PER_WRITER: usize = 40;
const ROUNDS: u64 = 24;
const READS: usize = 2_000;

fn key_of(w: usize, i: usize) -> Vec<u8> {
    format!("w{w}-k{i:03}").into_bytes()
}

/// Tiny deterministic PRNG so the reader needs no external crate.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn pool_thrashing_under_live_traffic_loses_nothing() {
    let mut opts = P2KvsOptions::with_workers(MAX_WORKERS);
    opts.shards = SHARDS;
    opts.pin_workers = false;
    // A small cache keeps retirement-driven cache flushes in the mix.
    opts.cache_capacity = 64 << 10;
    let store = Arc::new(
        P2Kvs::open(LsmFactory::new(lsmkv::Options::for_test()), "scale-stress", opts).unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    // Seed every key at version 0 so readers and the scanner never hit
    // a missing key: the scanner can then demand the full key census
    // from every snapshot it opens.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            store.put(&key_of(w, i), b"00000000").unwrap();
        }
    }

    // The thrasher: walk the pool 4 → 1 → 4 → … for as long as the
    // traffic runs. Every resize must succeed and land exactly.
    let thrasher = {
        let store = store.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let cycle = [1usize, MAX_WORKERS, 2, 3];
            let mut resizes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let n = cycle[resizes as usize % cycle.len()];
                store.scale_workers(n).unwrap();
                assert_eq!(store.workers(), n, "resize to {n} did not land");
                resizes += 1;
                thread::sleep(std::time::Duration::from_millis(2));
            }
            // Leave the pool at full size for the final checks.
            store.scale_workers(MAX_WORKERS).unwrap();
            resizes
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            thread::spawn(move || {
                for round in 1..=ROUNDS {
                    for i in 0..KEYS_PER_WRITER {
                        let key = key_of(w, i);
                        let val = format!("{round:08}").into_bytes();
                        store.put(&key, &val).unwrap();
                        // Read-your-writes: nobody else writes this key,
                        // so the ack means this exact version is visible
                        // even if the shard is mid-drain.
                        let got = store.get(&key).unwrap().unwrap();
                        assert_eq!(got, val, "writer {w} lost its own write to {i}");
                    }
                    // A cross-shard batch per round keeps the GSN commit
                    // path under the resizes too.
                    let ops: Vec<WriteOp> = (0..4)
                        .map(|i| WriteOp::Put {
                            key: key_of(w, i),
                            value: format!("{round:08}").into_bytes(),
                        })
                        .collect();
                    store.write_batch(ops).unwrap();
                }
            })
        })
        .collect();

    let reader = {
        let store = store.clone();
        thread::spawn(move || {
            let mut seed = 0x9E3779B9u64;
            let mut last_seen: HashMap<(usize, usize), u64> = HashMap::new();
            for _ in 0..READS {
                let w = (lcg(&mut seed) as usize) % WRITERS;
                let i = (lcg(&mut seed) as usize) % KEYS_PER_WRITER;
                let v = store.get(&key_of(w, i)).unwrap().unwrap();
                let version: u64 = std::str::from_utf8(&v).unwrap().parse().unwrap();
                let floor = last_seen.entry((w, i)).or_insert(0);
                assert!(
                    version >= *floor,
                    "key w{w}-k{i} went backwards: {version} after {floor}"
                );
                *floor = version;
            }
        })
    };

    // The scanner: open a streaming cursor, drain it in small chunks
    // (parking it on workers between pulls — retirements must carry the
    // parked cursors over in the handoff depot), and demand the full
    // sorted key census from every snapshot.
    let scanner = {
        let store = store.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut it = store.iter().unwrap();
                let mut entries = Vec::new();
                loop {
                    let c = it.next_chunk(7).unwrap();
                    if c.is_empty() {
                        break;
                    }
                    entries.extend(c);
                }
                assert_eq!(
                    entries.len(),
                    WRITERS * KEYS_PER_WRITER,
                    "scan lost keys mid-resize"
                );
                assert!(
                    entries.windows(2).all(|p| p[0].0 < p[1].0),
                    "scan came back unsorted"
                );
                scans += 1;
            }
            scans
        })
    };

    for h in writers {
        h.join().unwrap();
    }
    reader.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let resizes = thrasher.join().unwrap();
    let scans = scanner.join().unwrap();
    assert!(
        resizes >= 8,
        "only {resizes} resizes happened — the thrasher never thrashed"
    );
    assert!(scans >= 2, "only {scans} full scans completed");

    // Final model: every key holds its last written version.
    for w in 0..WRITERS {
        for i in 0..KEYS_PER_WRITER {
            let want = format!("{ROUNDS:08}").into_bytes();
            assert_eq!(store.get(&key_of(w, i)).unwrap().unwrap(), want);
        }
    }

    // Conservation: with the pool quiescent at full size, the live
    // slots own every shard between them, retired slots zeroed their
    // ownership gauges but kept their counters, and no scan cursor is
    // left parked anywhere.
    let snap = store.snapshot();
    let live_shards: u64 = snap.workers.iter().filter(|w| w.live).map(|w| w.shards_owned).sum();
    assert_eq!(live_shards as usize, SHARDS, "shards leaked across retirements");
    let parked: u64 = snap.workers.iter().map(|w| w.active_scans).sum();
    assert_eq!(parked, 0, "scan cursors left parked after the scanner finished");
    for (i, w) in snap.workers.iter().enumerate() {
        if !w.live {
            assert_eq!(w.shards_owned, 0, "retired slot {i} still claims shards");
            assert_eq!(w.queue_depth, 0, "retired slot {i} still claims queued work");
        }
    }
    // Every put went through exactly one worker; the per-slot counters
    // (final values frozen at retirement included) must account for at
    // least all of them, across every incarnation of every slot.
    let writes_issued = (WRITERS as u64) * (KEYS_PER_WRITER as u64) * (ROUNDS + 1);
    let total_ops: u64 = snap.workers.iter().map(|w| w.ops).sum();
    assert!(
        total_ops >= writes_issued,
        "workers account for {total_ops} ops but {writes_issued} writes were issued"
    );
}
