//! Backup/restore stress: repeated GSN-consistent online snapshots cut
//! and streamed while writers, a reader, and a shard migrator hammer
//! the store — under a deliberately thrashing 16 KiB read cache, so
//! every cycle interleaves CLOCK evictions, fills, and write
//! invalidations with the freeze markers.
//!
//! Each cycle restores the snapshot into a fresh directory and checks:
//!
//! * the restored store opens and serves every key it holds with a
//!   stable value (the copy is quiescent — two reads through the
//!   fill-then-hit cache path must agree with a full engine scan, so a
//!   stale carried-over cache entry has nowhere to hide);
//! * the restored store journaled its **cold-start cache reset** — a
//!   `cache_flush` of the sentinel shard sequenced after everything the
//!   backed-up flight journal recovered — proving a restore never
//!   trusts cache state from the source store's life;
//! * the recovered journal carries the cut's own `backup_begin` /
//!   `backup_complete` provenance, gap-free.
//!
//! CI runs this file under `--release` to shake out orderings the debug
//! interleavings miss.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use p2kvs::engine::LsmFactory;
use p2kvs::{JournalKind, P2Kvs, P2KvsOptions};

/// Distinct keys the writers cycle over. At ~140 bytes a record the hot
/// set is ~70 KiB — several times the 16 KiB cache budget, so the CLOCK
/// hand is always moving.
const KEYS: u64 = 512;
/// Online backup/restore cycles the test drives.
const CYCLES: usize = 5;
/// Concurrent writer threads.
const WRITERS: usize = 3;

fn store_options() -> P2KvsOptions {
    let mut o = P2KvsOptions::with_workers(3);
    o.shards = 6;
    o.pin_workers = false;
    o.cache_capacity = 16 << 10; // thrashing by design
    o
}

fn stress_key(n: u64) -> Vec<u8> {
    format!("bs-{:04}", n % KEYS).into_bytes()
}

fn stress_value(writer: usize, seq: u64) -> Vec<u8> {
    // Self-describing and padded past cache-friendly sizes.
    format!("w{writer}-{seq}-{:x<120}", "").into_bytes()
}

fn value_is_well_formed(v: &[u8]) -> bool {
    v.len() >= 120 && v.starts_with(b"w") && v.iter().filter(|&&b| b == b'-').count() >= 2
}

#[test]
fn repeated_online_backups_under_concurrent_load_restore_cleanly() {
    let engine_opts = lsmkv::Options::for_test();
    let store = Arc::new(
        P2Kvs::open(LsmFactory::new(engine_opts.clone()), "bstress", store_options()).unwrap(),
    );
    // Seed every key so restores always have a full key space to check.
    for n in 0..KEYS {
        store.put(&stress_key(n), &stress_value(9, 0)).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        threads.push(thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let n = seq
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(w as u64 + 1);
                store.put(&stress_key(n), &stress_value(w, seq)).unwrap();
                seq += 1;
            }
        }));
    }
    {
        // Reader: hammers the thrashing cache; every value surfaced must
        // be one some writer actually produced, never torn or stale-mixed.
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        threads.push(thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Some(v) = store.get(&stress_key(n)).unwrap() {
                    assert!(value_is_well_formed(&v), "corrupt read: {v:?}");
                }
                n = n.wrapping_add(7);
            }
        }));
    }
    {
        // Migrator: walks shard ownership around the workers so freeze
        // markers keep racing handoffs.
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        threads.push(thread::spawn(move || {
            let shards = store.shards();
            let mut r = 0usize;
            while !stop.load(Ordering::Relaxed) {
                store.migrate_shard(r % shards, (r + 1) % 3).unwrap();
                r += 1;
                thread::sleep(std::time::Duration::from_millis(2));
            }
        }));
    }

    for cycle in 0..CYCLES {
        let backup_dir = format!("bstress-backup-{cycle}");
        let restore_dir = format!("bstress-restore-{cycle}");
        let report = store
            .backup(&backup_dir)
            .expect("cut under load")
            .wait()
            .expect("stream under load");
        assert_eq!(report.shards as usize, store.shards());
        assert!(
            report.entries >= KEYS,
            "cycle {cycle}: cut lost keys ({} < {KEYS})",
            report.entries
        );
        let restored = P2Kvs::restore(
            LsmFactory::new(engine_opts.clone()),
            &backup_dir,
            &restore_dir,
            store_options(),
        )
        .expect("restore under load");
        // The copy is quiescent: a full scan is its ground truth. Every
        // get — first the cache fill, then the hit — must agree with it,
        // so a stale entry carried over from the source's cache (or from
        // a previous cycle) cannot hide.
        let snapshot = restored.scan(b"", usize::MAX / 4).unwrap();
        assert!(snapshot.len() >= KEYS as usize, "cycle {cycle}: restore lost keys");
        for (k, v) in &snapshot {
            assert!(value_is_well_formed(v), "cycle {cycle}: corrupt restored value");
            for pass in 0..2 {
                assert_eq!(
                    restored.get(k).unwrap().as_deref(),
                    Some(v.as_slice()),
                    "cycle {cycle} pass {pass}: cached read diverged from the engine"
                );
            }
        }
        // Cold-start contract: the restore journaled a fresh cache reset
        // sequenced after everything the backup's journal brought back.
        let recovered = restored.recovered_flight_records();
        let recovered_max = recovered.last().map_or(0, |r| r.seq);
        let kinds: Vec<JournalKind> = recovered.iter().map(|r| r.kind).collect();
        assert!(
            kinds.contains(&JournalKind::BackupBegin)
                && kinds.contains(&JournalKind::BackupComplete),
            "cycle {cycle}: recovered journal lacks the cut's provenance: {kinds:?}"
        );
        assert!(
            p2kvs::obs::sequence_gap(recovered).is_none(),
            "cycle {cycle}: recovered journal has a hole"
        );
        let live = restored.flight_records(usize::MAX);
        assert!(
            live.iter().any(|r| r.kind == JournalKind::CacheFlush
                && r.a == u64::MAX
                && r.seq > recovered_max),
            "cycle {cycle}: restore journaled no cold-start cache reset after seq {recovered_max}"
        );
        restored.close();
    }

    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    // The primary survived it all: every key still reads well-formed.
    for n in 0..KEYS {
        let v = store.get(&stress_key(n)).unwrap().expect("seeded key");
        assert!(value_is_well_formed(&v));
    }
}
